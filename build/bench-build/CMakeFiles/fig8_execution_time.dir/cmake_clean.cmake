file(REMOVE_RECURSE
  "../bench/fig8_execution_time"
  "../bench/fig8_execution_time.pdb"
  "CMakeFiles/fig8_execution_time.dir/fig8_execution_time.cpp.o"
  "CMakeFiles/fig8_execution_time.dir/fig8_execution_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
