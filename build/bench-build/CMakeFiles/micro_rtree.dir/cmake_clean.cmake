file(REMOVE_RECURSE
  "../bench/micro_rtree"
  "../bench/micro_rtree.pdb"
  "CMakeFiles/micro_rtree.dir/micro_rtree.cpp.o"
  "CMakeFiles/micro_rtree.dir/micro_rtree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
