# Empty compiler generated dependencies file for micro_hilbert.
# This may be replaced when dependencies are built.
