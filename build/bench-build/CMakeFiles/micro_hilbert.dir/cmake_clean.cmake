file(REMOVE_RECURSE
  "../bench/micro_hilbert"
  "../bench/micro_hilbert.pdb"
  "CMakeFiles/micro_hilbert.dir/micro_hilbert.cpp.o"
  "CMakeFiles/micro_hilbert.dir/micro_hilbert.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
