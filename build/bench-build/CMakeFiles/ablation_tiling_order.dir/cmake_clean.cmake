file(REMOVE_RECURSE
  "../bench/ablation_tiling_order"
  "../bench/ablation_tiling_order.pdb"
  "CMakeFiles/ablation_tiling_order.dir/ablation_tiling_order.cpp.o"
  "CMakeFiles/ablation_tiling_order.dir/ablation_tiling_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiling_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
