# Empty compiler generated dependencies file for ablation_tiling_order.
# This may be replaced when dependencies are built.
