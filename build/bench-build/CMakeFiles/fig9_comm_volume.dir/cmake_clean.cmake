file(REMOVE_RECURSE
  "../bench/fig9_comm_volume"
  "../bench/fig9_comm_volume.pdb"
  "CMakeFiles/fig9_comm_volume.dir/fig9_comm_volume.cpp.o"
  "CMakeFiles/fig9_comm_volume.dir/fig9_comm_volume.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
