# Empty compiler generated dependencies file for fig9_comm_volume.
# This may be replaced when dependencies are built.
