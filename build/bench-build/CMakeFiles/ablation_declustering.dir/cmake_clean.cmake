file(REMOVE_RECURSE
  "../bench/ablation_declustering"
  "../bench/ablation_declustering.pdb"
  "CMakeFiles/ablation_declustering.dir/ablation_declustering.cpp.o"
  "CMakeFiles/ablation_declustering.dir/ablation_declustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_declustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
