# Empty compiler generated dependencies file for ablation_declustering.
# This may be replaced when dependencies are built.
