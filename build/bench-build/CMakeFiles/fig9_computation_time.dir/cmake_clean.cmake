file(REMOVE_RECURSE
  "../bench/fig9_computation_time"
  "../bench/fig9_computation_time.pdb"
  "CMakeFiles/fig9_computation_time.dir/fig9_computation_time.cpp.o"
  "CMakeFiles/fig9_computation_time.dir/fig9_computation_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_computation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
