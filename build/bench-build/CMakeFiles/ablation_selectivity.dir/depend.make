# Empty dependencies file for ablation_selectivity.
# This may be replaced when dependencies are built.
