file(REMOVE_RECURSE
  "../bench/ablation_selectivity"
  "../bench/ablation_selectivity.pdb"
  "CMakeFiles/ablation_selectivity.dir/ablation_selectivity.cpp.o"
  "CMakeFiles/ablation_selectivity.dir/ablation_selectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
