file(REMOVE_RECURSE
  "../bench/ablation_caching"
  "../bench/ablation_caching.pdb"
  "CMakeFiles/ablation_caching.dir/ablation_caching.cpp.o"
  "CMakeFiles/ablation_caching.dir/ablation_caching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
