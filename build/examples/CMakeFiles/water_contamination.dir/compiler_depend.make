# Empty compiler generated dependencies file for water_contamination.
# This may be replaced when dependencies are built.
