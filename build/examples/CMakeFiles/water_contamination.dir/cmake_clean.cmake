file(REMOVE_RECURSE
  "CMakeFiles/water_contamination.dir/water_contamination.cpp.o"
  "CMakeFiles/water_contamination.dir/water_contamination.cpp.o.d"
  "water_contamination"
  "water_contamination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_contamination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
