# Empty dependencies file for adr_cli.
# This may be replaced when dependencies are built.
