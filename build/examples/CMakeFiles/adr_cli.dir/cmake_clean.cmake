file(REMOVE_RECURSE
  "CMakeFiles/adr_cli.dir/adr_cli.cpp.o"
  "CMakeFiles/adr_cli.dir/adr_cli.cpp.o.d"
  "adr_cli"
  "adr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
