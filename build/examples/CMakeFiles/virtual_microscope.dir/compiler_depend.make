# Empty compiler generated dependencies file for virtual_microscope.
# This may be replaced when dependencies are built.
