# Empty dependencies file for persistent_repository.
# This may be replaced when dependencies are built.
