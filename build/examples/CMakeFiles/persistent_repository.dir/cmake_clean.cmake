file(REMOVE_RECURSE
  "CMakeFiles/persistent_repository.dir/persistent_repository.cpp.o"
  "CMakeFiles/persistent_repository.dir/persistent_repository.cpp.o.d"
  "persistent_repository"
  "persistent_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
