file(REMOVE_RECURSE
  "CMakeFiles/satellite_composite.dir/satellite_composite.cpp.o"
  "CMakeFiles/satellite_composite.dir/satellite_composite.cpp.o.d"
  "satellite_composite"
  "satellite_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
