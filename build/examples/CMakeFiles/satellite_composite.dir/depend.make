# Empty dependencies file for satellite_composite.
# This may be replaced when dependencies are built.
