
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregation_test.cpp" "tests/CMakeFiles/adr_tests.dir/aggregation_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/aggregation_test.cpp.o.d"
  "/root/repo/tests/attribute_space_test.cpp" "tests/CMakeFiles/adr_tests.dir/attribute_space_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/attribute_space_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/adr_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/chunk_test.cpp" "tests/CMakeFiles/adr_tests.dir/chunk_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/chunk_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/adr_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/adr_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/dataset_test.cpp" "tests/CMakeFiles/adr_tests.dir/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/dataset_test.cpp.o.d"
  "/root/repo/tests/decluster_test.cpp" "tests/CMakeFiles/adr_tests.dir/decluster_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/decluster_test.cpp.o.d"
  "/root/repo/tests/disk_store_test.cpp" "tests/CMakeFiles/adr_tests.dir/disk_store_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/disk_store_test.cpp.o.d"
  "/root/repo/tests/emulator_test.cpp" "tests/CMakeFiles/adr_tests.dir/emulator_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/emulator_test.cpp.o.d"
  "/root/repo/tests/event_queue_test.cpp" "tests/CMakeFiles/adr_tests.dir/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/adr_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/adr_tests.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/frontend_test.cpp.o.d"
  "/root/repo/tests/geometry_test.cpp" "tests/CMakeFiles/adr_tests.dir/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/hilbert_test.cpp" "tests/CMakeFiles/adr_tests.dir/hilbert_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/hilbert_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/adr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/loader_test.cpp" "tests/CMakeFiles/adr_tests.dir/loader_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/loader_test.cpp.o.d"
  "/root/repo/tests/mapping_test.cpp" "tests/CMakeFiles/adr_tests.dir/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/mapping_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/adr_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/adr_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/adr_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/query_executor_test.cpp" "tests/CMakeFiles/adr_tests.dir/query_executor_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/query_executor_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/adr_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/random_test.cpp" "tests/CMakeFiles/adr_tests.dir/random_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/random_test.cpp.o.d"
  "/root/repo/tests/resources_test.cpp" "tests/CMakeFiles/adr_tests.dir/resources_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/resources_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/adr_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/rtree_test.cpp" "tests/CMakeFiles/adr_tests.dir/rtree_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/rtree_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/adr_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/simulation_test.cpp" "tests/CMakeFiles/adr_tests.dir/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/simulation_test.cpp.o.d"
  "/root/repo/tests/spatial_index_test.cpp" "tests/CMakeFiles/adr_tests.dir/spatial_index_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/spatial_index_test.cpp.o.d"
  "/root/repo/tests/stats_util_test.cpp" "tests/CMakeFiles/adr_tests.dir/stats_util_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/stats_util_test.cpp.o.d"
  "/root/repo/tests/strategy_test.cpp" "tests/CMakeFiles/adr_tests.dir/strategy_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/strategy_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/adr_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/tiling_test.cpp" "tests/CMakeFiles/adr_tests.dir/tiling_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/tiling_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/adr_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/adr_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
