# Empty dependencies file for adr_tests.
# This may be replaced when dependencies are built.
