
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/geometry.cpp" "src/CMakeFiles/adr.dir/common/geometry.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/geometry.cpp.o.d"
  "/root/repo/src/common/hilbert.cpp" "src/CMakeFiles/adr.dir/common/hilbert.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/hilbert.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/adr.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/adr.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/random.cpp.o.d"
  "/root/repo/src/common/stats_util.cpp" "src/CMakeFiles/adr.dir/common/stats_util.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/stats_util.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/adr.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/adr.dir/common/table.cpp.o.d"
  "/root/repo/src/core/aggregation.cpp" "src/CMakeFiles/adr.dir/core/aggregation.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/aggregation.cpp.o.d"
  "/root/repo/src/core/attribute_space.cpp" "src/CMakeFiles/adr.dir/core/attribute_space.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/attribute_space.cpp.o.d"
  "/root/repo/src/core/exec/exec_stats.cpp" "src/CMakeFiles/adr.dir/core/exec/exec_stats.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/exec/exec_stats.cpp.o.d"
  "/root/repo/src/core/exec/query_executor.cpp" "src/CMakeFiles/adr.dir/core/exec/query_executor.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/exec/query_executor.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/CMakeFiles/adr.dir/core/frontend.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/frontend.cpp.o.d"
  "/root/repo/src/core/planner/cost_model.cpp" "src/CMakeFiles/adr.dir/core/planner/cost_model.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/cost_model.cpp.o.d"
  "/root/repo/src/core/planner/da.cpp" "src/CMakeFiles/adr.dir/core/planner/da.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/da.cpp.o.d"
  "/root/repo/src/core/planner/fra.cpp" "src/CMakeFiles/adr.dir/core/planner/fra.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/fra.cpp.o.d"
  "/root/repo/src/core/planner/hybrid.cpp" "src/CMakeFiles/adr.dir/core/planner/hybrid.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/hybrid.cpp.o.d"
  "/root/repo/src/core/planner/mapping.cpp" "src/CMakeFiles/adr.dir/core/planner/mapping.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/mapping.cpp.o.d"
  "/root/repo/src/core/planner/plan.cpp" "src/CMakeFiles/adr.dir/core/planner/plan.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/plan.cpp.o.d"
  "/root/repo/src/core/planner/planner.cpp" "src/CMakeFiles/adr.dir/core/planner/planner.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/planner.cpp.o.d"
  "/root/repo/src/core/planner/sra.cpp" "src/CMakeFiles/adr.dir/core/planner/sra.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/sra.cpp.o.d"
  "/root/repo/src/core/planner/tiling.cpp" "src/CMakeFiles/adr.dir/core/planner/tiling.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/planner/tiling.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/CMakeFiles/adr.dir/core/query.cpp.o" "gcc" "src/CMakeFiles/adr.dir/core/query.cpp.o.d"
  "/root/repo/src/emulator/emulator.cpp" "src/CMakeFiles/adr.dir/emulator/emulator.cpp.o" "gcc" "src/CMakeFiles/adr.dir/emulator/emulator.cpp.o.d"
  "/root/repo/src/emulator/sat.cpp" "src/CMakeFiles/adr.dir/emulator/sat.cpp.o" "gcc" "src/CMakeFiles/adr.dir/emulator/sat.cpp.o.d"
  "/root/repo/src/emulator/scenario.cpp" "src/CMakeFiles/adr.dir/emulator/scenario.cpp.o" "gcc" "src/CMakeFiles/adr.dir/emulator/scenario.cpp.o.d"
  "/root/repo/src/emulator/vm.cpp" "src/CMakeFiles/adr.dir/emulator/vm.cpp.o" "gcc" "src/CMakeFiles/adr.dir/emulator/vm.cpp.o.d"
  "/root/repo/src/emulator/wcs.cpp" "src/CMakeFiles/adr.dir/emulator/wcs.cpp.o" "gcc" "src/CMakeFiles/adr.dir/emulator/wcs.cpp.o.d"
  "/root/repo/src/net/client.cpp" "src/CMakeFiles/adr.dir/net/client.cpp.o" "gcc" "src/CMakeFiles/adr.dir/net/client.cpp.o.d"
  "/root/repo/src/net/server.cpp" "src/CMakeFiles/adr.dir/net/server.cpp.o" "gcc" "src/CMakeFiles/adr.dir/net/server.cpp.o.d"
  "/root/repo/src/net/socket_io.cpp" "src/CMakeFiles/adr.dir/net/socket_io.cpp.o" "gcc" "src/CMakeFiles/adr.dir/net/socket_io.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "src/CMakeFiles/adr.dir/net/wire.cpp.o" "gcc" "src/CMakeFiles/adr.dir/net/wire.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/adr.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/adr.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/adr.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/adr.dir/runtime/message.cpp.o.d"
  "/root/repo/src/runtime/sim_executor.cpp" "src/CMakeFiles/adr.dir/runtime/sim_executor.cpp.o" "gcc" "src/CMakeFiles/adr.dir/runtime/sim_executor.cpp.o.d"
  "/root/repo/src/runtime/thread_executor.cpp" "src/CMakeFiles/adr.dir/runtime/thread_executor.cpp.o" "gcc" "src/CMakeFiles/adr.dir/runtime/thread_executor.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/adr.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/adr.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/adr.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/adr.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/CMakeFiles/adr.dir/sim/resources.cpp.o" "gcc" "src/CMakeFiles/adr.dir/sim/resources.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/adr.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/adr.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/storage/catalog.cpp" "src/CMakeFiles/adr.dir/storage/catalog.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/catalog.cpp.o.d"
  "/root/repo/src/storage/chunk.cpp" "src/CMakeFiles/adr.dir/storage/chunk.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/chunk.cpp.o.d"
  "/root/repo/src/storage/dataset.cpp" "src/CMakeFiles/adr.dir/storage/dataset.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/dataset.cpp.o.d"
  "/root/repo/src/storage/decluster.cpp" "src/CMakeFiles/adr.dir/storage/decluster.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/decluster.cpp.o.d"
  "/root/repo/src/storage/disk_store.cpp" "src/CMakeFiles/adr.dir/storage/disk_store.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/disk_store.cpp.o.d"
  "/root/repo/src/storage/loader.cpp" "src/CMakeFiles/adr.dir/storage/loader.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/loader.cpp.o.d"
  "/root/repo/src/storage/partition.cpp" "src/CMakeFiles/adr.dir/storage/partition.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/partition.cpp.o.d"
  "/root/repo/src/storage/rtree.cpp" "src/CMakeFiles/adr.dir/storage/rtree.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/rtree.cpp.o.d"
  "/root/repo/src/storage/spatial_index.cpp" "src/CMakeFiles/adr.dir/storage/spatial_index.cpp.o" "gcc" "src/CMakeFiles/adr.dir/storage/spatial_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
