# Empty dependencies file for adr.
# This may be replaced when dependencies are built.
