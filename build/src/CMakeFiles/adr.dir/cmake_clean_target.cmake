file(REMOVE_RECURSE
  "libadr.a"
)
