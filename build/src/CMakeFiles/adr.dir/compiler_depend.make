# Empty compiler generated dependencies file for adr.
# This may be replaced when dependencies are built.
