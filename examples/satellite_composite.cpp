// Satellite composite imaging — the paper's motivating SAT application.
//
// Generates synthetic satellite sensor readings along a polar orbit
// (each reading has a longitude, latitude and radiance value), then runs
// an ADR range query whose user-defined functions composite the "best"
// (maximum) reading per pixel onto a 2-D earth grid — the paper's
// AVHRR-style processing chain.  The result is written as a PGM image.
//
//   ./satellite_composite [output.pgm]
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>

#include "adr.hpp"

namespace {

using namespace adr;

// One sensor reading: position + value, stored as 3 doubles in payloads.
struct Reading {
  double lon;
  double lat;
  double value;
};

constexpr int kImageSize = 128;        // output pixels per side
constexpr int kOutGrid = 4;            // output chunks per side
constexpr int kPixelsPerChunk = kImageSize / kOutGrid;

// The user-defined Aggregate: max-composite readings into pixels.
// The accumulator is the pixel block of one output chunk (doubles).
class MaxCompositeOp : public AggregationOp {
 public:
  std::string name() const override { return "max-composite"; }
  AccumulatorLayout layout() const override { return {1.0}; }

  std::vector<std::byte> initialize(const ChunkMeta&, const Chunk*) const override {
    return std::vector<std::byte>(kPixelsPerChunk * kPixelsPerChunk * sizeof(double),
                                  std::byte{0});
  }

  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override {
    const Rect& box = out_meta.mbr;
    auto pixels = std::span<double>(reinterpret_cast<double*>(accum.data()),
                                    accum.size() / sizeof(double));
    const auto readings = input.as<double>();
    for (std::size_t r = 0; r + 2 < readings.size(); r += 3) {
      const Reading reading{readings[r], readings[r + 1], readings[r + 2]};
      if (!box.contains(Point{reading.lon, reading.lat})) continue;
      const int px = std::min(kPixelsPerChunk - 1,
                              static_cast<int>((reading.lon - box.lo()[0]) /
                                               box.extent(0) * kPixelsPerChunk));
      const int py = std::min(kPixelsPerChunk - 1,
                              static_cast<int>((reading.lat - box.lo()[1]) /
                                               box.extent(1) * kPixelsPerChunk));
      double& pixel = pixels[static_cast<size_t>(py * kPixelsPerChunk + px)];
      pixel = std::max(pixel, reading.value);  // "best value" composite
    }
  }

  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override {
    auto d = std::span<double>(reinterpret_cast<double*>(dst.data()),
                               dst.size() / sizeof(double));
    auto s = std::span<const double>(reinterpret_cast<const double*>(src.data()),
                                     src.size() / sizeof(double));
    for (std::size_t i = 0; i < d.size() && i < s.size(); ++i) {
      d[i] = std::max(d[i], s[i]);
    }
  }

  std::vector<std::byte> output(const ChunkMeta&,
                                const std::vector<std::byte>& accum) const override {
    return accum;
  }
};

// Synthetic polar-orbit swath data over the globe.
std::vector<Chunk> make_orbit_chunks(int num_chunks, int readings_per_chunk) {
  Rng rng(7);
  std::vector<Chunk> chunks;
  for (int c = 0; c < num_chunks; ++c) {
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double lat_c = 80.0 * std::sin(phase);
    const double lon_c = rng.uniform(-170.0, 170.0);
    const double lon_half = 15.0 / std::max(0.25, std::cos(lat_c * M_PI / 180.0));

    std::vector<double> data;
    Rect mbr;
    for (int r = 0; r < readings_per_chunk; ++r) {
      const double lon =
          std::clamp(lon_c + rng.uniform(-lon_half, lon_half), -180.0, 180.0);
      const double lat = std::clamp(lat_c + rng.uniform(-6.0, 6.0), -90.0, 90.0);
      // Radiance: a smooth field plus noise — recognizable in the image.
      const double value = 128.0 + 100.0 * std::sin(lon * M_PI / 60.0) *
                                       std::cos(lat * M_PI / 45.0) +
                           rng.uniform(0.0, 20.0);
      data.insert(data.end(), {lon, lat, value});
      mbr = Rect::join(mbr, Rect(Point{lon, lat}, Point{lon, lat}));
    }
    ChunkMeta meta;
    meta.mbr = mbr;
    chunks.emplace_back(meta, payload_from_doubles(data));
  }
  return chunks;
}

std::vector<Chunk> make_image_chunks() {
  std::vector<Chunk> chunks;
  const Rect domain(Point{-180.0, -90.0}, Point{180.0, 90.0});
  for (int iy = 0; iy < kOutGrid; ++iy) {
    for (int ix = 0; ix < kOutGrid; ++ix) {
      ChunkMeta meta;
      const double dx = 360.0 / kOutGrid, dy = 180.0 / kOutGrid, e = 1e-7;
      meta.mbr = Rect(Point{-180.0 + ix * dx + e, -90.0 + iy * dy + e},
                      Point{-180.0 + (ix + 1) * dx - e, -90.0 + (iy + 1) * dy - e});
      meta.bytes = kPixelsPerChunk * kPixelsPerChunk * sizeof(double);
      chunks.emplace_back(meta);
    }
  }
  return chunks;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "composite.pgm";

  RepositoryConfig config;
  config.backend = RepositoryConfig::Backend::kThreads;
  config.num_nodes = 4;
  config.memory_per_node = 4 << 20;
  Repository repo(config);
  repo.aggregations().register_op(std::make_shared<MaxCompositeOp>());

  const Rect globe(Point{-180.0, -90.0}, Point{180.0, 90.0});
  const auto sensors = repo.create_dataset("avhrr", globe, make_orbit_chunks(600, 200));
  const auto image = repo.create_dataset("composite", globe, make_image_chunks());
  std::cout << "Loaded " << repo.dataset(sensors).num_chunks()
            << " orbit chunks (" << 600 * 200 << " readings)\n";

  Query q;
  q.input_dataset = sensors;
  q.output_dataset = image;
  q.range = globe;  // composite the whole earth
  q.aggregation = "max-composite";
  q.strategy = StrategyKind::kAuto;
  const QueryResult result = repo.submit(q);
  std::cout << "Query ran with strategy " << to_string(result.strategy) << " in "
            << result.tiles << " tile(s); "
            << fmt_bytes(static_cast<double>(result.stats.total_bytes_sent()))
            << " communicated\n";

  // Assemble the image from the output chunks and write a PGM.
  std::vector<double> pixels(kImageSize * kImageSize, 0.0);
  for (std::uint32_t o = 0; o < kOutGrid * kOutGrid; ++o) {
    auto chunk = repo.read_chunk(image, o);
    if (!chunk || !chunk->has_payload()) continue;
    const auto block = chunk->as<double>();
    const int cx = static_cast<int>(o) % kOutGrid;
    const int cy = static_cast<int>(o) / kOutGrid;
    for (int py = 0; py < kPixelsPerChunk; ++py) {
      for (int px = 0; px < kPixelsPerChunk; ++px) {
        pixels[static_cast<size_t>((cy * kPixelsPerChunk + py) * kImageSize +
                                   cx * kPixelsPerChunk + px)] =
            block[static_cast<size_t>(py * kPixelsPerChunk + px)];
      }
    }
  }
  std::ofstream pgm(out_path);
  pgm << "P2\n" << kImageSize << ' ' << kImageSize << "\n255\n";
  int covered = 0;
  for (int y = kImageSize - 1; y >= 0; --y) {  // north up
    for (int x = 0; x < kImageSize; ++x) {
      const double v = pixels[static_cast<size_t>(y * kImageSize + x)];
      if (v > 0) ++covered;
      pgm << std::min(255, static_cast<int>(v)) << (x + 1 < kImageSize ? ' ' : '\n');
    }
  }
  std::cout << "Wrote " << out_path << " (" << covered << "/"
            << kImageSize * kImageSize << " pixels covered)\n";
  return 0;
}
