// Persistent repository: ingest once, query across process lifetimes.
//
// Phase 1 ("ingest") partitions a stream of sensor readings into chunks
// with the Hilbert partitioner, loads them onto a file-backed disk farm,
// and saves the catalog.  Phase 2 ("reopen") — normally a later process —
// reattaches to the farm, restores the catalog, and runs a range query
// against the persisted data.
//
//   ./persistent_repository [workdir]
#include <cstring>
#include <filesystem>
#include <iostream>

#include "adr.hpp"

namespace {

using namespace adr;

constexpr int kReadings = 4000;

RepositoryConfig farm_config(const std::filesystem::path& dir, bool open_existing) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = 4;
  cfg.memory_per_node = 1 << 20;
  cfg.storage_dir = dir / "farm";
  cfg.open_existing = open_existing;
  return cfg;
}

std::vector<Chunk> output_grid() {
  std::vector<Chunk> chunks;
  for (int iy = 0; iy < 2; ++iy) {
    for (int ix = 0; ix < 2; ++ix) {
      ChunkMeta meta;
      const double d = 0.5, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

void ingest(const std::filesystem::path& dir) {
  Repository repo(farm_config(dir, /*open_existing=*/false));

  // Partition a synthetic reading stream into spatially compact chunks
  // (the paper's load step 1), then run the 4-step load.
  Rng rng(99);
  std::vector<Item> items;
  for (int i = 0; i < kReadings; ++i) {
    Item item;
    item.position = Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const std::uint64_t value = static_cast<std::uint64_t>(rng.uniform_int(0, 500));
    item.payload.resize(sizeof(value));
    std::memcpy(item.payload.data(), &value, sizeof(value));
    items.push_back(std::move(item));
  }
  PartitionOptions popts;
  popts.target_chunk_bytes = 64 * sizeof(std::uint64_t);
  auto chunks = partition_items(std::move(items), Rect::cube(2, 0.0, 1.0), popts);
  std::cout << "Partitioned " << kReadings << " readings into " << chunks.size()
            << " chunks (mean MBR overlap " << fmt(partition_overlap(chunks), 4)
            << ")\n";

  repo.create_dataset("readings", Rect::cube(2, 0.0, 1.0), std::move(chunks));
  repo.create_dataset("summary", Rect::cube(2, 0.0, 1.0), output_grid());
  repo.save_catalog(dir / "catalog.txt");
  std::cout << "Ingested and saved catalog to " << (dir / "catalog.txt") << "\n";
}

void reopen_and_query(const std::filesystem::path& dir) {
  Repository repo(farm_config(dir, /*open_existing=*/true));
  const std::size_t restored = repo.load_catalog(dir / "catalog.txt");
  std::cout << "Reopened farm; restored " << restored << " datasets\n";

  const Dataset* readings = repo.find_dataset("readings");
  const Dataset* summary = repo.find_dataset("summary");

  Query q;
  q.input_dataset = readings->id();
  q.output_dataset = summary->id();
  q.range = Rect::cube(2, 0.0, 1.0);
  q.aggregation = "sum-count-max";
  q.strategy = StrategyKind::kSRA;
  q.delivery = OutputDelivery::kReturnToClient;
  const QueryResult result = repo.submit(q);

  std::uint64_t total = 0, count = 0;
  for (const Chunk& chunk : result.outputs) {
    const auto v = chunk.as<std::uint64_t>();
    total += v[0];
    count += v[1];
    std::cout << "  quadrant " << chunk.meta().id.index << ": count=" << v[1]
              << " mean=" << (v[1] ? v[0] / v[1] : 0) << "\n";
  }
  std::cout << "Aggregated " << count << " persisted readings (sum " << total << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "adr_persistent_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ingest(dir);
  std::cout << "\n--- simulating a later process ---\n\n";
  reopen_and_query(dir);
  std::cout << "\n(farm and catalog left under " << dir << ")\n";
  return 0;
}
