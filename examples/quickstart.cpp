// Quickstart: the smallest complete ADR program.
//
// Builds a tiny 2-D sensor dataset, loads it into an in-process
// repository with a 4-node thread back-end, runs one range query with
// the built-in sum/count/max aggregation under each strategy, and shows
// that every strategy computes the same answer.
//
//   ./quickstart
#include <cstring>
#include <iostream>

#include "adr.hpp"

namespace {

using namespace adr;

// 8x8 grid of input chunks over [0,1)^2, 16 readings each.
std::vector<Chunk> make_sensor_chunks() {
  std::vector<Chunk> chunks;
  Rng rng(2024);
  const int n = 8;
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      ChunkMeta meta;
      const double d = 1.0 / n, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      std::vector<std::uint64_t> readings(16);
      for (auto& r : readings) {
        r = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
      }
      std::vector<std::byte> payload(readings.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), readings.data(), payload.size());
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

// 2x2 grid of output chunks (quadrant summaries).
std::vector<Chunk> make_output_chunks() {
  std::vector<Chunk> chunks;
  const int n = 2;
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      ChunkMeta meta;
      const double d = 1.0 / n, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

}  // namespace

int main() {
  // 1. Stand up a repository: 4 back-end nodes, one disk each, running
  //    on real threads.
  RepositoryConfig config;
  config.backend = RepositoryConfig::Backend::kThreads;
  config.num_nodes = 4;
  config.memory_per_node = 1 << 20;
  Repository repo(config);

  // 2. Load datasets (partition -> decluster -> store -> index).
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  const auto sensors = repo.create_dataset("sensors", domain, make_sensor_chunks());
  const auto summary = repo.create_dataset("summary", domain, make_output_chunks());
  std::cout << "Loaded " << repo.dataset(sensors).num_chunks()
            << " sensor chunks across " << config.num_nodes << " nodes\n";

  // 3. Run the same range query under every strategy.
  for (StrategyKind strategy : {StrategyKind::kFRA, StrategyKind::kSRA,
                                StrategyKind::kDA, StrategyKind::kHybrid}) {
    Query q;
    q.input_dataset = sensors;
    q.output_dataset = summary;
    q.range = Rect(Point{0.0, 0.0}, Point{0.74, 0.74});  // 3/4 of the domain
    q.aggregation = "sum-count-max";
    q.strategy = strategy;
    const QueryResult result = repo.submit(q);

    std::cout << "\n" << to_string(strategy) << ": tiles=" << result.tiles
              << " ghost-chunks=" << result.ghost_chunks
              << " msgs=" << result.stats.nodes[0].msgs_sent << "+...\n";
    for (std::uint32_t o = 0; o < 4; ++o) {
      auto chunk = repo.read_chunk(summary, o);
      if (!chunk || chunk->payload().size() < 24) continue;
      const auto v = chunk->as<std::uint64_t>();
      std::cout << "  quadrant " << o << ": sum=" << v[0] << " count=" << v[1]
                << " max=" << v[2] << "\n";
    }
  }
  std::cout << "\nAll strategies report identical quadrant summaries.\n";
  return 0;
}
