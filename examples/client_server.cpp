// Client/server deployment: the paper's Figure 2 in one process.
//
// Stands up an ADR repository behind the front-end socket server, then
// plays first a "sequential client" (paper's client A): connects over
// TCP, submits range queries of shrinking footprint, and reads the
// composited results off the wire — and then a crowd: eight clients on
// their own threads hammering the same server concurrently, each on its
// own connection.
//
//   ./client_server
#include <atomic>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "adr.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"

namespace {

using namespace adr;

std::vector<Chunk> sensor_chunks() {
  Rng rng(31);
  std::vector<Chunk> chunks;
  const int n = 8;
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      ChunkMeta meta;
      const double d = 1.0 / n, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      std::vector<std::uint64_t> vals(8);
      for (auto& v : vals) v = static_cast<std::uint64_t>(rng.uniform_int(0, 999));
      std::vector<std::byte> payload(vals.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

std::vector<Chunk> summary_chunks() {
  std::vector<Chunk> chunks;
  for (int iy = 0; iy < 2; ++iy) {
    for (int ix = 0; ix < 2; ++ix) {
      ChunkMeta meta;
      const double d = 0.5, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

}  // namespace

int main() {
  // ---- back end + front end ----
  RepositoryConfig config;
  config.backend = RepositoryConfig::Backend::kThreads;
  config.num_nodes = 4;
  config.memory_per_node = 1 << 20;
  Repository repo(config);
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  const auto sensors = repo.create_dataset("sensors", domain, sensor_chunks());
  const auto summary = repo.create_dataset("summary", domain, summary_chunks());

  // Trace the whole session: every query's lifecycle spans land in the
  // ring the stats endpoint exports.
  obs::tracer().enable();

  net::AdrServer server(repo, /*port=*/0);
  server.start();
  std::cout << "ADR front end listening on 127.0.0.1:" << server.port() << "\n\n";

  // ---- sequential client over TCP ----
  net::AdrClient client(server.port());
  for (double extent : {1.0, 0.5, 0.25}) {
    Query q;
    q.input_dataset = sensors;
    q.output_dataset = summary;
    q.range = Rect(Point{0.0, 0.0}, Point{extent - 1e-9, extent - 1e-9});
    q.aggregation = "sum-count-max";
    q.strategy = StrategyKind::kAuto;
    q.delivery = OutputDelivery::kReturnToClient;

    const net::WireResult result = client.submit(q);
    if (!result.ok()) {
      std::cerr << "query failed: " << result.status.to_string() << "\n";
      return 1;
    }
    std::uint64_t count = 0, max = 0;
    for (const Chunk& chunk : result.outputs) {
      const auto v = chunk.as<std::uint64_t>();
      count += v[1];
      max = std::max(max, v[2]);
    }
    std::cout << "query over " << extent * 100 << "% x " << extent * 100
              << "% of the domain -> strategy " << to_string(result.strategy)
              << ", " << result.outputs.size() << " chunk(s), " << count
              << " readings, max " << max << "\n";
  }

  // ---- concurrent clients, one connection each ----
  const int n_clients = 8;
  const int queries_per_client = 4;
  std::atomic<std::uint64_t> grand_total{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> crowd;
  crowd.reserve(n_clients);
  for (int c = 0; c < n_clients; ++c) {
    crowd.emplace_back([&, c]() {
      try {
        net::AdrClient me(server.port());
        for (int i = 0; i < queries_per_client; ++i) {
          Query q;
          q.input_dataset = sensors;
          q.output_dataset = summary;
          const double extent = 0.25 + 0.25 * ((c + i) % 4);
          q.range = Rect(Point{0.0, 0.0}, Point{extent - 1e-9, extent - 1e-9});
          q.aggregation = "sum-count-max";
          q.delivery = OutputDelivery::kReturnToClient;
          const net::WireResult result = me.submit(q);
          if (!result.ok()) {
            ++failures;
            continue;
          }
          for (const Chunk& chunk : result.outputs) {
            grand_total += chunk.as<std::uint64_t>()[1];
          }
        }
      } catch (const std::exception& e) {
        ++failures;
      }
    });
  }
  for (std::thread& t : crowd) t.join();
  std::cout << "\n" << n_clients << " concurrent clients x " << queries_per_client
            << " queries: " << grand_total.load() << " readings counted, "
            << failures.load() << " failures\n";

  std::cout << "\nserver handled " << server.queries_served() << " queries\n";

  // ---- observability endpoint (wire v3) ----
  // The same socket the queries rode serves the metrics snapshot and,
  // because tracing is on, the Chrome trace (Perfetto-loadable).  The
  // adr_stats CLI does exactly this against any live server.
  const net::WireStatsReply stats = client.stats(/*include_trace=*/true);
  std::cout << "\nstats endpoint: " << stats.metrics_json.size()
            << "-byte metrics snapshot, " << stats.trace_json.size()
            << "-byte Chrome trace\n";
  // A taste of the snapshot without a JSON parser: a couple of series.
  for (const char* needle :
       {"\"server.queries_served\":", "\"chunk_cache.hits\":"}) {
    const auto pos = stats.metrics_json.find(needle);
    if (pos != std::string::npos) {
      std::cout << "  " << stats.metrics_json.substr(
                       pos, stats.metrics_json.find_first_of(",}", pos) - pos)
                << "\n";
    }
  }
  server.stop();
  return 0;
}
