// Virtual Microscope — the paper's VM application.
//
// A digitized slide is stored as a grid of high-resolution image tiles;
// a viewer requests a region at a coarser magnification.  The ADR query
// retrieves the tiles under the viewport and the user-defined functions
// average blocks of high-resolution pixels onto the display grid
// ("appropriately compositing pixels mapping onto a single grid point,
// to avoid introducing spurious artifacts").
//
// Pixel sums use exact integer arithmetic, so any strategy and any
// execution order produce the identical displayed image.
//
//   ./virtual_microscope [out.pgm]
#include <cstring>
#include <fstream>
#include <iostream>

#include "adr.hpp"

namespace {

using namespace adr;

constexpr int kSlideTiles = 16;    // slide is 16x16 tiles
constexpr int kTilePixels = 64;    // each tile is 64x64 pixels
constexpr int kViewGrid = 4;       // display is 4x4 output chunks
constexpr int kViewChunkPx = 32;   // each display chunk is 32x32 pixels

// Accumulator layout per output chunk: for every display pixel a
// (sum, count) pair of uint64.
struct PixelAccum {
  std::uint64_t sum;
  std::uint64_t count;
};

class DownsampleOp : public AggregationOp {
 public:
  std::string name() const override { return "vm-downsample"; }
  AccumulatorLayout layout() const override { return {2.0}; }

  std::vector<std::byte> initialize(const ChunkMeta&, const Chunk*) const override {
    return std::vector<std::byte>(kViewChunkPx * kViewChunkPx * sizeof(PixelAccum),
                                  std::byte{0});
  }

  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override {
    auto cells = std::span<PixelAccum>(reinterpret_cast<PixelAccum*>(accum.data()),
                                       accum.size() / sizeof(PixelAccum));
    const Rect& in_box = input.meta().mbr;
    const Rect& out_box = out_meta.mbr;
    const auto pixels = input.as<std::uint64_t>();
    // Walk the tile's pixels; project each into the display grid.
    for (int py = 0; py < kTilePixels; ++py) {
      for (int px = 0; px < kTilePixels; ++px) {
        const double x =
            in_box.lo()[0] + (px + 0.5) / kTilePixels * in_box.extent(0);
        const double y =
            in_box.lo()[1] + (py + 0.5) / kTilePixels * in_box.extent(1);
        if (!out_box.contains(Point{x, y})) continue;
        const int gx = std::min(kViewChunkPx - 1,
                                static_cast<int>((x - out_box.lo()[0]) /
                                                 out_box.extent(0) * kViewChunkPx));
        const int gy = std::min(kViewChunkPx - 1,
                                static_cast<int>((y - out_box.lo()[1]) /
                                                 out_box.extent(1) * kViewChunkPx));
        PixelAccum& cell = cells[static_cast<size_t>(gy * kViewChunkPx + gx)];
        cell.sum += pixels[static_cast<size_t>(py * kTilePixels + px)];
        cell.count += 1;
      }
    }
  }

  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override {
    auto d = std::span<PixelAccum>(reinterpret_cast<PixelAccum*>(dst.data()),
                                   dst.size() / sizeof(PixelAccum));
    auto s = std::span<const PixelAccum>(
        reinterpret_cast<const PixelAccum*>(src.data()), src.size() / sizeof(PixelAccum));
    for (std::size_t i = 0; i < d.size() && i < s.size(); ++i) {
      d[i].sum += s[i].sum;
      d[i].count += s[i].count;
    }
  }

  std::vector<std::byte> output(const ChunkMeta&,
                                const std::vector<std::byte>& accum) const override {
    // Finalize averages into one byte per display pixel.
    auto cells = std::span<const PixelAccum>(
        reinterpret_cast<const PixelAccum*>(accum.data()),
        accum.size() / sizeof(PixelAccum));
    std::vector<std::byte> image(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::uint64_t avg = cells[i].count ? cells[i].sum / cells[i].count : 0;
      image[i] = static_cast<std::byte>(std::min<std::uint64_t>(255, avg));
    }
    return image;
  }
};

// Synthetic slide: tissue-like blobs over the tile grid.
std::vector<Chunk> make_slide_tiles() {
  std::vector<Chunk> tiles;
  const double slide = 1.0;
  for (int ty = 0; ty < kSlideTiles; ++ty) {
    for (int tx = 0; tx < kSlideTiles; ++tx) {
      ChunkMeta meta;
      const double d = slide / kSlideTiles, e = 1e-9;
      meta.mbr = Rect(Point{tx * d + e, ty * d + e},
                      Point{(tx + 1) * d - e, (ty + 1) * d - e});
      std::vector<std::uint64_t> pixels(kTilePixels * kTilePixels);
      for (int py = 0; py < kTilePixels; ++py) {
        for (int px = 0; px < kTilePixels; ++px) {
          const double x = tx + static_cast<double>(px) / kTilePixels;
          const double y = ty + static_cast<double>(py) / kTilePixels;
          // Deterministic "tissue" pattern: overlapping sinusoid blobs.
          const double v = 96.0 + 80.0 * std::sin(x * 1.3) * std::sin(y * 1.7) +
                           48.0 * std::sin(x * 5.1 + y * 3.9);
          pixels[static_cast<size_t>(py * kTilePixels + px)] =
              static_cast<std::uint64_t>(std::clamp(v, 0.0, 255.0));
        }
      }
      std::vector<std::byte> payload(pixels.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), pixels.data(), payload.size());
      tiles.emplace_back(meta, std::move(payload));
    }
  }
  return tiles;
}

std::vector<Chunk> make_view_chunks() {
  std::vector<Chunk> chunks;
  for (int iy = 0; iy < kViewGrid; ++iy) {
    for (int ix = 0; ix < kViewGrid; ++ix) {
      ChunkMeta meta;
      const double d = 1.0 / kViewGrid, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      meta.bytes = kViewChunkPx * kViewChunkPx;
      chunks.emplace_back(meta);
    }
  }
  return chunks;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "slide_view.pgm";

  RepositoryConfig config;
  config.backend = RepositoryConfig::Backend::kThreads;
  config.num_nodes = 4;
  config.memory_per_node = 8 << 20;
  Repository repo(config);
  repo.aggregations().register_op(std::make_shared<DownsampleOp>());

  const Rect slide = Rect::cube(2, 0.0, 1.0);
  const auto tiles = repo.create_dataset("slide", slide, make_slide_tiles());
  const auto view = repo.create_dataset("view", slide, make_view_chunks());
  std::cout << "Slide: " << repo.dataset(tiles).num_chunks() << " tiles of "
            << kTilePixels << "x" << kTilePixels << " pixels\n";

  Query q;
  q.input_dataset = tiles;
  q.output_dataset = view;
  q.range = slide;  // view the whole slide at low magnification
  q.aggregation = "vm-downsample";
  q.strategy = StrategyKind::kDA;  // VM favors DA (paper section 4)
  const QueryResult result = repo.submit(q);
  std::cout << "Rendered with " << to_string(result.strategy) << ": "
            << result.stats.total_lr_pairs() << " tile aggregations, "
            << result.tiles << " tile pass(es)\n";

  // Assemble the viewport image.
  const int image_px = kViewGrid * kViewChunkPx;
  std::vector<int> image(static_cast<size_t>(image_px) * image_px, 0);
  for (std::uint32_t o = 0; o < kViewGrid * kViewGrid; ++o) {
    auto chunk = repo.read_chunk(view, o);
    if (!chunk || !chunk->has_payload()) continue;
    const int cx = static_cast<int>(o) % kViewGrid;
    const int cy = static_cast<int>(o) / kViewGrid;
    for (int py = 0; py < kViewChunkPx; ++py) {
      for (int px = 0; px < kViewChunkPx; ++px) {
        image[static_cast<size_t>((cy * kViewChunkPx + py) * image_px +
                                  cx * kViewChunkPx + px)] =
            static_cast<int>(chunk->payload()[static_cast<size_t>(
                py * kViewChunkPx + px)]);
      }
    }
  }
  std::ofstream pgm(out_path);
  pgm << "P2\n" << image_px << ' ' << image_px << "\n255\n";
  for (int y = 0; y < image_px; ++y) {
    for (int x = 0; x < image_px; ++x) {
      pgm << image[static_cast<size_t>(y * image_px + x)]
          << (x + 1 < image_px ? ' ' : '\n');
    }
  }
  std::cout << "Wrote " << out_path << " (" << image_px << "x" << image_px << ")\n";
  return 0;
}
