// adr_cli — command-line front end for a file-backed ADR repository.
//
//   adr_cli ingest  --dir <d> [--points N] [--seed S] [--grid G]
//       partition N random readings into chunks, load them onto a
//       4-node file-backed farm with a GxG summary dataset, save catalog
//   adr_cli datasets --dir <d>
//       list the catalog
//   adr_cli query   --dir <d> [--range x0,y0,x1,y1] [--strategy fra|sra|da|hybrid|auto]
//                   [--agg sum-count-max|count|histogram]
//       run a range query against the persisted data, print the outputs
//   adr_cli emulate --app sat|wcs|vm [--nodes N] [--strategy ...] [--scaled] [--gantt]
//       run one paper experiment on the simulated IBM SP
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "adr.hpp"

namespace {

using namespace adr;

constexpr int kNodes = 4;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[arg.substr(2)] = argv[++i];
    } else {
      flags[arg.substr(2)] = "1";
    }
  }
  return flags;
}

StrategyKind parse_strategy(const std::string& s) {
  if (s == "fra") return StrategyKind::kFRA;
  if (s == "sra") return StrategyKind::kSRA;
  if (s == "da") return StrategyKind::kDA;
  if (s == "hybrid") return StrategyKind::kHybrid;
  return StrategyKind::kAuto;
}

RepositoryConfig farm_config(const std::filesystem::path& dir, bool open_existing) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = kNodes;
  cfg.memory_per_node = 4 << 20;
  cfg.storage_dir = dir / "farm";
  cfg.open_existing = open_existing;
  return cfg;
}

int cmd_ingest(const std::map<std::string, std::string>& flags) {
  const std::filesystem::path dir = flags.at("dir");
  const int points = flags.contains("points") ? std::stoi(flags.at("points")) : 10000;
  const std::uint64_t seed =
      flags.contains("seed") ? std::stoull(flags.at("seed")) : 7;
  const int grid = flags.contains("grid") ? std::stoi(flags.at("grid")) : 4;

  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Repository repo(farm_config(dir, false));

  Rng rng(seed);
  std::vector<Item> items;
  items.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    Item item;
    item.position = Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const std::uint64_t value = static_cast<std::uint64_t>(rng.uniform_int(0, 999));
    item.payload.resize(sizeof(value));
    std::memcpy(item.payload.data(), &value, sizeof(value));
    items.push_back(std::move(item));
  }
  PartitionOptions popts;
  popts.target_chunk_bytes = 128 * sizeof(std::uint64_t);
  auto chunks = partition_items(std::move(items), Rect::cube(2, 0.0, 1.0), popts);
  std::cout << "partitioned " << points << " readings into " << chunks.size()
            << " chunks\n";
  repo.create_dataset("readings", Rect::cube(2, 0.0, 1.0), std::move(chunks));

  // Summary grid sized for the largest built-in accumulator (histogram).
  std::vector<Chunk> outputs = emu::make_output_grid(Rect::cube(2, 0.0, 1.0), grid,
                                                     grid, /*chunk_bytes=*/0,
                                                     /*payload_values=*/16);
  repo.create_dataset("summary", Rect::cube(2, 0.0, 1.0), std::move(outputs));
  repo.save_catalog(dir / "catalog.txt");
  std::cout << "ingested into " << dir << " (datasets: readings, summary "
            << grid << "x" << grid << ")\n";
  return 0;
}

int cmd_datasets(const std::map<std::string, std::string>& flags) {
  const std::filesystem::path dir = flags.at("dir");
  Repository repo(farm_config(dir, true));
  repo.load_catalog(dir / "catalog.txt");
  Table table({"id", "name", "chunks", "bytes", "dims", "index"});
  for (std::uint32_t id = 0; id < repo.num_datasets(); ++id) {
    const Dataset& ds = repo.dataset(id);
    table.add_row({std::to_string(ds.id()), ds.name(),
                   std::to_string(ds.num_chunks()),
                   fmt_bytes(static_cast<double>(ds.total_bytes())),
                   std::to_string(ds.domain().dims()), ds.index()->name()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_query(const std::map<std::string, std::string>& flags) {
  const std::filesystem::path dir = flags.at("dir");
  Repository repo(farm_config(dir, true));
  repo.load_catalog(dir / "catalog.txt");

  Query q;
  q.input_dataset = repo.find_dataset("readings")->id();
  q.output_dataset = repo.find_dataset("summary")->id();
  q.range = Rect::cube(2, 0.0, 1.0);
  if (flags.contains("range")) {
    double x0, y0, x1, y1;
    if (std::sscanf(flags.at("range").c_str(), "%lf,%lf,%lf,%lf", &x0, &y0, &x1,
                    &y1) != 4) {
      std::cerr << "bad --range, expected x0,y0,x1,y1\n";
      return 2;
    }
    q.range = Rect(Point{x0, y0}, Point{x1, y1});
  }
  q.aggregation = flags.contains("agg") ? flags.at("agg") : "sum-count-max";
  q.strategy =
      parse_strategy(flags.contains("strategy") ? flags.at("strategy") : "auto");
  q.delivery = OutputDelivery::kReturnToClient;

  const QueryResult result = repo.submit(q);
  std::cout << "strategy " << to_string(result.strategy) << ", " << result.tiles
            << " tile(s), " << result.chunk_reads << " chunk reads\n";
  for (const Chunk& chunk : result.outputs) {
    std::cout << "  chunk " << chunk.meta().id.index << " "
              << chunk.meta().mbr.to_string() << " :";
    const auto values = chunk.as<std::uint64_t>();
    for (std::size_t i = 0; i < std::min<std::size_t>(values.size(), 6); ++i) {
      std::cout << ' ' << values[i];
    }
    if (values.size() > 6) std::cout << " ...";
    std::cout << '\n';
  }
  return 0;
}

int cmd_emulate(const std::map<std::string, std::string>& flags) {
  emu::ExperimentConfig cfg;
  const std::string app = flags.contains("app") ? flags.at("app") : "sat";
  cfg.app = app == "wcs"  ? emu::PaperApp::kWcs
            : app == "vm" ? emu::PaperApp::kVm
                          : emu::PaperApp::kSat;
  cfg.nodes = flags.contains("nodes") ? std::stoi(flags.at("nodes")) : 8;
  cfg.strategy =
      parse_strategy(flags.contains("strategy") ? flags.at("strategy") : "fra");
  cfg.scaled = flags.contains("scaled");
  cfg.record_trace = flags.contains("gantt");
  const emu::ExperimentResult r = emu::run_experiment(cfg);
  std::cout << emu::to_string(cfg.app) << " on " << cfg.nodes << " nodes, "
            << to_string(cfg.strategy) << ": " << fmt(r.stats.total_s, 2)
            << " s virtual, " << r.tiles << " tiles, "
            << fmt(r.comm_mb_per_node(), 1) << " MB/node communicated\n";
  if (cfg.record_trace) std::cout << '\n' << render_gantt(r.stats, 96);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: adr_cli ingest|datasets|query|emulate [--flags]\n";
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (command == "ingest") return cmd_ingest(flags);
    if (command == "datasets") return cmd_datasets(flags);
    if (command == "query") return cmd_query(flags);
    if (command == "emulate") return cmd_emulate(flags);
  } catch (const std::out_of_range&) {
    std::cerr << "missing required flag (--dir?)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
