// Water contamination study — the paper's WCS application.
//
// A hydrodynamics simulation writes flow/concentration grids per time
// step; a chemical-transport study asks for the time-averaged
// contaminant concentration over a period, on its own (coarser) grid.
// The ADR query couples the two: it retrieves every hydro chunk in the
// queried period and the user-defined functions accumulate per-cell
// sums and sample counts, averaging at output handling — the paper's
// "coupling multiple simulations via a customizable database" scenario.
//
//   ./water_contamination
#include <cmath>
#include <cstring>
#include <iostream>

#include "adr.hpp"

namespace {

using namespace adr;

constexpr int kHydroGrid = 20;   // hydro cells per side (input chunks/step)
constexpr int kChemGrid = 10;    // chem cells per side (output chunks)
constexpr int kTimeSteps = 30;
constexpr int kSamplesPerCell = 16;  // concentration samples per hydro cell

// Concentrations are fixed-point micrograms/litre (x1000) in uint64 so
// sums are exact and strategy-order-independent.
struct CellAccum {
  std::uint64_t sum;
  std::uint64_t count;
};

class TimeAverageOp : public AggregationOp {
 public:
  std::string name() const override { return "time-average"; }
  AccumulatorLayout layout() const override { return {2.0}; }

  std::vector<std::byte> initialize(const ChunkMeta&, const Chunk*) const override {
    return std::vector<std::byte>(sizeof(CellAccum), std::byte{0});
  }

  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override {
    auto* cell = reinterpret_cast<CellAccum*>(accum.data());
    // Weight the hydro cell's samples by its overlap with the chem cell.
    const Rect in2d(Point{input.meta().mbr.lo()[0], input.meta().mbr.lo()[1]},
                    Point{input.meta().mbr.hi()[0], input.meta().mbr.hi()[1]});
    const double overlap = in2d.overlap_volume(out_meta.mbr);
    if (overlap <= 0.0) return;
    // Integer weight in [0, 16]: exact under any aggregation order.
    const auto weight =
        static_cast<std::uint64_t>(overlap / in2d.volume() * 16.0 + 0.5);
    if (weight == 0) return;
    for (std::uint64_t sample : input.as<std::uint64_t>()) {
      cell->sum += sample * weight;
      cell->count += weight;
    }
  }

  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override {
    auto* d = reinterpret_cast<CellAccum*>(dst.data());
    const auto* s = reinterpret_cast<const CellAccum*>(src.data());
    d->sum += s->sum;
    d->count += s->count;
  }

  std::vector<std::byte> output(const ChunkMeta&,
                                const std::vector<std::byte>& accum) const override {
    const auto* cell = reinterpret_cast<const CellAccum*>(accum.data());
    const std::uint64_t avg = cell->count ? cell->sum / cell->count : 0;
    std::vector<std::byte> out(sizeof(std::uint64_t));
    std::memcpy(out.data(), &avg, sizeof(avg));
    return out;
  }
};

// A contaminant plume advecting across the domain over time.
double plume(double x, double y, int t) {
  const double cx = 0.2 + 0.6 * t / kTimeSteps;  // plume centre drifts east
  const double cy = 0.5 + 0.25 * std::sin(t * 0.4);
  const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
  return 5000.0 * std::exp(-d2 / 0.02);  // mg/l x1000
}

std::vector<Chunk> make_hydro_chunks() {
  std::vector<Chunk> chunks;
  Rng rng(11);
  for (int t = 0; t < kTimeSteps; ++t) {
    for (int iy = 0; iy < kHydroGrid; ++iy) {
      for (int ix = 0; ix < kHydroGrid; ++ix) {
        ChunkMeta meta;
        const double d = 1.0 / kHydroGrid, e = 1e-9;
        meta.mbr = Rect(Point{ix * d + e, iy * d + e, t + 0.0},
                        Point{(ix + 1) * d - e, (iy + 1) * d - e, t + 0.999});
        std::vector<std::uint64_t> samples(kSamplesPerCell);
        for (auto& s : samples) {
          const double x = (ix + rng.uniform(0.0, 1.0)) / kHydroGrid;
          const double y = (iy + rng.uniform(0.0, 1.0)) / kHydroGrid;
          s = static_cast<std::uint64_t>(std::max(0.0, plume(x, y, t)));
        }
        std::vector<std::byte> payload(samples.size() * sizeof(std::uint64_t));
        std::memcpy(payload.data(), samples.data(), payload.size());
        chunks.emplace_back(meta, std::move(payload));
      }
    }
  }
  return chunks;
}

std::vector<Chunk> make_chem_chunks() {
  std::vector<Chunk> chunks;
  for (int iy = 0; iy < kChemGrid; ++iy) {
    for (int ix = 0; ix < kChemGrid; ++ix) {
      ChunkMeta meta;
      const double d = 1.0 / kChemGrid, e = 1e-9;
      meta.mbr = Rect(Point{ix * d + e, iy * d + e},
                      Point{(ix + 1) * d - e, (iy + 1) * d - e});
      meta.bytes = sizeof(std::uint64_t);
      chunks.emplace_back(meta);
    }
  }
  return chunks;
}

}  // namespace

int main() {
  RepositoryConfig config;
  config.backend = RepositoryConfig::Backend::kThreads;
  config.num_nodes = 4;
  config.memory_per_node = 4 << 20;
  Repository repo(config);
  repo.aggregations().register_op(std::make_shared<TimeAverageOp>());
  repo.attribute_spaces().register_map(std::make_shared<IdentityMap>(2));

  const Rect space_time(Point{0.0, 0.0, 0.0},
                        Point{1.0, 1.0, static_cast<double>(kTimeSteps)});
  const Rect space = Rect::cube(2, 0.0, 1.0);
  const auto hydro = repo.create_dataset("hydro", space_time, make_hydro_chunks());
  const auto chem = repo.create_dataset("chem", space, make_chem_chunks());
  std::cout << "Hydro output: " << repo.dataset(hydro).num_chunks() << " chunks ("
            << kTimeSteps << " steps)\n";

  // Average the contaminant over the second half of the simulated period.
  Query q;
  q.input_dataset = hydro;
  q.output_dataset = chem;
  q.range = Rect(Point{0.0, 0.0, kTimeSteps / 2.0},
                 Point{1.0, 1.0, static_cast<double>(kTimeSteps)});
  q.map_function = "identity";
  q.aggregation = "time-average";
  q.strategy = StrategyKind::kSRA;
  const QueryResult result = repo.submit(q);
  std::cout << "Query: strategy=" << to_string(result.strategy)
            << " tiles=" << result.tiles << " reads=" << result.chunk_reads << "\n\n";

  // Render the time-averaged concentration as an ASCII heat map.
  std::cout << "Mean concentration, steps " << kTimeSteps / 2 << ".." << kTimeSteps
            << " (north up):\n";
  const char* shades = " .:-=+*#%@";
  std::uint64_t peak = 1;
  std::vector<std::uint64_t> grid(kChemGrid * kChemGrid, 0);
  for (std::uint32_t o = 0; o < kChemGrid * kChemGrid; ++o) {
    auto chunk = repo.read_chunk(chem, o);
    if (chunk && chunk->payload().size() >= 8) {
      grid[o] = chunk->as<std::uint64_t>()[0];
      peak = std::max(peak, grid[o]);
    }
  }
  for (int iy = kChemGrid - 1; iy >= 0; --iy) {
    std::cout << "  ";
    for (int ix = 0; ix < kChemGrid; ++ix) {
      const std::uint64_t v = grid[static_cast<size_t>(iy * kChemGrid + ix)];
      const int level = static_cast<int>(v * 9 / peak);
      std::cout << shades[level] << shades[level];
    }
    std::cout << '\n';
  }
  std::cout << "Peak mean concentration: " << peak / 1000.0 << " mg/l\n";
  return 0;
}
