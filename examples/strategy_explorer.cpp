// Strategy explorer: an interactive view of the paper's experiment space.
//
// Runs one emulated application scenario on the simulated IBM SP under
// all four strategies and prints the full breakdown — per-phase times,
// tiles, ghost chunks, communication volume, compute imbalance — plus
// the analytic cost-model prediction.  Useful for understanding *why* a
// strategy wins a configuration.
//
//   ./strategy_explorer [--app=sat|wcs|vm] [--nodes=N] [--chunks=N]
//                       [--scaled] [--memory-mb=M]
#include <cstring>
#include <iostream>
#include <string>

#include "adr.hpp"

namespace {

using namespace adr;

struct Args {
  emu::PaperApp app = emu::PaperApp::kSat;
  int nodes = 8;
  int chunks = 0;
  bool scaled = false;
  bool gantt = false;
  std::uint64_t memory_mb = 32;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--app=")) {
      const std::string app = v;
      if (app == "sat") args.app = emu::PaperApp::kSat;
      if (app == "wcs") args.app = emu::PaperApp::kWcs;
      if (app == "vm") args.app = emu::PaperApp::kVm;
    } else if (const char* v = value("--nodes=")) {
      args.nodes = std::stoi(v);
    } else if (const char* v = value("--chunks=")) {
      args.chunks = std::stoi(v);
    } else if (const char* v = value("--memory-mb=")) {
      args.memory_mb = std::stoull(v);
    } else if (arg == "--scaled") {
      args.scaled = true;
    } else if (arg == "--gantt") {
      args.gantt = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: strategy_explorer [--app=sat|wcs|vm] [--nodes=N]\n"
                   "  [--chunks=N] [--scaled] [--memory-mb=M] [--gantt]\n";
      std::exit(0);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::cout << "Application " << emu::to_string(args.app) << " on " << args.nodes
            << " simulated IBM SP nodes"
            << (args.scaled ? " (input scaled with nodes)" : "") << "\n\n";

  Table table({"Strategy", "Time (s)", "Init", "LR", "GC", "OH", "Tiles", "Ghosts",
               "Comm MB/node", "Compute s/node", "Imbalance", "Predicted"});

  for (StrategyKind strategy : {StrategyKind::kFRA, StrategyKind::kSRA,
                                StrategyKind::kDA, StrategyKind::kHybrid}) {
    emu::ExperimentConfig cfg;
    cfg.app = args.app;
    cfg.nodes = args.nodes;
    cfg.strategy = strategy;
    cfg.scaled = args.scaled;
    cfg.input_chunks = args.chunks;
    cfg.memory_per_node = args.memory_mb << 20;
    cfg.record_trace = args.gantt;
    const emu::ExperimentResult r = emu::run_experiment(cfg);

    if (args.gantt) {
      std::cout << "\n-- " << to_string(strategy) << " timeline --\n"
                << render_gantt(r.stats, 96);
    }

    std::vector<double> compute;
    for (const auto& n : r.stats.nodes) compute.push_back(n.compute_total_s());

    table.add_row({to_string(strategy), fmt(r.stats.total_s, 1),
                   fmt(r.stats.phase_init_s, 1), fmt(r.stats.phase_lr_s, 1),
                   fmt(r.stats.phase_gc_s, 1), fmt(r.stats.phase_oh_s, 1),
                   std::to_string(r.tiles), std::to_string(r.ghost_chunks),
                   fmt(r.comm_mb_per_node(), 1), fmt(r.compute_s_per_node(), 1),
                   fmt(imbalance(compute), 3), fmt(r.predicted.total_s, 1)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: FRA/SRA trade ghost-chunk replication\n"
               "(Init/GC overhead, memory pressure, more tiles) against DA's\n"
               "input forwarding (LR communication and owner-side imbalance).\n";
  return 0;
}
