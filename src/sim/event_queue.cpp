#include "sim/event_queue.hpp"

#include <cassert>
#include <memory>

namespace adr::sim {

void EventQueue::push(SimTime at, Action action) {
  heap_.push(Event{at, next_seq_++, std::make_shared<Action>(std::move(action))});
}

EventQueue::Action EventQueue::pop(SimTime* at) {
  assert(!heap_.empty());
  Event ev = heap_.top();
  heap_.pop();
  if (at != nullptr) *at = ev.at;
  return std::move(*ev.action);
}

}  // namespace adr::sim
