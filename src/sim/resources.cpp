#include "sim/resources.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace adr::sim {

FcfsResource::FcfsResource(Simulation* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  assert(sim_ != nullptr);
}

void FcfsResource::acquire(SimDuration service, std::function<void()> done) {
  assert(service >= 0);
  const SimTime start = std::max(sim_->now(), free_at_);
  free_at_ = start + service;
  busy_ += service;
  ++requests_;
  sim_->schedule_at(free_at_, std::move(done));
}

SimTime FcfsResource::next_free() const { return std::max(sim_->now(), free_at_); }

double FcfsResource::utilization(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(busy_) / static_cast<double>(horizon);
}

DiskModel::DiskModel(Simulation* sim, std::string name, DiskParams params)
    : server_(sim, std::move(name)), params_(params) {}

SimDuration DiskModel::service_time(std::uint64_t bytes) const {
  const double xfer = static_cast<double>(bytes) / params_.bandwidth_bytes_per_sec;
  return params_.seek + from_seconds(xfer);
}

void DiskModel::read(std::uint64_t bytes, std::function<void()> done) {
  bytes_read_ += bytes;
  server_.acquire(service_time(bytes), std::move(done));
}

void DiskModel::write(std::uint64_t bytes, std::function<void()> done) {
  bytes_written_ += bytes;
  server_.acquire(service_time(bytes), std::move(done));
}

NicModel::NicModel(Simulation* sim, std::string name, LinkParams params)
    : sim_(sim),
      egress_(sim, name + ".out"),
      ingress_(sim, name + ".in"),
      params_(params) {}

SimDuration NicModel::wire_time(std::uint64_t bytes) const {
  const double xfer = static_cast<double>(bytes) / params_.bandwidth_bytes_per_sec;
  return from_seconds(xfer);
}

void NicModel::send(NicModel& dst, std::uint64_t bytes, std::function<void()> delivered) {
  bytes_sent_ += bytes;
  const SimDuration serialize = wire_time(bytes);
  NicModel* receiver = &dst;
  Simulation* sim = sim_;
  const SimDuration latency = params_.latency;
  egress_.acquire(serialize, [sim, receiver, bytes, latency,
                              delivered = std::move(delivered)]() mutable {
    sim->schedule(latency, [receiver, bytes, delivered = std::move(delivered)]() mutable {
      receiver->bytes_received_ += bytes;
      receiver->ingress_.acquire(receiver->wire_time(bytes), std::move(delivered));
    });
  });
}

}  // namespace adr::sim
