// Simulated distributed-memory cluster.
//
// Reconstructs the paper's testbed: N back-end nodes, each with a CPU,
// local memory, one or more locally attached disks, and a full-duplex link
// into a non-blocking switch.  ibm_sp_profile() carries the published
// numbers of the 128-node IBM SP used in the paper's section 4 (256 MB
// thin nodes, one local disk, 110 MB/s peak per-node switch bandwidth).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/resources.hpp"
#include "sim/simulation.hpp"

namespace adr::sim {

struct ClusterConfig {
  int num_nodes = 8;
  int disks_per_node = 1;
  /// Node memory available for accumulator chunks (drives tiling).
  std::uint64_t accumulator_memory_bytes = 32ull * 1024 * 1024;
  /// Per-node file-system buffer cache for chunk reads (0 = disabled —
  /// the paper's configuration: "we used the remaining 250MB on the disk
  /// to clean the file cache before each experiment").  When enabled,
  /// re-reads of cached chunks skip the disk (LRU, write-through).
  std::uint64_t disk_cache_bytes = 0;
  DiskParams disk;
  LinkParams link;
  /// Multiplier on user-function compute costs (1.0 = paper's node speed).
  double cpu_speed = 1.0;

  int total_disks() const { return num_nodes * disks_per_node; }
};

/// The IBM SP configuration of the paper with `nodes` back-end nodes.
ClusterConfig ibm_sp_profile(int nodes);

/// One simulated back-end node.
class SimNode {
 public:
  SimNode(Simulation* sim, int id, const ClusterConfig& cfg);

  int id() const { return id_; }
  FcfsResource& cpu() { return cpu_; }
  NicModel& nic() { return nic_; }
  DiskModel& disk(int i) { return *disks_[static_cast<size_t>(i)]; }
  int num_disks() const { return static_cast<int>(disks_.size()); }

 private:
  int id_;
  FcfsResource cpu_;
  NicModel nic_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
};

/// The whole machine: owns the Simulation and all node models.
class SimCluster {
 public:
  explicit SimCluster(const ClusterConfig& cfg);

  Simulation& sim() { return sim_; }
  const ClusterConfig& config() const { return cfg_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  SimNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }

  /// Maps a global disk index (node-major) to its node.
  int node_of_disk(int global_disk) const { return global_disk / cfg_.disks_per_node; }

  /// Maps a global disk index to the node-local disk index.
  int local_disk(int global_disk) const { return global_disk % cfg_.disks_per_node; }

 private:
  ClusterConfig cfg_;
  Simulation sim_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

}  // namespace adr::sim
