// Discrete-event simulation engine.
//
// A single-threaded event loop: callbacks schedule further callbacks at
// future virtual times; run() drains the queue, advancing the clock to each
// event.  All hardware models (disks, links, CPUs) are built on top of this
// loop, mirroring ADR's own event-driven query execution service ("explicit
// queues for each kind of operation ... polled ... new asynchronous
// operations initiated").
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/sim_time.hpp"

namespace adr::sim {

class Simulation {
 public:
  using Action = EventQueue::Action;

  SimTime now() const { return now_; }

  /// Schedules `action` after `delay` (>= 0) of virtual time.
  void schedule(SimDuration delay, Action action);

  /// Schedules `action` at absolute virtual time `at` (>= now()).
  void schedule_at(SimTime at, Action action);

  /// Runs until no events remain.  Returns the final clock value.
  SimTime run();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Events scheduled exactly at `deadline` are executed.
  SimTime run_until(SimTime deadline);

  /// Executes at most `n` events (for debugging/stepping).
  std::size_t step(std::size_t n = 1);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace adr::sim
