#include "sim/cluster.hpp"

#include <cassert>

namespace adr::sim {

ClusterConfig ibm_sp_profile(int nodes) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.disks_per_node = 1;
  // 256 MB thin nodes; a fraction is usable for accumulator chunks once the
  // OS, code, and I/O buffers are accounted for.
  cfg.accumulator_memory_bytes = 32ull * 1024 * 1024;
  // Late-90s SSA/fast-wide SCSI disk on the SP's thin nodes.
  cfg.disk.seek = from_millis(10.0);
  cfg.disk.bandwidth_bytes_per_sec = 20.0 * 1024 * 1024;
  // High Performance Switch: 110 MB/s peak per node.  The messaging
  // software is CPU-mediated: packing/unpacking costs CPU cycles at
  // roughly memcpy speed on the thin nodes.
  cfg.link.latency = from_micros(40.0);
  cfg.link.bandwidth_bytes_per_sec = 110.0 * 1024 * 1024;
  cfg.link.cpu_overhead_bytes_per_sec = 100.0 * 1024 * 1024;
  cfg.cpu_speed = 1.0;
  return cfg;
}

SimNode::SimNode(Simulation* sim, int id, const ClusterConfig& cfg)
    : id_(id),
      cpu_(sim, "node" + std::to_string(id) + ".cpu"),
      nic_(sim, "node" + std::to_string(id) + ".nic", cfg.link) {
  disks_.reserve(static_cast<size_t>(cfg.disks_per_node));
  for (int d = 0; d < cfg.disks_per_node; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(
        sim, "node" + std::to_string(id) + ".disk" + std::to_string(d), cfg.disk));
  }
}

SimCluster::SimCluster(const ClusterConfig& cfg) : cfg_(cfg) {
  assert(cfg.num_nodes >= 1);
  assert(cfg.disks_per_node >= 1);
  nodes_.reserve(static_cast<size_t>(cfg.num_nodes));
  for (int i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<SimNode>(&sim_, i, cfg));
  }
}

}  // namespace adr::sim
