// Hardware resource models for the simulated cluster.
//
// Every physical resource of the paper's IBM SP testbed is modelled as a
// serial FCFS server: a node's CPU, each disk, and each direction of a
// node's network link.  Requests occupy the server for a service time and
// complete in submission order, so concurrent operations queue exactly the
// way ADR's operation queues describe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/sim_time.hpp"
#include "sim/simulation.hpp"

namespace adr::sim {

/// A serial first-come-first-served resource.
///
/// `acquire(service, done)` enqueues a request that holds the resource for
/// `service` virtual time and then invokes `done`.  Total busy time and
/// request counts are tracked for utilization reports.
class FcfsResource {
 public:
  FcfsResource(Simulation* sim, std::string name);

  /// Enqueues a request; `done` fires when the request completes.
  void acquire(SimDuration service, std::function<void()> done);

  /// Time at which the resource next becomes free (>= now).
  SimTime next_free() const;

  SimDuration busy_time() const { return busy_; }
  std::uint64_t requests() const { return requests_; }
  const std::string& name() const { return name_; }

  /// Fraction of [0, horizon] the resource was busy.
  double utilization(SimTime horizon) const;

 private:
  Simulation* sim_;
  std::string name_;
  SimTime free_at_ = 0;
  SimDuration busy_ = 0;
  std::uint64_t requests_ = 0;
};

/// Disk performance parameters.
struct DiskParams {
  /// Average positioning overhead charged per chunk-sized request.
  SimDuration seek = from_millis(10.0);
  /// Sustained transfer bandwidth in bytes/second.
  double bandwidth_bytes_per_sec = 10.0 * 1024 * 1024;
};

/// A disk: a FCFS server whose service time is seek + bytes/bandwidth.
class DiskModel {
 public:
  DiskModel(Simulation* sim, std::string name, DiskParams params);

  /// Asynchronously reads `bytes`; `done` fires at transfer completion.
  void read(std::uint64_t bytes, std::function<void()> done);

  /// Asynchronously writes `bytes`; `done` fires at transfer completion.
  void write(std::uint64_t bytes, std::function<void()> done);

  SimDuration service_time(std::uint64_t bytes) const;

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  FcfsResource& server() { return server_; }

 private:
  FcfsResource server_;
  DiskParams params_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Network performance parameters (per-node full-duplex link into a
/// non-blocking switch, as on the SP's High Performance Switch).
struct LinkParams {
  /// One-way message latency.
  SimDuration latency = from_micros(40.0);
  /// Per-direction link bandwidth in bytes/second.
  double bandwidth_bytes_per_sec = 110.0 * 1024 * 1024;
  /// CPU throughput of the messaging software: packing/unpacking each
  /// byte costs CPU time at this rate on the endpoint (message passing
  /// on the SP was CPU-mediated).  0 = free.  Charged by the query
  /// execution engine, not the NIC model.
  double cpu_overhead_bytes_per_sec = 0.0;
};

/// One node's network interface: an egress server and an ingress server.
///
/// A message from A to B occupies A's egress for bytes/bandwidth, travels
/// for `latency`, then occupies B's ingress for bytes/bandwidth; this
/// models a non-blocking switch fabric where only the endpoints contend.
class NicModel {
 public:
  NicModel(Simulation* sim, std::string name, LinkParams params);

  /// Called on the *sender's* NIC: serializes out, then hands off to the
  /// receiver NIC; `delivered` fires on the receiving side.
  void send(NicModel& dst, std::uint64_t bytes, std::function<void()> delivered);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  FcfsResource& egress() { return egress_; }
  FcfsResource& ingress() { return ingress_; }

 private:
  SimDuration wire_time(std::uint64_t bytes) const;

  Simulation* sim_;
  FcfsResource egress_;
  FcfsResource ingress_;
  LinkParams params_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace adr::sim
