// Simulated time.
//
// Virtual time is kept as integer nanoseconds so that event ordering is
// exact and runs are bit-reproducible; helpers convert to/from the floating
// point seconds used by cost models and reports.
#pragma once

#include <cstdint>

namespace adr::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of virtual time in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosPerSecond = 1'000'000'000;

constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kNanosPerSecond) + 0.5);
}

constexpr SimDuration from_millis(double ms) { return from_seconds(ms * 1e-3); }

constexpr SimDuration from_micros(double us) { return from_seconds(us * 1e-6); }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerSecond);
}

}  // namespace adr::sim
