#include "sim/simulation.hpp"

#include <cassert>

namespace adr::sim {

void Simulation::schedule(SimDuration delay, Action action) {
  assert(delay >= 0);
  queue_.push(now_ + delay, std::move(action));
}

void Simulation::schedule_at(SimTime at, Action action) {
  assert(at >= now_);
  queue_.push(at, std::move(action));
}

SimTime Simulation::run() {
  while (!queue_.empty()) {
    SimTime at;
    Action action = queue_.pop(&at);
    now_ = at;
    ++executed_;
    action();
  }
  return now_;
}

SimTime Simulation::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    SimTime at;
    Action action = queue_.pop(&at);
    now_ = at;
    ++executed_;
    action();
  }
  if (queue_.empty() || now_ < deadline) now_ = deadline;
  return now_;
}

std::size_t Simulation::step(std::size_t n) {
  std::size_t done = 0;
  while (done < n && !queue_.empty()) {
    SimTime at;
    Action action = queue_.pop(&at);
    now_ = at;
    ++executed_;
    ++done;
    action();
  }
  return done;
}

}  // namespace adr::sim
