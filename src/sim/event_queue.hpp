// Priority event queue for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps simulations
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/sim_time.hpp"

namespace adr::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to fire at absolute time `at`.
  void push(SimTime at, Action action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  SimTime next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest event's action.
  Action pop(SimTime* at = nullptr);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    // Shared_ptr keeps Event copyable for priority_queue while allowing
    // move-only callables inside std::function payloads.
    std::shared_ptr<Action> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace adr::sim
