// adr_router: the sharded serving tier's front end.
//
// One router process owns the client connections (the PR 6 epoll loop,
// via the shared Poller) and routes each query by *dataset signature* —
// consistent hashing over a ring of N independent AdrServer backends —
// so a dataset's queries keep landing on the same backend and its
// chunk/marginal caches stay hot.  This is the paper's
// distributed-memory story reborn at the serving tier: partition by
// key, fan out, combine (cf. the MapReduce marginal lines in
// PAPERS.md), with the partition function chosen for minimal remap
// under membership change (common/hash_ring.hpp).
//
// Data path: the loop reads client frames incrementally
// (FrameReader), answers stats requests in-loop with the router's own
// metrics snapshot, and hands query frames — as raw bytes, never
// re-encoded — to a small pool of forwarder threads.  A forwarder
// decodes only enough to compute the signature, resolves the ordered
// backend candidates from the ring (the first `replication` are the
// replica set, rotated per query so a hot dataset fans out), and
// relays the frame over a cached blocking connection.  The backend's
// result frame travels back verbatim, so routed results are
// byte-identical to direct ones.
//
// Failure model (docs/sharding.md): a dead backend is just
// kUnavailable on an idempotent query.  Transport losses and
// kUnavailable/kIoError/kBusy answers fail over to the next candidate
// under the shared RetryPolicy; consecutive failures mark a backend
// down (skipped by routing), a background prober — speaking the wire
// stats protocol — drives half-open recovery.  Only when every
// candidate inside the attempt budget fails does the client see a
// synthesized kUnavailable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash_ring.hpp"
#include "net/client.hpp"

namespace adr::net {

/// Health state machine for one backend, pure and time-explicit so the
/// transitions are unit-testable without sleeping: every method takes
/// `now`.  Not internally locked — the router guards each instance
/// with its backend's mutex.
///
///   kUp --(mark_down_after consecutive failures)--> kDown
///   kDown --(half_open_after elapsed)--> kHalfOpen
///   kHalfOpen: admit() grants exactly one trial;
///     success --> kUp, failure --> kDown (timer restarts)
class BackendHealth {
 public:
  enum class State { kUp, kDown, kHalfOpen };

  using Clock = std::chrono::steady_clock;

  BackendHealth(int mark_down_after, std::chrono::milliseconds half_open_after)
      : mark_down_after_(mark_down_after), half_open_after_(half_open_after) {}

  State state(Clock::time_point now) const {
    if (!down_) return State::kUp;
    return now >= down_since_ + half_open_after_ ? State::kHalfOpen
                                                 : State::kDown;
  }

  /// May a request be sent now?  Up: always.  Down: no.  Half-open:
  /// exactly one caller gets a trial until its verdict lands.
  bool admit(Clock::time_point now) {
    switch (state(now)) {
      case State::kUp:
        return true;
      case State::kDown:
        return false;
      case State::kHalfOpen:
        if (trial_in_flight_) return false;
        trial_in_flight_ = true;
        return true;
    }
    return false;
  }

  void record_success(Clock::time_point) {
    down_ = false;
    trial_in_flight_ = false;
    consecutive_failures_ = 0;
  }

  void record_failure(Clock::time_point now) {
    trial_in_flight_ = false;
    if (down_) {
      down_since_ = now;  // failed half-open trial: restart the timer
      return;
    }
    if (++consecutive_failures_ >= mark_down_after_) {
      down_ = true;
      down_since_ = now;
    }
  }

  int consecutive_failures() const { return consecutive_failures_; }

  /// True in kDown *and* kHalfOpen (marked down until a trial succeeds).
  bool marked_down() const { return down_; }

 private:
  const int mark_down_after_;
  const std::chrono::milliseconds half_open_after_;
  int consecutive_failures_ = 0;
  bool down_ = false;
  bool trial_in_flight_ = false;
  Clock::time_point down_since_{};
};

struct RouterConfig {
  /// Loopback ports of the AdrServer backends (the ring nodes).
  std::vector<std::uint16_t> backend_ports;
  /// Client connections served at once; excess connects get an orderly
  /// busy result frame, exactly like AdrServer's cap.
  int max_connections = 256;
  /// Forwarder threads relaying query frames to backends.
  int forwarders = 4;
  /// Virtual nodes per backend on the ring.
  int vnodes_per_backend = 64;
  /// Replica fan-out width: a dataset's queries rotate over the first
  /// `replication` ring candidates instead of pinning to one backend,
  /// trading cache affinity for hot-dataset spread.  Clamped to the
  /// backend count.
  int replication = 1;
  /// Failover budget and backoff for one routed query (attempts span
  /// candidates: attempt k goes to candidate k mod live-candidates).
  /// kBusy honors the backend's retry-after hint exactly like
  /// AdrClient.  idempotent gates failover after a transport loss
  /// mid-query — see docs/robustness.md.
  RetryPolicy retry{.max_attempts = 3,
                    .initial_backoff = std::chrono::milliseconds(5)};
  /// Consecutive failures before a backend is marked down.
  int mark_down_after = 3;
  /// Down time before a half-open trial is allowed.
  std::chrono::milliseconds half_open_after{500};
  /// Background health-probe cadence (stats request per backend);
  /// <= 0 disables probing — health then moves only with traffic.
  std::chrono::milliseconds probe_interval{200};
  /// Per-backend-connection socket receive timeout: a backend that
  /// stops answering (without dying) is treated as a transport loss
  /// after this long instead of hanging a forwarder forever.
  std::chrono::milliseconds backend_recv_timeout{30'000};
};

/// The router front end.  start() binds 127.0.0.1:`port` (0 =
/// ephemeral; port() reports the bound one), runs the event loop, the
/// forwarder pool and the prober; stop() drains and joins.
class AdrRouter {
 public:
  explicit AdrRouter(RouterConfig config, std::uint16_t port = 0);
  ~AdrRouter();

  AdrRouter(const AdrRouter&) = delete;
  AdrRouter& operator=(const AdrRouter&) = delete;

  void start();
  void stop();

  std::uint16_t port() const { return port_; }

  /// Health snapshot of one backend (kDown for unknown ports).
  BackendHealth::State backend_state(std::uint16_t backend_port) const;

  /// Ordered failover candidates for a query signature (introspection
  /// for tests: the full distinct ring order, replica set first).
  std::vector<std::uint16_t> candidates_for(std::uint64_t signature) const;

 private:
  struct Conn;
  struct LoopState;
  struct Backend;

  /// One query frame in flight between the loop and a forwarder.
  struct Job {
    std::uint64_t conn_id = 0;
    std::vector<std::byte> frame;  // raw query frame from the client
  };

  /// A finished job travelling back to the loop.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::byte> frame;  // raw result frame for the client
  };

  void event_loop();
  void loop_accept(LoopState& ls);
  void loop_register(LoopState& ls, int fd);
  void loop_refuse(LoopState& ls, int fd);
  void loop_readable(LoopState& ls, Conn& conn);
  void loop_dispatch(LoopState& ls, Conn& conn);
  void loop_flush(LoopState& ls, Conn& conn);
  void loop_close(LoopState& ls, Conn& conn);
  void loop_drain_completions(LoopState& ls);
  void update_interest(LoopState& ls, Conn& conn);
  void wake();

  void forwarder_loop(int index);
  /// Cached blocking connections one forwarder keeps, one per backend.
  using BackendSockets = std::unordered_map<std::uint16_t, int>;
  /// Routes one query frame; returns the raw result frame to send.
  std::vector<std::byte> route(const Job& job, BackendSockets& socks,
                               std::uint64_t& jitter_state);
  /// Outcome of one relay attempt over a backend connection.
  enum class RelayStatus {
    kOk,             // `reply` holds the backend's raw result frame
    kConnectFailed,  // no bytes ever sent: always safe to fail over
    kLostAfterSend,  // sent but no reply: idempotency gates failover
  };
  RelayStatus relay(Backend& backend, BackendSockets& socks,
                    const std::vector<std::byte>& frame,
                    std::vector<std::byte>& reply);

  void prober_loop();
  bool probe(Backend& backend);

  Backend* backend_of(std::uint16_t backend_port) const;
  void note_result(Backend& backend, bool success);

  RouterConfig config_;
  HashRing ring_;
  /// Fixed at construction: membership changes are a restart (the ring
  /// minimizes remap across restarts, not within one process).
  std::vector<std::unique_ptr<Backend>> backends_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
  std::vector<std::thread> forwarders_;
  std::thread prober_;

  /// Loop -> forwarders.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::deque<Job> jobs_;

  /// Forwarders -> loop.
  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  /// Per-query rotation over the replica set (hot-dataset fan-out).
  std::atomic<std::uint64_t> rotation_{0};
};

/// Signature a query is routed by: a mix of every dataset id it
/// touches, so all queries over one dataset family share a backend
/// (and its caches), while distinct datasets spread over the ring.
std::uint64_t dataset_signature(const Query& query);

}  // namespace adr::net
