#include "net/wire.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

namespace adr::net {
namespace {

constexpr std::uint8_t kQueryTag = 0x51;        // 'Q'
constexpr std::uint8_t kResultTag = 0x52;       // 'R'
constexpr std::uint8_t kStatsRequestTag = 0x53; // 'S'
constexpr std::uint8_t kStatsReplyTag = 0x54;   // 'T'
// v6: query frames carry the Qos contract (see the version map in
// wire.hpp).
constexpr std::uint8_t kVersion = 6;
// Query/result bodies are unchanged since v2 except for appended
// fields, so v2/v3 frames still decode (see the version map in wire.hpp).
constexpr std::uint8_t kMinVersion = 2;

// Exec-option flag bits (v4 query frames).
constexpr std::uint8_t kOptInitFromOutput = 1u << 0;
constexpr std::uint8_t kOptWriteOutput = 1u << 1;
constexpr std::uint8_t kOptPipelineTiles = 1u << 2;
constexpr std::uint8_t kOptRecordTrace = 1u << 3;

// Qos flag bits (v6 query frames).
constexpr std::uint8_t kQosHasDeadline = 1u << 0;
constexpr std::uint8_t kQosDropOnExpiry = 1u << 1;

std::uint8_t check_version(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version < kMinVersion || version > kVersion) {
    throw WireError("wire: unsupported protocol version");
  }
  return version;
}

// Pre-v4 frames carry only (ok, message): recover the intended code
// from the message the old encoder used for protocol-level refusals.
StatusCode infer_status_code(bool ok, const std::string& error) {
  if (ok) return StatusCode::kOk;
  if (error == kServerBusyError) return StatusCode::kBusy;
  return StatusCode::kInternal;
}

}  // namespace

void Writer::u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }

void Writer::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::byte>(v & 0xff));
  buffer_.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) buffer_.push_back(static_cast<std::byte>(c));
}

void Writer::bytes(std::span<const std::byte> b) {
  u64(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void Writer::rect(const Rect& r) {
  u8(static_cast<std::uint8_t>(r.dims()));
  for (int i = 0; i < r.dims(); ++i) f64(r.lo()[i]);
  for (int i = 0; i < r.dims(); ++i) f64(r.hi()[i]);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw WireError("wire: truncated frame");
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint8_t>(data_[pos_]);
  v = static_cast<std::uint16_t>(
      v | (static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_ + 1])) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::byte> Reader::bytes() {
  const std::uint64_t n = u64();
  need(n);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Rect Reader::rect() {
  const int dims = u8();
  if (dims < 0 || dims > kMaxDims) throw WireError("wire: bad rect dims");
  if (dims == 0) return Rect();
  Point lo(dims), hi(dims);
  for (int i = 0; i < dims; ++i) lo[i] = f64();
  for (int i = 0; i < dims; ++i) hi[i] = f64();
  return Rect(lo, hi);
}

std::vector<std::byte> encode_query(const Query& query, const ExecOptions& options) {
  Writer w;
  w.u8(kQueryTag);
  w.u8(kVersion);
  w.u32(query.input_dataset);
  w.u32(static_cast<std::uint32_t>(query.extra_input_datasets.size()));
  for (std::uint32_t id : query.extra_input_datasets) w.u32(id);
  w.u32(query.output_dataset);
  w.rect(query.range);
  w.str(query.map_function);
  w.str(query.aggregation);
  w.u8(static_cast<std::uint8_t>(query.strategy));
  w.u8(static_cast<std::uint8_t>(query.tiling_order));
  w.u8(static_cast<std::uint8_t>(query.delivery));
  w.u8(query.write_output ? 1 : 0);
  w.u64(query.seed);
  // v4: the exec options travel with the query (output_sink is a local
  // callback and cannot cross the wire).
  std::uint8_t flags = 0;
  if (options.init_from_output) flags |= kOptInitFromOutput;
  if (options.write_output) flags |= kOptWriteOutput;
  if (options.pipeline_tiles) flags |= kOptPipelineTiles;
  if (options.record_trace) flags |= kOptRecordTrace;
  w.u8(flags);
  w.f64(options.comm_cpu_bytes_per_sec);
  // v6: the Qos contract.  Deadlines are steady-clock points local to
  // each host, so the wire carries *remaining* milliseconds — client
  // and server clocks never need to agree.  remaining() clamps to 0:
  // an already-expired deadline arrives as "0 ms left", which the
  // server's admission check refuses immediately.
  std::uint8_t qos_flags = 0;
  if (options.qos.has_deadline()) qos_flags |= kQosHasDeadline;
  if (options.qos.drop_on_expiry) qos_flags |= kQosDropOnExpiry;
  w.u8(qos_flags);
  w.u8(static_cast<std::uint8_t>(options.qos.priority));
  std::uint32_t remaining_ms = 0;
  if (options.qos.has_deadline()) {
    const auto rem = options.qos.remaining();
    remaining_ms = static_cast<std::uint32_t>(std::min<std::chrono::milliseconds::rep>(
        rem.count(), std::numeric_limits<std::uint32_t>::max()));
  }
  w.u32(remaining_ms);
  return w.take();
}

WireQuery decode_query_frame(std::span<const std::byte> payload) {
  Reader r(payload);
  if (r.u8() != kQueryTag) throw WireError("wire: not a query frame");
  const std::uint8_t version = check_version(r);
  WireQuery wq;
  Query& q = wq.query;
  q.input_dataset = r.u32();
  const std::uint32_t extras = r.u32();
  if (extras > 1024) throw WireError("wire: implausible extra-input count");
  for (std::uint32_t i = 0; i < extras; ++i) q.extra_input_datasets.push_back(r.u32());
  q.output_dataset = r.u32();
  q.range = r.rect();
  q.map_function = r.str();
  q.aggregation = r.str();
  q.strategy = static_cast<StrategyKind>(r.u8());
  q.tiling_order = static_cast<TilingOrder>(r.u8());
  q.delivery = static_cast<OutputDelivery>(r.u8());
  q.write_output = r.u8() != 0;
  q.seed = r.u64();
  if (version >= 4) {
    const std::uint8_t flags = r.u8();
    wq.options.init_from_output = (flags & kOptInitFromOutput) != 0;
    wq.options.write_output = (flags & kOptWriteOutput) != 0;
    wq.options.pipeline_tiles = (flags & kOptPipelineTiles) != 0;
    wq.options.record_trace = (flags & kOptRecordTrace) != 0;
    wq.options.comm_cpu_bytes_per_sec = r.f64();
  }
  if (version >= 6) {
    const std::uint8_t qos_flags = r.u8();
    const std::uint8_t priority = r.u8();
    const std::uint32_t remaining_ms = r.u32();
    wq.options.qos.drop_on_expiry = (qos_flags & kQosDropOnExpiry) != 0;
    wq.options.qos.priority =
        priority <= static_cast<std::uint8_t>(QosPriority::kInteractive)
            ? static_cast<QosPriority>(priority)
            : QosPriority::kNormal;
    if ((qos_flags & kQosHasDeadline) != 0) {
      // Rebuild an absolute deadline on the receiver's steady clock.
      wq.options.qos.deadline = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(remaining_ms);
    }
  }
  if (!r.done()) throw WireError("wire: trailing bytes after query");
  return wq;
}

Query decode_query(std::span<const std::byte> payload) {
  return decode_query_frame(payload).query;
}

WireResult to_wire_result(const QueryResult& result) {
  WireResult w;
  w.strategy = result.strategy;
  w.tiles = result.tiles;
  w.ghost_chunks = result.ghost_chunks;
  w.chunk_reads = result.chunk_reads;
  w.total_s = result.stats.total_s;
  w.bytes_communicated = result.stats.total_bytes_sent();
  w.cache_hits = result.cache_hits;
  w.cache_misses = result.cache_misses;
  w.outputs = result.outputs;
  return w;
}

std::vector<std::byte> encode_result(const WireResult& result) {
  Writer w;
  w.u8(kResultTag);
  w.u8(kVersion);
  w.u8(result.ok() ? 1 : 0);
  w.str(result.status.message);
  w.u8(static_cast<std::uint8_t>(result.strategy));
  w.u32(static_cast<std::uint32_t>(result.tiles));
  w.u64(result.ghost_chunks);
  w.u64(result.chunk_reads);
  w.f64(result.total_s);
  w.u64(result.bytes_communicated);
  w.u64(result.cache_hits);
  w.u64(result.cache_misses);
  w.u32(result.retry_after_ms);                               // v3
  w.u16(static_cast<std::uint16_t>(result.status.code));     // v4
  w.u32(static_cast<std::uint32_t>(result.outputs.size()));
  for (const Chunk& chunk : result.outputs) {
    w.u32(chunk.meta().id.dataset);
    w.u32(chunk.meta().id.index);
    w.u64(chunk.meta().bytes);
    w.rect(chunk.meta().mbr);
    w.bytes(chunk.payload());
  }
  return w.take();
}

WireResult decode_result(std::span<const std::byte> payload) {
  Reader r(payload);
  if (r.u8() != kResultTag) throw WireError("wire: not a result frame");
  const std::uint8_t version = check_version(r);
  WireResult out;
  const bool ok = r.u8() != 0;
  std::string error = r.str();
  out.strategy = static_cast<StrategyKind>(r.u8());
  out.tiles = static_cast<int>(r.u32());
  out.ghost_chunks = r.u64();
  out.chunk_reads = r.u64();
  out.total_s = r.f64();
  out.bytes_communicated = r.u64();
  out.cache_hits = r.u64();
  out.cache_misses = r.u64();
  if (version >= 3) out.retry_after_ms = r.u32();
  StatusCode code = infer_status_code(ok, error);
  if (version >= 4) {
    const auto wire_code = static_cast<StatusCode>(r.u16());
    // The ok flag stays authoritative: a v4 peer disagreeing with its
    // own code byte decodes to a consistent status either way.
    if (ok) {
      code = StatusCode::kOk;
    } else if (wire_code != StatusCode::kOk) {
      code = wire_code;
    }
  }
  out.status = ok ? Status::make_ok() : Status::make(code, std::move(error));
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ChunkMeta meta;
    meta.id.dataset = r.u32();
    meta.id.index = r.u32();
    meta.bytes = r.u64();
    meta.mbr = r.rect();
    out.outputs.emplace_back(meta, r.bytes());
  }
  if (!r.done()) throw WireError("wire: trailing bytes after result");
  return out;
}

bool is_stats_request(std::span<const std::byte> payload) {
  return !payload.empty() &&
         static_cast<std::uint8_t>(payload[0]) == kStatsRequestTag;
}

bool is_result_frame(std::span<const std::byte> payload) {
  return !payload.empty() && static_cast<std::uint8_t>(payload[0]) == kResultTag;
}

std::vector<std::byte> encode_stats_request(const WireStatsRequest& request) {
  Writer w;
  w.u8(kStatsRequestTag);
  w.u8(kVersion);
  w.u8(request.include_trace ? 1 : 0);
  w.u8(request.include_history ? 1 : 0);
  w.u32(request.history_samples);
  return w.take();
}

WireStatsRequest decode_stats_request(std::span<const std::byte> payload) {
  Reader r(payload);
  if (r.u8() != kStatsRequestTag) throw WireError("wire: not a stats request");
  const std::uint8_t version = r.u8();
  if (version < 3 || version > kVersion) {
    throw WireError("wire: unsupported protocol version");
  }
  WireStatsRequest req;
  req.include_trace = r.u8() != 0;
  if (version >= 5) {
    req.include_history = r.u8() != 0;
    req.history_samples = r.u32();
  }
  if (!r.done()) throw WireError("wire: trailing bytes after stats request");
  return req;
}

std::vector<std::byte> encode_stats_reply(const WireStatsReply& reply) {
  Writer w;
  w.u8(kStatsReplyTag);
  w.u8(kVersion);
  w.str(reply.metrics_json);
  w.str(reply.trace_json);
  w.str(reply.history_json);
  return w.take();
}

WireStatsReply decode_stats_reply(std::span<const std::byte> payload) {
  Reader r(payload);
  if (r.u8() != kStatsReplyTag) throw WireError("wire: not a stats reply");
  const std::uint8_t version = r.u8();
  if (version < 3 || version > kVersion) {
    throw WireError("wire: unsupported protocol version");
  }
  WireStatsReply reply;
  reply.metrics_json = r.str();
  reply.trace_json = r.str();
  if (version >= 5) reply.history_json = r.str();
  if (!r.done()) throw WireError("wire: trailing bytes after stats reply");
  return reply;
}

}  // namespace adr::net
