// Wire format for the client/front-end socket protocol.
//
// The paper's front end relays queries from sequential clients over a
// socket interface and returns output products the same way.  This is a
// little-endian, length-prefixed binary encoding of Query and of a
// client-facing result (summary + delivered output chunks).
//
// Frame layout on the socket (see server.hpp / client.hpp):
//   u32 payload_length | payload
// where payload is an encode_query(), encode_result(),
// encode_stats_request() or encode_stats_reply() body.
//
// Protocol versions:
//   v1  query + result frames
//   v2  result frames carry chunk-cache hit/miss counters
//   v3  result frames carry a retry-after hint on "server busy"
//       refusals, and the stats request/reply frames exist (a JSON
//       metrics snapshot plus an optional Chrome trace export)
//   v4  result frames carry a typed StatusCode (u16) and query frames
//       carry the ExecOptions the query should execute with (flag byte
//       + comm-CPU rate; the output_sink callback is not serialized)
//   v5  stats requests carry an include-history flag and a sample cap;
//       stats replies carry the telemetry sampler's time-series history
//       as JSON (empty when not requested or the sampler is idle)
//   v6  query frames carry the Qos contract (flag byte + priority +
//       deadline-remaining milliseconds; deadlines travel as remaining
//       time so the two hosts' steady clocks never need to agree)
// Encoders emit v6; query/result decoders also accept v2..v5 frames —
// missing fields default (exec options to their defaults, Qos to none,
// and the status code is inferred from the ok flag and the "server
// busy" message).  Stats frames are v3+; v3/v4 stats frames decode with
// the history fields defaulted/empty.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/query.hpp"

namespace adr::net {

/// Thrown on malformed frames.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Error string of a protocol-level refusal: the server is saturated
/// (connection cap or scheduler queue full) and declined the work with
/// an orderly result frame instead of a bare close, so clients can tell
/// refusal from crash.
inline constexpr const char* kServerBusyError = "server busy";

/// The client-facing view of a query result.
struct WireResult {
  /// Typed outcome: code + message.  v4 peers carry the code on the
  /// wire; for v2/v3 frames the decoder infers it (ok flag, "server
  /// busy" message -> kBusy, any other error -> kInternal).
  Status status;

  bool ok() const { return status.ok(); }
  /// Failure message (empty when ok).
  const std::string& error() const { return status.message; }

  StrategyKind strategy = StrategyKind::kFRA;
  int tiles = 0;
  std::uint64_t ghost_chunks = 0;
  std::uint64_t chunk_reads = 0;
  double total_s = 0.0;
  std::uint64_t bytes_communicated = 0;
  /// Server-side chunk-cache traffic for this query (v2 protocol).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// On a "server busy" refusal: the server's estimate of when retrying
  /// is worth it, derived from its live queue-depth gauge and measured
  /// submit latency (v3 protocol; 0 = no hint).
  std::uint32_t retry_after_ms = 0;
  /// How many submit attempts the client made before this result came
  /// back (1 = first try).  Client-side bookkeeping filled in by
  /// AdrClient's retry loop — never serialized on the wire.
  std::uint32_t attempts = 1;
  std::vector<Chunk> outputs;

  /// True when the server refused the query because it is saturated;
  /// retry after retry_after_ms (possibly on a new connection — the
  /// server closes the refused connection after this frame).
  bool server_busy() const { return status.code == StatusCode::kBusy; }
};

/// Builds the client view from a repository result.
WireResult to_wire_result(const QueryResult& result);

/// A decoded query frame: the query plus the execution options it asked
/// for (v4; older frames decode with default options).
struct WireQuery {
  Query query;
  ExecOptions options;
};

std::vector<std::byte> encode_query(const Query& query,
                                    const ExecOptions& options = {});
WireQuery decode_query_frame(std::span<const std::byte> payload);
/// Compatibility shim: decodes a query frame, discarding the options.
Query decode_query(std::span<const std::byte> payload);

std::vector<std::byte> encode_result(const WireResult& result);
WireResult decode_result(std::span<const std::byte> payload);

/// Stats endpoint (v3): a client asks the live server for its metrics
/// snapshot; the reply carries the obs registry rendered as JSON and,
/// when requested and tracing is enabled server-side, the query-
/// lifecycle ring exported as Chrome trace_event JSON.
struct WireStatsRequest {
  bool include_trace = false;
  /// v5: also return the telemetry sampler's ring as JSON (see
  /// obs/sampler.hpp).  history_samples caps how many trailing samples
  /// the reply carries (0 = the whole ring).
  bool include_history = false;
  std::uint32_t history_samples = 0;
};

struct WireStatsReply {
  std::string metrics_json;
  std::string trace_json;    // empty unless requested and tracer enabled
  std::string history_json;  // empty unless requested (v5) and sampler running
};

/// True when `payload` starts like a stats-request frame (how the
/// server dispatches without trial decoding).
bool is_stats_request(std::span<const std::byte> payload);

/// True when `payload` starts like a result frame.  Lets a client that
/// expected some other reply (e.g. a stats reply) recognize an
/// out-of-band result — a server at its connection cap answers
/// *everything* with a busy WireResult — and decode the typed status
/// instead of failing on an opaque tag mismatch.
bool is_result_frame(std::span<const std::byte> payload);

std::vector<std::byte> encode_stats_request(const WireStatsRequest& request);
WireStatsRequest decode_stats_request(std::span<const std::byte> payload);

std::vector<std::byte> encode_stats_reply(const WireStatsReply& reply);
WireStatsReply decode_stats_reply(std::span<const std::byte> payload);

// ---- primitive stream helpers (exposed for tests) ----

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);
  void bytes(std::span<const std::byte> b);
  void rect(const Rect& r);

  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::byte> bytes();
  Rect rect();

  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace adr::net
