#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"

namespace adr::net {

AdrServer::AdrServer(Repository& repository, std::uint16_t port,
                     const ComputeCosts& costs)
    : repository_(&repository), costs_(costs) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("AdrServer: socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: listen() failed");
  }
}

AdrServer::~AdrServer() { stop(); }

void AdrServer::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this]() { serve_loop(); });
}

void AdrServer::stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Closing the listening socket unblocks accept(); shutting down any
  // in-flight connection unblocks its read.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  const int conn = conn_fd_.load();
  if (conn >= 0) ::shutdown(conn, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

void AdrServer::serve_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    conn_fd_.store(fd);
    serve_connection(fd);
    conn_fd_.store(-1);
    ::close(fd);
  }
}

void AdrServer::serve_connection(int fd) {
  // Serve frames until the client closes or errors.
  for (;;) {
    std::vector<std::byte> payload;
    if (!read_frame(fd, payload)) return;
    WireResult result;
    try {
      const Query query = decode_query(payload);
      result = to_wire_result(repository_->submit(query, costs_));
      ++served_;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
      ADR_WARN("server: query failed: " << e.what());
    }
    if (!write_frame(fd, encode_result(result))) return;
  }
}

}  // namespace adr::net
