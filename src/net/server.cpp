#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"

namespace adr::net {

AdrServer::AdrServer(Repository& repository, std::uint16_t port,
                     const ComputeCosts& costs, int max_connections,
                     int scheduler_workers, std::size_t max_pending)
    : repository_(&repository),
      costs_(costs),
      scheduler_(repository, max_pending),
      scheduler_workers_(scheduler_workers),
      max_connections_(max_connections) {
  if (max_connections_ < 1) {
    throw std::invalid_argument("AdrServer: max_connections must be >= 1");
  }
  if (scheduler_workers_ < 1) {
    throw std::invalid_argument("AdrServer: scheduler_workers must be >= 1");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("AdrServer: socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: listen() failed");
  }
}

AdrServer::~AdrServer() { stop(); }

void AdrServer::start() {
  if (running_.exchange(true)) return;
  scheduler_.start(scheduler_workers_);
  accept_thread_ = std::thread([this]() { accept_loop(); });
}

void AdrServer::stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // shutdown() unblocks the accept() without invalidating the fd the
  // accept thread still reads; the thread sees running_ == false and
  // exits, and only then is the descriptor closed and cleared (closing
  // or overwriting listen_fd_ while accept() uses it is a race).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Drain: half-close every live connection.  Blocked reads return 0 so
  // each thread stops taking new frames, but a result frame for an
  // in-flight query still goes out before the thread closes its fd.
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard lock(conn_mutex_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  // All connection threads have collected their tickets; now drain and
  // join the scheduler workers.
  scheduler_.stop();
}

std::size_t AdrServer::active_connections() const {
  std::lock_guard lock(conn_mutex_);
  std::size_t live = 0;
  for (const auto& c : conns_) {
    if (!c->done.load()) ++live;
  }
  return live;
}

void AdrServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdrServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    if (!running_.load()) {
      ::close(fd);  // raced with stop(): never registered, close here
      break;
    }
    std::lock_guard lock(conn_mutex_);
    reap_finished_locked();
    if (live_fds_.size() >= static_cast<std::size_t>(max_connections_)) {
      // Count before the frame goes out: the busy frame is the client-
      // visible refusal signal, so the counter must already reflect it
      // by the time the client decodes it.
      ++refused_;
      ADR_WARN("server: refused connection, " << live_fds_.size() << " active");
      refuse_with_busy_frame(fd);  // at capacity: protocol-level refusal
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    live_fds_.insert(fd);
    conns_.push_back(std::move(conn));
    ADR_DEBUG("server: accepted fd=" << fd << " live=" << live_fds_.size());
    raw->thread = std::thread([this, raw]() { serve_connection(raw); });
  }
}

void AdrServer::refuse_with_busy_frame(int fd) {
  WireResult busy;
  busy.ok = false;
  busy.error = kServerBusyError;
  write_frame(fd, encode_result(busy));
  // Graceful close: half-close our side, then drain whatever the client
  // was still sending so the kernel never answers it with an RST that
  // would destroy the busy frame before the client reads it.  The drain
  // is bounded by a receive timeout against stubborn peers.
  ::shutdown(fd, SHUT_WR);
  timeval timeout{};
  timeout.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[1024];
  while (::read(fd, sink, sizeof(sink)) > 0) {
  }
  ::close(fd);
}

void AdrServer::serve_connection(Conn* conn) {
  const int fd = conn->fd;
  // Each connection is one FIFO lane in the scheduler: queries on a
  // connection keep their serial semantics while independent connections
  // share the worker pool (and, below it, the repository's warm executor
  // pool and chunk cache).
  const std::uint64_t client_id = next_client_id_.fetch_add(1);
  bool refused_busy = false;
  // Serve frames until the client closes, errors, or stop() half-closes.
  for (;;) {
    std::vector<std::byte> payload;
    if (!read_frame(fd, payload)) break;
    WireResult result;
    try {
      const Query query = decode_query(payload);
      const std::uint64_t ticket = scheduler_.try_enqueue(query, costs_, client_id);
      if (ticket == 0) {
        // Scheduler saturated: protocol-level refusal, then close.
        ++queries_refused_;
        ADR_WARN("server: scheduler full, refusing query on fd=" << fd);
        result.ok = false;
        result.error = kServerBusyError;
        refused_busy = true;
      } else {
        QuerySubmissionService::Outcome outcome = scheduler_.take(ticket);
        if (outcome.ok) {
          result = to_wire_result(outcome.result);
          ++served_;
        } else {
          result.ok = false;
          result.error = outcome.error;
          ADR_WARN("server: query failed: " << outcome.error);
        }
      }
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
      ADR_WARN("server: query failed: " << e.what());
    }
    if (!write_frame(fd, encode_result(result))) break;
    if (refused_busy) break;
  }
  // Deregister before closing so stop() can never shutdown() a recycled
  // descriptor; the connection thread is the only closer of its fd.
  {
    std::lock_guard lock(conn_mutex_);
    live_fds_.erase(fd);
    ADR_DEBUG("server: connection fd=" << fd << " done, live=" << live_fds_.size());
  }
  ::close(fd);
  conn->done.store(true);
}

}  // namespace adr::net
