#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace adr::net {
namespace {

// Cumulative process-wide series (metric catalog: docs/observability.md).
struct ServerMetrics {
  obs::Counter& connections_accepted;
  obs::Counter& connections_refused;
  obs::Counter& queries_served;
  obs::Counter& queries_refused;
  obs::Counter& stats_requests;
  obs::Gauge& active_connections;
};

ServerMetrics& server_metrics() {
  static ServerMetrics m{obs::metrics().counter("server.connections_accepted"),
                         obs::metrics().counter("server.connections_refused"),
                         obs::metrics().counter("server.queries_served"),
                         obs::metrics().counter("server.queries_refused"),
                         obs::metrics().counter("server.stats_requests"),
                         obs::metrics().gauge("server.active_connections")};
  return m;
}

}  // namespace

AdrServer::AdrServer(Repository& repository, std::uint16_t port,
                     const ComputeCosts& costs, int max_connections,
                     int scheduler_workers, std::size_t max_pending)
    : repository_(&repository),
      costs_(costs),
      scheduler_(repository, max_pending),
      scheduler_workers_(scheduler_workers),
      max_connections_(max_connections) {
  if (max_connections_ < 1) {
    throw std::invalid_argument("AdrServer: max_connections must be >= 1");
  }
  if (scheduler_workers_ < 1) {
    throw std::invalid_argument("AdrServer: scheduler_workers must be >= 1");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("AdrServer: socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: listen() failed");
  }
}

AdrServer::~AdrServer() { stop(); }

void AdrServer::start() {
  if (running_.exchange(true)) return;
  scheduler_.start(scheduler_workers_);
  accept_thread_ = std::thread([this]() { accept_loop(); });
}

void AdrServer::stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // shutdown() unblocks the accept() without invalidating the fd the
  // accept thread still reads; the thread sees running_ == false and
  // exits, and only then is the descriptor closed and cleared (closing
  // or overwriting listen_fd_ while accept() uses it is a race).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Drain: half-close every live connection.  Blocked reads return 0 so
  // each thread stops taking new frames, but a result frame for an
  // in-flight query still goes out before the thread closes its fd.
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard lock(conn_mutex_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  // All connection threads have collected their tickets; now drain and
  // join the scheduler workers.
  scheduler_.stop();
}

std::size_t AdrServer::active_connections() const {
  std::lock_guard lock(conn_mutex_);
  std::size_t live = 0;
  for (const auto& c : conns_) {
    if (!c->done.load()) ++live;
  }
  return live;
}

void AdrServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdrServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    if (!running_.load()) {
      ::close(fd);  // raced with stop(): never registered, close here
      break;
    }
    std::lock_guard lock(conn_mutex_);
    reap_finished_locked();
    if (live_fds_.size() >= static_cast<std::size_t>(max_connections_)) {
      // Count before the frame goes out: the busy frame is the client-
      // visible refusal signal, so the counter must already reflect it
      // by the time the client decodes it.
      ++refused_;
      server_metrics().connections_refused.add();
      ADR_WARN("server: refused connection, " << live_fds_.size() << " active");
      refuse_with_busy_frame(fd);  // at capacity: protocol-level refusal
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    live_fds_.insert(fd);
    server_metrics().connections_accepted.add();
    server_metrics().active_connections.add(1);
    conns_.push_back(std::move(conn));
    ADR_DEBUG("server: accepted fd=" << fd << " live=" << live_fds_.size());
    raw->thread = std::thread([this, raw]() { serve_connection(raw); });
  }
}

std::uint32_t AdrServer::retry_after_hint_ms() const {
  // First consumer of the live metrics: the refused client should come
  // back roughly when the backlog it would sit behind has drained.
  const std::int64_t depth =
      obs::metrics().gauge("scheduler.queue_depth").value() +
      obs::metrics().gauge("scheduler.in_flight").value();
  double mean_s = obs::metrics().histogram("submit.latency_s").snapshot().mean();
  if (mean_s <= 0.0) mean_s = 0.05;  // nothing measured yet: polite default
  const double eta_s =
      (static_cast<double>(std::max<std::int64_t>(depth, 0)) /
           static_cast<double>(std::max(1, scheduler_workers_)) +
       1.0) *
      mean_s;
  return static_cast<std::uint32_t>(std::clamp(eta_s * 1000.0, 25.0, 10000.0));
}

void AdrServer::refuse_with_busy_frame(int fd) {
  WireResult busy;
  busy.status = Status::make(StatusCode::kBusy, kServerBusyError);
  busy.retry_after_ms = retry_after_hint_ms();
  write_frame(fd, encode_result(busy));
  // Graceful close: half-close our side, then drain whatever the client
  // was still sending so the kernel never answers it with an RST that
  // would destroy the busy frame before the client reads it.  The drain
  // is bounded by a receive timeout against stubborn peers.
  ::shutdown(fd, SHUT_WR);
  timeval timeout{};
  timeout.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[1024];
  while (::read(fd, sink, sizeof(sink)) > 0) {
  }
  ::close(fd);
}

void AdrServer::serve_connection(Conn* conn) {
  const int fd = conn->fd;
  // Each connection is one FIFO lane in the scheduler: queries on a
  // connection keep their serial semantics while independent connections
  // share the worker pool (and, below it, the repository's warm executor
  // pool and chunk cache).
  const std::uint64_t client_id = next_client_id_.fetch_add(1);
  bool refused_busy = false;
  // Serve frames until the client closes, errors, or stop() half-closes.
  for (;;) {
    std::vector<std::byte> payload;
    if (!read_frame(fd, payload)) break;
    if (is_stats_request(payload)) {
      // Stats endpoint: answer in-band and keep the connection open, so
      // a monitoring client can poll the same socket it queries on.
      WireStatsReply reply;
      try {
        const WireStatsRequest req = decode_stats_request(payload);
        reply.metrics_json = obs::metrics().snapshot().to_json();
        if (req.include_trace && obs::tracer().enabled()) {
          reply.trace_json = obs::tracer().chrome_json();
        }
      } catch (const std::exception& e) {
        ADR_WARN("server: stats request failed: " << e.what());
        break;
      }
      server_metrics().stats_requests.add();
      if (!write_frame(fd, encode_stats_reply(reply))) break;
      continue;
    }
    WireResult result;
    std::uint64_t ticket = 0;
    try {
      // The exec options decoded from the frame travel with the query
      // through the scheduler to execution.
      const WireQuery wq = decode_query_frame(payload);
      ticket = scheduler_.try_enqueue(wq.query, costs_, client_id, wq.options);
      if (ticket == 0) {
        // Scheduler saturated: protocol-level refusal, then close.
        ++queries_refused_;
        server_metrics().queries_refused.add();
        ADR_WARN("server: scheduler full, refusing query on fd=" << fd);
        result.status = Status::make(StatusCode::kBusy, kServerBusyError);
        result.retry_after_ms = retry_after_hint_ms();
        refused_busy = true;
      } else {
        QuerySubmissionService::Outcome outcome = scheduler_.take(ticket);
        if (outcome.ok()) {
          result = to_wire_result(outcome.result);
          ++served_;
          server_metrics().queries_served.add();
        } else {
          result.status = std::move(outcome.status);
          ADR_WARN("server: query failed: " << result.status.to_string());
        }
      }
    } catch (const std::exception& e) {
      result.status = status_from_exception(e);
      ADR_WARN("server: query failed: " << e.what());
    }
    // Injected reply drop: the query executed, but the result frame
    // never leaves the server — the client sees the connection close
    // mid-query (kUnavailable) and must decide whether to retry.
    if (fault::faults().fires("net.reply_drop")) {
      ADR_WARN("server: dropping reply on fd=" << fd << " (injected fault)");
      break;
    }
    const bool tracing = obs::tracer().enabled();
    const std::uint64_t reply_ts = tracing ? obs::tracer().now_us() : 0;
    const bool wrote = write_frame(fd, encode_result(result));
    if (tracing && ticket != 0) {
      // Last span of the query lifecycle: serializing + flushing the
      // result frame back to the client.
      obs::TraceEvent ev;
      ev.name = "reply";
      ev.query = ticket;
      ev.ts_us = reply_ts;
      ev.dur_us = obs::tracer().now_us() - reply_ts;
      ev.tid = static_cast<std::uint32_t>(ticket);
      obs::tracer().record(ev);
    }
    if (!wrote) break;
    if (refused_busy) break;
  }
  // Deregister before closing so stop() can never shutdown() a recycled
  // descriptor; the connection thread is the only closer of its fd.
  {
    std::lock_guard lock(conn_mutex_);
    live_fds_.erase(fd);
    server_metrics().active_connections.add(-1);
    ADR_DEBUG("server: connection fd=" << fd << " done, live=" << live_fds_.size());
  }
  ::close(fd);
  conn->done.store(true);
}

}  // namespace adr::net
