#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

// Poller (net/poller.hpp) defines ADR_HAVE_EPOLL on Linux; this file
// keys its eventfd-vs-pipe wakeup choice off the same macro.
#include "net/poller.hpp"

#ifdef ADR_HAVE_EPOLL
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "net/http_exposition.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace adr::net {
namespace {

using Clock = std::chrono::steady_clock;

// Cumulative process-wide series (metric catalog: docs/observability.md).
struct ServerMetrics {
  obs::Counter& connections_accepted;
  obs::Counter& connections_refused;
  obs::Counter& queries_served;
  obs::Counter& queries_refused;
  obs::Counter& deadline_refusals;
  obs::Counter& stats_requests;
  obs::Counter& epoll_wakeups;
  obs::Counter& frames_partial;
  obs::Counter& accept_errors;
  obs::Gauge& active_connections;
};

ServerMetrics& server_metrics() {
  static ServerMetrics m{obs::metrics().counter("server.connections_accepted"),
                         obs::metrics().counter("server.connections_refused"),
                         obs::metrics().counter("server.queries_served"),
                         obs::metrics().counter("server.queries_refused"),
                         obs::metrics().counter("server.deadline_refusals"),
                         obs::metrics().counter("server.stats_requests"),
                         obs::metrics().counter("server.epoll_wakeups"),
                         obs::metrics().counter("server.frames_partial"),
                         obs::metrics().counter("server.accept_errors"),
                         obs::metrics().gauge("server.active_connections")};
  return m;
}

// Poller tags: connection ids start above the two fixed slots.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// Queries one connection may have in the scheduler at once before the
/// loop stops reading its socket (TCP back-pressure reaches the peer).
constexpr std::size_t kMaxPipelinedPerConn = 8;
/// Unflushed outbound bytes beyond which a connection's reads pause.
constexpr std::size_t kMaxQueuedWriteBytes = 16u << 20;
/// Flush + linger budget for a connection being closed (busy refusals,
/// stop() drain): a peer that never reads its last frame is cut off
/// after this.
constexpr auto kCloseDrainBudget = std::chrono::milliseconds(200);
constexpr auto kStopFlushBudget = std::chrono::milliseconds(500);
/// Accept-error backoff: doubles per consecutive failure up to the cap
/// (the EMFILE/ENFILE accept storm must not busy-spin the loop).
constexpr auto kAcceptBackoffBase = std::chrono::milliseconds(1);
constexpr auto kAcceptBackoffMax = std::chrono::milliseconds(200);

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// Per-connection state, owned exclusively by the event-loop thread.
//
// Life cycle: serving -> closing (no more inbound frames; outstanding
// replies still flush) -> lingering (SHUT_WR sent, inbound bytes
// discarded so the kernel cannot RST the final frame away) -> closed.
// Every closing/lingering connection carries a deadline so a peer that
// neither reads nor closes is cut off in bounded time.
struct AdrServer::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  std::uint64_t client_id = 0;
  FrameReader reader;
  FrameWriter writer;
  /// Outstanding scheduler tickets, oldest first (per-client FIFO lanes
  /// complete in submission order, so replies leave in request order).
  std::deque<std::uint64_t> tickets;
  bool refused = false;  // busy-refusal connection: never counted/served
  bool counted = false;  // contributes to the cap and the active gauge
  bool closing = false;
  bool lingering = false;
  bool reading = true;   // poller read interest
  bool writing = false;  // poller write interest
  Clock::time_point deadline{};  // epoch() = none
};

// Everything the loop owns lives on the loop thread's stack; the only
// cross-thread channels are atomics, the completion queue, and the
// wakeup fd.
struct AdrServer::LoopState {
  Poller poller;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  /// In-flight ticket -> connection id (dropped when the peer dies
  /// before its result: the outcome is then taken and discarded).
  std::unordered_map<std::uint64_t, std::uint64_t> ticket_conn;
  /// Min-heap of (deadline, conn id); entries are validated lazily
  /// against Conn::deadline, so re-arming never needs heap surgery.
  std::vector<std::pair<Clock::time_point, std::uint64_t>> deadlines;
  std::uint64_t next_conn_id = kFirstConnId;
  std::size_t serving_count = 0;  // counted conns, for the cap check
  bool accept_registered = false;
  /// False when the wake eventfd/pipe could not be registered: the loop
  /// then degrades to bounded polling (loop_timeout_ms) so completions
  /// and stop() still make progress.
  bool wake_registered = true;
  bool accept_paused = false;
  Clock::time_point accept_resume{};
  int accept_error_streak = 0;
  bool stopping = false;
};

namespace {

bool deadline_heap_greater(const std::pair<Clock::time_point, std::uint64_t>& a,
                           const std::pair<Clock::time_point, std::uint64_t>& b) {
  return a.first > b.first;
}

}  // namespace

AdrServer::AdrServer(Repository& repository, std::uint16_t port,
                     const ComputeCosts& costs, int max_connections,
                     int scheduler_workers, std::size_t max_pending,
                     const TelemetryOptions& telemetry)
    : repository_(&repository),
      costs_(costs),
      telemetry_(telemetry),
      scheduler_(repository, max_pending),
      scheduler_workers_(scheduler_workers),
      max_connections_(max_connections) {
  if (max_connections_ < 1) {
    throw std::invalid_argument("AdrServer: max_connections must be >= 1");
  }
  if (scheduler_workers_ < 1) {
    throw std::invalid_argument("AdrServer: scheduler_workers must be >= 1");
  }
  if (telemetry_.http_port >= 0) {
    http_ = std::make_unique<HttpExpositionServer>(
        static_cast<std::uint16_t>(telemetry_.http_port));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("AdrServer: socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 1024) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrServer: listen() failed");
  }
  set_nonblocking(listen_fd_);
}

AdrServer::AdrServer(Repository& repository, std::uint16_t port,
                     const ComputeCosts& costs, const RuntimeConfig& runtime)
    : AdrServer((runtime.check(), repository), port, costs,
                static_cast<int>(runtime.max_connections),
                static_cast<int>(runtime.scheduler_workers), runtime.max_pending,
                runtime.telemetry) {
  scheduler_.set_gang_policy(runtime.gang);
  if (runtime.adaptive.enabled) {
    // Seed the pool at the band floor; the controller moves it from there.
    repository_->set_executor_pool_limit(runtime.adaptive.min_resident,
                                         runtime.adaptive.prewarm);
    AdaptiveController::Actuators act;
    const bool warm = runtime.adaptive.prewarm;
    act.set_resident = [this, warm](std::size_t n) {
      repository_->set_executor_pool_limit(n, warm);
    };
    act.set_gang_window = [this](std::chrono::microseconds w) {
      scheduler_.set_gang_window(w);
    };
    adaptive_ =
        std::make_unique<AdaptiveController>(runtime.adaptive, std::move(act));
  }
}

AdrServer::~AdrServer() { stop(); }

std::uint16_t AdrServer::http_port() const { return http_ ? http_->port() : 0; }

void AdrServer::start() {
  if (running_.exchange(true)) return;
  // Continuous telemetry for the server's lifetime: the sampler feeds
  // the /history endpoints (wire and HTTP); both are refcounted /
  // idempotent, so stacked servers in one process compose.
  if (telemetry_.sampler) {
    obs::TelemetrySampler::Options opts;
    opts.period = telemetry_.sample_period;
    opts.capacity = telemetry_.sample_capacity;
    obs::sampler().start(opts);
  }
  if (http_) http_->start();
#ifdef ADR_HAVE_EPOLL
  wake_rd_ = wake_wr_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_rd_ < 0) throw std::runtime_error("AdrServer: eventfd() failed");
#else
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("AdrServer: pipe() failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
#endif
  // Completion routing: workers record the ticket and poke the loop;
  // the loop alone turns outcomes into result frames.
  scheduler_.set_completion_callback(
      [this](std::uint64_t ticket) { on_ticket_done(ticket); });
  scheduler_.start(scheduler_workers_);
  // The controller needs the sampler ring the lines above started; its
  // tick thread no-ops until two samples exist.
  if (adaptive_) adaptive_->start();
  loop_thread_ = std::thread([this]() { event_loop(); });
}

void AdrServer::stop() {
  const bool was_running = running_.exchange(false);
  if (loop_thread_.joinable()) {
    wake();
    loop_thread_.join();
  }
  if (http_) http_->stop();
  // Release the sampler ref taken in start() exactly once (stop() runs
  // again from the destructor).
  if (was_running && telemetry_.sampler) obs::sampler().stop();
  // The controller must not actuate a scheduler that is tearing down.
  if (adaptive_) adaptive_->stop();
  // The loop has exited: every connection fd is closed, in-flight
  // replies were flushed under the drain deadlines.  Now drain and join
  // the scheduler workers.
  scheduler_.stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    if (wake_wr_ != wake_rd_ && wake_wr_ >= 0) ::close(wake_wr_);
    wake_rd_ = wake_wr_ = -1;
  }
}

void AdrServer::wake() {
  if (wake_wr_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_wr_, &one, sizeof(one));
}

void AdrServer::on_ticket_done(std::uint64_t ticket) {
  {
    std::lock_guard lock(completion_mutex_);
    completed_tickets_.push_back(ticket);
  }
  wake();
}

std::uint32_t AdrServer::retry_after_hint_ms() const {
  // First consumer of the live metrics: the refused client should come
  // back roughly when the backlog it would sit behind has drained.
  const std::int64_t depth =
      obs::metrics().gauge("scheduler.queue_depth").value() +
      obs::metrics().gauge("scheduler.in_flight").value();
  // Prefer the *windowed* submit-latency mean (last few sampler ring
  // samples): the cumulative mean never forgets a morning burst, so
  // hints computed from it keep overestimating long after the burst
  // subsides.  Fall back to cumulative when the ring is too short.
  double mean_s =
      obs::windowed_histogram_mean(obs::sampler().history(8), "submit.latency_s")
          .value_or(0.0);
  if (mean_s <= 0.0) {
    mean_s = obs::metrics().histogram("submit.latency_s").snapshot().mean();
  }
  if (mean_s <= 0.0) mean_s = 0.05;  // nothing measured yet: polite default
  const double eta_s =
      (static_cast<double>(std::max<std::int64_t>(depth, 0)) /
           static_cast<double>(std::max(1, scheduler_workers_)) +
       1.0) *
      mean_s;
  return static_cast<std::uint32_t>(std::clamp(eta_s * 1000.0, 25.0, 10000.0));
}

// ------------------------------------------------------- event loop

void AdrServer::event_loop() {
  LoopState ls;
  ls.accept_registered =
      ls.poller.add(listen_fd_, kListenTag, /*rd=*/true, /*wr=*/false);
  if (!ls.accept_registered) {
    // Retry registration through the accept-backoff path.
    ls.accept_paused = true;
    ls.accept_resume = Clock::now() + kAcceptBackoffBase;
  }
  ls.wake_registered =
      ls.poller.add(wake_rd_, kWakeTag, /*rd=*/true, /*wr=*/false);

  std::vector<Poller::Ready> events;
  for (;;) {
    if (!ls.stopping && !running_.load()) loop_begin_stop_drain(ls);
    if (ls.stopping && ls.conns.empty()) break;

    // Accept backoff expired: watch the listen socket again.
    if (ls.accept_paused && Clock::now() >= ls.accept_resume && !ls.stopping) {
      ls.accept_paused = false;
      if (ls.poller.add(listen_fd_, kListenTag, true, false)) {
        ls.accept_registered = true;
      } else {
        loop_accept_error(ls);  // re-arm the backoff
      }
    }

    ls.poller.wait(events, loop_timeout_ms(ls));
    server_metrics().epoll_wakeups.add();

    for (const Poller::Ready& ev : events) {
      if (ev.tag == kWakeTag) {
        std::uint64_t buf;
        while (::read(wake_rd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.tag == kListenTag) {
        loop_accept(ls);
        continue;
      }
      // The connection may have been closed by an earlier event in this
      // batch; look it up fresh per half.
      if (ev.readable) {
        auto it = ls.conns.find(ev.tag);
        if (it != ls.conns.end()) loop_readable(ls, *it->second);
      }
      if (ev.writable) {
        auto it = ls.conns.find(ev.tag);
        if (it != ls.conns.end()) loop_flush(ls, *it->second);
      }
    }

    loop_drain_completions(ls);
    loop_expire_deadlines(ls);
  }
}

void AdrServer::loop_begin_stop_drain(LoopState& ls) {
  ls.stopping = true;
  if (ls.accept_registered) {
    ls.poller.del(listen_fd_);
    ls.accept_registered = false;
  }
  // Close the listen socket now so new connects are refused while the
  // drain runs (the loop is the fd's only user once start() returned).
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::uint64_t> ids;
  ids.reserve(ls.conns.size());
  for (const auto& [id, conn] : ls.conns) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = ls.conns.find(id);
    if (it == ls.conns.end()) continue;
    Conn& conn = *it->second;
    conn.closing = true;
    if (conn.tickets.empty()) {
      if (conn.deadline == Clock::time_point{}) {
        conn.deadline = Clock::now() + kStopFlushBudget;
        ls.deadlines.emplace_back(conn.deadline, conn.id);
        std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
      }
      loop_flush(ls, conn);  // may close and erase conn
    }
    // Connections with in-flight queries drain through the completion
    // path: the last reply arms their deadline.
  }
}

int AdrServer::loop_timeout_ms(LoopState& ls) const {
  Clock::time_point next{};
  if (ls.accept_paused) next = ls.accept_resume;
  if (!ls.deadlines.empty()) {
    const auto top = ls.deadlines.front().first;
    if (next == Clock::time_point{} || top < next) next = top;
  }
  // Without a working wake fd, bound every wait so completions posted by
  // worker threads are still drained promptly.
  const int cap = ls.wake_registered ? 60'000 : 10;
  if (next == Clock::time_point{}) return ls.wake_registered ? -1 : cap;
  const auto delta =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - Clock::now());
  return static_cast<int>(std::clamp<long long>(delta.count() + 1, 0, cap));
}

void AdrServer::loop_expire_deadlines(LoopState& ls) {
  const auto now = Clock::now();
  while (!ls.deadlines.empty() && ls.deadlines.front().first <= now) {
    std::pop_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
    const auto [when, id] = ls.deadlines.back();
    ls.deadlines.pop_back();
    auto it = ls.conns.find(id);
    if (it == ls.conns.end()) continue;       // already closed
    Conn& conn = *it->second;
    if (conn.deadline != when) continue;      // re-armed since
    ADR_DEBUG("server: drain deadline hit, closing fd=" << conn.fd);
    loop_close(ls, conn);
  }
}

// ------------------------------------------------------- accepting

void AdrServer::loop_accept(LoopState& ls) {
  for (;;) {
    if (ls.stopping) return;
    // Injected accept failure (EMFILE-style storm): the pending
    // connection stays in the backlog; the loop must back off, not spin.
    if (fault::faults().fires("net.accept")) {
      loop_accept_error(ls);
      return;
    }
#ifdef ADR_HAVE_EPOLL
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
#endif
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ls.accept_error_streak = 0;
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) continue;
      loop_accept_error(ls);
      return;
    }
#ifndef ADR_HAVE_EPOLL
    set_nonblocking(fd);
    // Match the accept4(SOCK_CLOEXEC) path: forked children must not
    // inherit client sockets.
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif
    set_tcp_nodelay(fd);
    ls.accept_error_streak = 0;
    if (ls.serving_count >= static_cast<std::size_t>(max_connections_)) {
      loop_refuse(ls, fd);
      continue;
    }
    loop_register(ls, fd);
  }
}

void AdrServer::loop_accept_error(LoopState& ls) {
  server_metrics().accept_errors.add();
  ++ls.accept_error_streak;
  auto backoff = kAcceptBackoffBase * (1 << std::min(ls.accept_error_streak - 1, 8));
  if (backoff > kAcceptBackoffMax) backoff = kAcceptBackoffMax;
  ADR_WARN("server: accept failed (streak " << ls.accept_error_streak
                                            << "), backing off "
                                            << backoff.count() << "ms");
  if (ls.accept_registered) {
    ls.poller.del(listen_fd_);
    ls.accept_registered = false;
  }
  ls.accept_paused = true;
  ls.accept_resume = Clock::now() + backoff;
}

void AdrServer::loop_register(LoopState& ls, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->id = ls.next_conn_id++;
  conn->fd = fd;
  conn->client_id = next_client_id_.fetch_add(1);
  conn->counted = true;
  Conn* raw = conn.get();
  if (!ls.poller.add(fd, raw->id, /*rd=*/true, /*wr=*/false)) {
    // Unregistered fds never receive events; dropping here is the only
    // alternative to a silent leak.
    ::close(fd);
    return;
  }
  ls.conns.emplace(raw->id, std::move(conn));
  ++ls.serving_count;
  active_conns_.fetch_add(1);
  server_metrics().connections_accepted.add();
  server_metrics().active_connections.add(1);
  ADR_DEBUG("server: accepted fd=" << fd << " live=" << ls.serving_count);
}

void AdrServer::loop_refuse(LoopState& ls, int fd) {
  // Count before the frame goes out: the busy frame is the client-
  // visible refusal signal, so the counter must already reflect it by
  // the time the client decodes it.
  ++refused_;
  server_metrics().connections_refused.add();
  ADR_WARN("server: refused connection, " << ls.serving_count << " active");
  auto conn = std::make_unique<Conn>();
  conn->id = ls.next_conn_id++;
  conn->fd = fd;
  conn->refused = true;
  conn->closing = true;
  Conn* raw = conn.get();
  if (!ls.poller.add(fd, raw->id, /*rd=*/true, /*wr=*/false)) {
    ::close(fd);  // refusal already counted; the peer just sees a reset
    return;
  }
  ls.conns.emplace(raw->id, std::move(conn));
  WireResult busy;
  busy.status = Status::make(StatusCode::kBusy, kServerBusyError);
  busy.retry_after_ms = retry_after_hint_ms();
  raw->writer.enqueue(encode_result(busy));
  raw->deadline = Clock::now() + kCloseDrainBudget;
  ls.deadlines.emplace_back(raw->deadline, raw->id);
  std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
  loop_flush(ls, *raw);
}

// ------------------------------------------------------- reading

void AdrServer::loop_readable(LoopState& ls, Conn& conn) {
  if (conn.closing || conn.lingering) {
    // No more frames will be served; discard inbound bytes (so the
    // kernel cannot answer them with an RST that destroys our final
    // frame) and watch for the peer's close.
    char sink[4096];
    for (;;) {
      const ssize_t r = ::recv(conn.fd, sink, sizeof(sink), 0);
      if (r == 0) {
        loop_close(ls, conn);
        return;
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        loop_close(ls, conn);
        return;
      }
    }
  }
  const FrameReader::IoStatus st = conn.reader.pump(conn.fd);
  if (st != FrameReader::IoStatus::kOpen) {
    // Orderly close or transport error: either way the connection is
    // done; in-flight tickets are orphaned and their outcomes dropped.
    loop_close(ls, conn);
    return;
  }
  if (conn.reader.mid_frame()) server_metrics().frames_partial.add();
  loop_process_frames(ls, conn);
}

void AdrServer::loop_process_frames(LoopState& ls, Conn& conn) {
  const std::uint64_t id = conn.id;
  while (!conn.closing && conn.tickets.size() < kMaxPipelinedPerConn &&
         conn.writer.queued_bytes() < kMaxQueuedWriteBytes) {
    std::vector<std::byte> payload;
    if (!conn.reader.next(payload)) break;
    // Preserved fault point: a transport failure at the moment a frame
    // is lifted off the connection (the event-loop twin of the blocking
    // read_frame() site).
    if (fault::faults().fires("net.read_frame")) {
      loop_close(ls, conn);
      return;
    }
    loop_handle_frame(ls, conn, std::move(payload));
    if (ls.conns.find(id) == ls.conns.end()) return;  // frame handler closed it
  }
  loop_update_interest(ls, conn);
}

void AdrServer::loop_handle_frame(LoopState& ls, Conn& conn,
                                  std::vector<std::byte> payload) {
  if (is_stats_request(payload)) {
    // Stats endpoint: answer in-band and keep the connection open, so a
    // monitoring client can poll the same socket it queries on.
    WireStatsReply reply;
    try {
      const WireStatsRequest req = decode_stats_request(payload);
      reply.metrics_json = obs::metrics().snapshot().to_json();
      if (req.include_trace && obs::tracer().enabled()) {
        reply.trace_json = obs::tracer().chrome_json();
      }
      if (req.include_history) {
        // Empty ring (sampler idle) still renders valid JSON with zero
        // samples — clients need no special case.
        reply.history_json = obs::sampler().history_json(req.history_samples);
      }
    } catch (const std::exception& e) {
      ADR_WARN("server: stats request failed: " << e.what());
      loop_close(ls, conn);
      return;
    }
    server_metrics().stats_requests.add();
    if (!conn.writer.enqueue(encode_stats_reply(reply))) {
      conn.closing = true;
      conn.deadline = Clock::now() + kCloseDrainBudget;
      ls.deadlines.emplace_back(conn.deadline, conn.id);
      std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
    }
    loop_flush(ls, conn);
    return;
  }
  WireResult result;
  try {
    // The exec options decoded from the frame travel with the query
    // through the scheduler to execution.
    const WireQuery wq = decode_query_frame(payload);
    const Qos& qos = wq.options.qos;
    // Deadline-aware admission: a drop-on-expiry query whose deadline
    // already passed gets the typed refusal immediately — queueing it
    // only to shed it later wastes a scheduler slot.  The connection
    // survives: the client is behaving, its clock just ran out.
    if (qos.drop_on_expiry && qos.expired()) {
      ++deadline_refusals_;
      server_metrics().deadline_refusals.add();
      result.status = Status::make(StatusCode::kDeadlineExceeded,
                                   "deadline expired before admission");
      loop_reply(ls, conn, result, /*ticket=*/0, /*close_after=*/false);
      return;
    }
    const std::uint64_t ticket =
        scheduler_.try_enqueue(wq.query, costs_, conn.client_id, wq.options);
    if (ticket != 0) {
      conn.tickets.push_back(ticket);
      ls.ticket_conn.emplace(ticket, conn.id);
      return;  // the completion hook routes the result back to the loop
    }
    // Scheduler saturated: protocol-level refusal, then close.
    ++queries_refused_;
    server_metrics().queries_refused.add();
    ADR_WARN("server: scheduler full, refusing query on fd=" << conn.fd);
    const std::uint32_t hint_ms = retry_after_hint_ms();
    // A busy + retry-after answer is a lie when the hint overshoots the
    // query's remaining deadline budget: the retry would only arrive to
    // be refused again.  Tell the client the truth — kDeadlineExceeded,
    // which its RetryPolicy never retries.
    if (qos.drop_on_expiry && qos.has_deadline() &&
        std::chrono::milliseconds(hint_ms) >= qos.remaining()) {
      ++deadline_refusals_;
      server_metrics().deadline_refusals.add();
      result.status = Status::make(StatusCode::kDeadlineExceeded,
                                   "saturated: a retry would miss the deadline");
    } else {
      result.status = Status::make(StatusCode::kBusy, kServerBusyError);
      result.retry_after_ms = hint_ms;
    }
    loop_reply(ls, conn, result, /*ticket=*/0, /*close_after=*/true);
    return;
  } catch (const std::exception& e) {
    result.status = status_from_exception(e);
    ADR_WARN("server: query failed: " << e.what());
  }
  // Malformed frame: an error result, and the connection survives.
  loop_reply(ls, conn, result, /*ticket=*/0, /*close_after=*/false);
}

// ------------------------------------------------------- replying

void AdrServer::loop_reply(LoopState& ls, Conn& conn, const WireResult& result,
                           std::uint64_t ticket, bool close_after) {
  // Injected reply drop: the query executed, but the result frame never
  // leaves the server — the client sees the connection close mid-query
  // (kUnavailable) and must decide whether to retry.
  if (fault::faults().fires("net.reply_drop")) {
    ADR_WARN("server: dropping reply on fd=" << conn.fd << " (injected fault)");
    loop_close(ls, conn);
    return;
  }
  const bool tracing = obs::tracer().enabled();
  const std::uint64_t reply_ts = tracing ? obs::tracer().now_us() : 0;
  const bool queued = conn.writer.enqueue(encode_result(result));
  if (tracing && ticket != 0) {
    // Last span of the query lifecycle: serializing the result frame
    // into the connection's outbound buffer.
    obs::TraceEvent ev;
    ev.name = "reply";
    ev.query = ticket;
    ev.ts_us = reply_ts;
    ev.dur_us = obs::tracer().now_us() - reply_ts;
    ev.tid = static_cast<std::uint32_t>(ticket);
    obs::tracer().record(ev);
  }
  if (queued && result.ok()) {
    ++served_;
    server_metrics().queries_served.add();
  }
  if (!queued || close_after) {
    // Injected write fault (flush what was buffered, then die) or a
    // protocol-level refusal (busy frame is the last thing we say).
    conn.closing = true;
    conn.deadline = Clock::now() + kCloseDrainBudget;
    ls.deadlines.emplace_back(conn.deadline, conn.id);
    std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
  }
  loop_flush(ls, conn);
}

void AdrServer::loop_flush(LoopState& ls, Conn& conn) {
  if (!conn.writer.idle()) {
    const FrameWriter::IoStatus st = conn.writer.flush(conn.fd);
    if (st == FrameWriter::IoStatus::kError) {
      loop_close(ls, conn);
      return;
    }
  }
  loop_update_interest(ls, conn);
  if (conn.writer.idle() && conn.closing && conn.tickets.empty()) {
    loop_maybe_finish_close(ls, conn);
  }
}

void AdrServer::loop_update_interest(LoopState& ls, Conn& conn) {
  // Closing/lingering connections keep reading to observe the peer's
  // close; serving connections pause reads while the scheduler or the
  // outbound buffer is saturated (TCP back-pressure reaches the peer).
  const bool want_read =
      conn.closing || conn.lingering ||
      (conn.tickets.size() < kMaxPipelinedPerConn &&
       conn.writer.queued_bytes() < kMaxQueuedWriteBytes);
  const bool want_write = !conn.writer.idle();
  if (want_read != conn.reading || want_write != conn.writing) {
    conn.reading = want_read;
    conn.writing = want_write;
    ls.poller.mod(conn.fd, conn.id, want_read, want_write);
  }
}

void AdrServer::loop_maybe_finish_close(LoopState& ls, Conn& conn) {
  if (conn.lingering) return;  // already draining; deadline will close
  if (conn.refused || conn.reader.mid_frame() || conn.reader.frames_ready() > 0) {
    // The peer has bytes in flight we never consumed (a refused client's
    // query, a half-delivered frame).  Half-close and discard its input
    // until it closes or the deadline lands — closing outright would let
    // the kernel RST our final frame away before the peer reads it.
    ::shutdown(conn.fd, SHUT_WR);
    conn.lingering = true;
    conn.deadline = Clock::now() + kCloseDrainBudget;
    ls.deadlines.emplace_back(conn.deadline, conn.id);
    std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
    loop_update_interest(ls, conn);
    return;
  }
  loop_close(ls, conn);
}

void AdrServer::loop_close(LoopState& ls, Conn& conn) {
  ls.poller.del(conn.fd);
  ::close(conn.fd);
  for (const std::uint64_t t : conn.tickets) ls.ticket_conn.erase(t);
  if (conn.counted) {
    --ls.serving_count;
    active_conns_.fetch_add(-1);
    server_metrics().active_connections.add(-1);
    ADR_DEBUG("server: connection fd=" << conn.fd << " done, live=" << ls.serving_count);
  }
  ls.conns.erase(conn.id);  // destroys conn — nothing after this line
}

// ------------------------------------------------------- completions

void AdrServer::loop_drain_completions(LoopState& ls) {
  std::vector<std::uint64_t> done;
  {
    std::lock_guard lock(completion_mutex_);
    done.swap(completed_tickets_);
  }
  for (const std::uint64_t ticket : done) {
    auto outcome = scheduler_.try_take(ticket);
    if (!outcome.has_value()) continue;
    const auto route = ls.ticket_conn.find(ticket);
    if (route == ls.ticket_conn.end()) continue;  // peer died; outcome dropped
    const std::uint64_t conn_id = route->second;
    auto it = ls.conns.find(conn_id);
    ls.ticket_conn.erase(route);
    if (it == ls.conns.end()) continue;
    Conn& conn = *it->second;
    const auto pos = std::find(conn.tickets.begin(), conn.tickets.end(), ticket);
    if (pos != conn.tickets.end()) conn.tickets.erase(pos);
    WireResult result;
    if (outcome->ok()) {
      result = to_wire_result(outcome->result);
    } else {
      result.status = std::move(outcome->status);
      ADR_WARN("server: query failed: " << result.status.to_string());
    }
    loop_reply(ls, conn, result, ticket, /*close_after=*/false);
    // loop_reply may have closed the connection (reply drop / flush
    // error); only then touch it again.
    auto again = ls.conns.find(conn_id);
    if (again == ls.conns.end()) continue;
    Conn& still = *again->second;
    if (still.closing && still.tickets.empty() && still.writer.idle()) {
      loop_maybe_finish_close(ls, still);
    } else if (!still.closing) {
      // Capacity freed: frames the reader buffered while this query ran
      // can dispatch now.
      loop_process_frames(ls, still);
    }
  }
}

}  // namespace adr::net
