#include "net/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/poller.hpp"

#ifdef ADR_HAVE_EPOLL
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace adr::net {
namespace {

using Clock = std::chrono::steady_clock;

// Cumulative process-wide series (metric catalog: docs/observability.md).
struct RouterMetrics {
  obs::Counter& queries;
  obs::Counter& forwarded;
  obs::Counter& failovers;
  obs::Counter& retries;
  obs::Counter& exhausted;
  obs::Counter& stats_requests;
  obs::Counter& probes;
  obs::Counter& probe_failures;
  obs::Counter& connections_refused;
  obs::Gauge& active_connections;
  obs::Gauge& backends_down;
};

RouterMetrics& router_metrics() {
  static RouterMetrics m{obs::metrics().counter("router.queries"),
                         obs::metrics().counter("router.forwarded"),
                         obs::metrics().counter("router.failovers"),
                         obs::metrics().counter("router.retries"),
                         obs::metrics().counter("router.exhausted"),
                         obs::metrics().counter("router.stats_requests"),
                         obs::metrics().counter("router.probes"),
                         obs::metrics().counter("router.probe_failures"),
                         obs::metrics().counter("router.connections_refused"),
                         obs::metrics().gauge("router.active_connections"),
                         obs::metrics().gauge("router.backends_down")};
  return m;
}

// Poller tags: connection ids start above the two fixed slots.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// Completed query frames one connection may have queued or in flight
/// before the loop stops reading its socket.
constexpr std::size_t kMaxPipelinedPerConn = 8;
/// Unflushed outbound bytes beyond which a connection's reads pause.
constexpr std::size_t kMaxQueuedWriteBytes = 16u << 20;
/// Flush + linger budget for a closing connection.
constexpr auto kCloseDrainBudget = std::chrono::milliseconds(200);
/// Per-connection budget for the stop() drain (in-flight replies).
constexpr auto kStopFlushBudget = std::chrono::milliseconds(1000);

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool deadline_heap_greater(const std::pair<Clock::time_point, std::uint64_t>& a,
                           const std::pair<Clock::time_point, std::uint64_t>& b) {
  return a.first > b.first;
}

/// Blocking loopback connect with CLOEXEC and a receive timeout.
int connect_backend(std::uint16_t port, std::chrono::milliseconds recv_timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  if (recv_timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  set_tcp_nodelay(fd);
  return fd;
}

std::uint64_t splitmix_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  return mix64(state);
}

std::vector<std::byte> unavailable_frame(const std::string& message) {
  WireResult r;
  r.status = Status::make(StatusCode::kUnavailable, message);
  return encode_result(r);
}

}  // namespace

std::uint64_t dataset_signature(const Query& query) {
  std::uint64_t s = mix64(0x51a7ed5ull + query.input_dataset);
  for (const std::uint32_t extra : query.extra_input_datasets) {
    s = mix64(s ^ mix64(extra + 1));
  }
  return mix64(s ^ mix64(query.output_dataset + 0x7fffull));
}

// Per-backend routing state.  `mutex` guards `health`; the metric
// references are internally thread-safe.
struct AdrRouter::Backend {
  std::uint16_t port;
  mutable std::mutex mutex;
  BackendHealth health;
  obs::Counter& queries;
  obs::Gauge& up_gauge;

  Backend(std::uint16_t p, const RouterConfig& config)
      : port(p),
        health(config.mark_down_after, config.half_open_after),
        queries(obs::metrics().counter("router.backend." + std::to_string(p) +
                                       ".queries")),
        up_gauge(obs::metrics().gauge("router.backend." + std::to_string(p) +
                                      ".up")) {
    up_gauge.set(1);
  }
};

// Per-connection state, owned exclusively by the event-loop thread.
struct AdrRouter::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  FrameReader reader;
  FrameWriter writer;
  /// Completed query frames not yet handed to a forwarder.
  std::deque<std::vector<std::byte>> pending;
  /// Query frames at a forwarder right now.  Capped at 1: AdrClient is
  /// synchronous per connection, and a single slot preserves reply
  /// order without reordering machinery (pipelined frames queue in
  /// `pending`).
  std::size_t in_flight = 0;
  bool refused = false;  // busy-refusal connection: never counted
  bool counted = false;
  bool closing = false;
  bool lingering = false;
  bool reading = true;
  bool writing = false;
  Clock::time_point deadline{};  // epoch() = none
};

struct AdrRouter::LoopState {
  Poller poller;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  /// Min-heap of (deadline, conn id), validated lazily against
  /// Conn::deadline (re-arming never needs heap surgery).
  std::vector<std::pair<Clock::time_point, std::uint64_t>> deadlines;
  std::uint64_t next_conn_id = kFirstConnId;
  std::size_t serving_count = 0;
  bool wake_registered = true;
  bool stopping = false;
};

AdrRouter::AdrRouter(RouterConfig config, std::uint16_t port)
    : config_(std::move(config)), ring_(config_.vnodes_per_backend) {
  if (config_.backend_ports.empty()) {
    throw std::invalid_argument("AdrRouter: no backends configured");
  }
  if (config_.max_connections < 1) {
    throw std::invalid_argument("AdrRouter: max_connections must be >= 1");
  }
  if (config_.forwarders < 1) {
    throw std::invalid_argument("AdrRouter: forwarders must be >= 1");
  }
  for (const std::uint16_t p : config_.backend_ports) {
    if (ring_.contains(p)) {
      throw std::invalid_argument("AdrRouter: duplicate backend port");
    }
    ring_.add_node(p);
    backends_.push_back(std::make_unique<Backend>(p, config_));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("AdrRouter: socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrRouter: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrRouter: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 1024) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdrRouter: listen() failed");
  }
  set_nonblocking(listen_fd_);
}

AdrRouter::~AdrRouter() { stop(); }

void AdrRouter::start() {
  if (running_.exchange(true)) return;
#ifdef ADR_HAVE_EPOLL
  wake_rd_ = wake_wr_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_rd_ < 0) throw std::runtime_error("AdrRouter: eventfd() failed");
#else
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("AdrRouter: pipe() failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
#endif
  for (int i = 0; i < config_.forwarders; ++i) {
    forwarders_.emplace_back([this, i]() { forwarder_loop(i); });
  }
  if (config_.probe_interval.count() > 0) {
    prober_ = std::thread([this]() { prober_loop(); });
  }
  loop_thread_ = std::thread([this]() { event_loop(); });
}

void AdrRouter::stop() {
  if (!running_.exchange(false)) return;
  wake();
  job_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  job_cv_.notify_all();
  for (std::thread& t : forwarders_) {
    if (t.joinable()) t.join();
  }
  forwarders_.clear();
  if (prober_.joinable()) prober_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    if (wake_wr_ != wake_rd_ && wake_wr_ >= 0) ::close(wake_wr_);
    wake_rd_ = wake_wr_ = -1;
  }
  jobs_.clear();
  completions_.clear();
}

void AdrRouter::wake() {
  if (wake_wr_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_wr_, &one, sizeof(one));
}

AdrRouter::Backend* AdrRouter::backend_of(std::uint16_t backend_port) const {
  for (const auto& b : backends_) {
    if (b->port == backend_port) return b.get();
  }
  return nullptr;
}

BackendHealth::State AdrRouter::backend_state(std::uint16_t backend_port) const {
  const Backend* b = backend_of(backend_port);
  if (b == nullptr) return BackendHealth::State::kDown;
  std::lock_guard lock(b->mutex);
  return b->health.state(Clock::now());
}

std::vector<std::uint16_t> AdrRouter::candidates_for(
    std::uint64_t signature) const {
  std::vector<std::uint16_t> out;
  for (const std::uint64_t node : ring_.replicas(signature, backends_.size())) {
    out.push_back(static_cast<std::uint16_t>(node));
  }
  return out;
}

void AdrRouter::note_result(Backend& backend, bool success) {
  std::lock_guard lock(backend.mutex);
  const bool was_down = backend.health.marked_down();
  if (success) {
    backend.health.record_success(Clock::now());
  } else {
    backend.health.record_failure(Clock::now());
  }
  const bool is_down = backend.health.marked_down();
  if (was_down != is_down) {
    router_metrics().backends_down.add(is_down ? 1 : -1);
    backend.up_gauge.set(is_down ? 0 : 1);
    if (is_down) {
      ADR_WARN("router: backend " << backend.port << " marked down");
    } else {
      ADR_INFO("router: backend " << backend.port << " recovered");
    }
  }
}

// ------------------------------------------------------- event loop

void AdrRouter::event_loop() {
  LoopState ls;
  if (!ls.poller.add(listen_fd_, kListenTag, /*rd=*/true, /*wr=*/false)) {
    ADR_WARN("router: could not register listen socket; serving nothing");
  }
  ls.wake_registered =
      ls.poller.add(wake_rd_, kWakeTag, /*rd=*/true, /*wr=*/false);

  std::vector<Poller::Ready> events;
  for (;;) {
    if (!ls.stopping && !running_.load()) {
      // Stop drain: refuse new connects, give every connection a
      // bounded window to flush in-flight replies.
      ls.stopping = true;
      ls.poller.del(listen_fd_);
      const auto cutoff = Clock::now() + kStopFlushBudget;
      std::vector<std::uint64_t> ids;
      ids.reserve(ls.conns.size());
      for (const auto& [id, conn] : ls.conns) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        auto it = ls.conns.find(id);
        if (it == ls.conns.end()) continue;
        Conn& conn = *it->second;
        conn.closing = true;
        if (conn.deadline == Clock::time_point{}) {
          conn.deadline = cutoff;
          ls.deadlines.emplace_back(conn.deadline, conn.id);
          std::push_heap(ls.deadlines.begin(), ls.deadlines.end(),
                         deadline_heap_greater);
        }
        if (conn.in_flight == 0 && conn.pending.empty()) loop_flush(ls, conn);
      }
    }
    if (ls.stopping && ls.conns.empty()) break;

    int timeout = ls.wake_registered ? 60'000 : 10;
    if (!ls.deadlines.empty()) {
      const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
          ls.deadlines.front().first - Clock::now());
      timeout = static_cast<int>(
          std::clamp<long long>(delta.count() + 1, 0, timeout));
    }
    ls.poller.wait(events, timeout);

    for (const Poller::Ready& ev : events) {
      if (ev.tag == kWakeTag) {
        std::uint64_t buf;
        while (::read(wake_rd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.tag == kListenTag) {
        loop_accept(ls);
        continue;
      }
      if (ev.readable) {
        auto it = ls.conns.find(ev.tag);
        if (it != ls.conns.end()) loop_readable(ls, *it->second);
      }
      if (ev.writable) {
        auto it = ls.conns.find(ev.tag);
        if (it != ls.conns.end()) loop_flush(ls, *it->second);
      }
    }

    loop_drain_completions(ls);

    // Expire closing connections whose drain window ran out.
    const auto now = Clock::now();
    while (!ls.deadlines.empty() && ls.deadlines.front().first <= now) {
      std::pop_heap(ls.deadlines.begin(), ls.deadlines.end(),
                    deadline_heap_greater);
      const auto [when, id] = ls.deadlines.back();
      ls.deadlines.pop_back();
      auto it = ls.conns.find(id);
      if (it == ls.conns.end()) continue;
      Conn& conn = *it->second;
      if (conn.deadline != when) continue;  // re-armed since
      loop_close(ls, conn);
    }
  }
}

void AdrRouter::loop_accept(LoopState& ls) {
  for (;;) {
    if (ls.stopping) return;
#ifdef ADR_HAVE_EPOLL
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
#endif
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN or a transient error: try again on readiness
    }
#ifndef ADR_HAVE_EPOLL
    set_nonblocking(fd);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif
    set_tcp_nodelay(fd);
    if (ls.serving_count >= static_cast<std::size_t>(config_.max_connections)) {
      loop_refuse(ls, fd);
      continue;
    }
    loop_register(ls, fd);
  }
}

void AdrRouter::loop_register(LoopState& ls, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->id = ls.next_conn_id++;
  conn->fd = fd;
  conn->counted = true;
  Conn* raw = conn.get();
  if (!ls.poller.add(fd, raw->id, /*rd=*/true, /*wr=*/false)) {
    ::close(fd);
    return;
  }
  ls.conns.emplace(raw->id, std::move(conn));
  ++ls.serving_count;
  router_metrics().active_connections.add(1);
}

void AdrRouter::loop_refuse(LoopState& ls, int fd) {
  router_metrics().connections_refused.add();
  auto conn = std::make_unique<Conn>();
  conn->id = ls.next_conn_id++;
  conn->fd = fd;
  conn->refused = true;
  conn->closing = true;
  conn->reading = false;
  WireResult busy;
  busy.status = Status::make(StatusCode::kBusy, kServerBusyError);
  busy.retry_after_ms = 100;
  conn->writer.enqueue(encode_result(busy));
  Conn* raw = conn.get();
  if (!ls.poller.add(fd, raw->id, /*rd=*/false, /*wr=*/true)) {
    ::close(fd);
    return;
  }
  raw->writing = true;
  raw->deadline = Clock::now() + kCloseDrainBudget;
  ls.conns.emplace(raw->id, std::move(conn));
  ls.deadlines.emplace_back(raw->deadline, raw->id);
  std::push_heap(ls.deadlines.begin(), ls.deadlines.end(), deadline_heap_greater);
  loop_flush(ls, *raw);
}

void AdrRouter::loop_readable(LoopState& ls, Conn& conn) {
  if (conn.lingering) {
    // Discard inbound bytes so the kernel cannot RST the final frame.
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(conn.fd, buf, sizeof(buf), 0)) > 0) {
    }
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      loop_close(ls, conn);
    }
    return;
  }
  if (!conn.reading) return;
  const FrameReader::IoStatus status = conn.reader.pump(conn.fd);
  std::vector<std::byte> frame;
  while (conn.reader.next(frame)) {
    if (is_stats_request(frame)) {
      // Answered in-loop: the router's own metrics snapshot, which is
      // where router.* health and failover series live.
      router_metrics().stats_requests.add();
      WireStatsReply reply;
      reply.metrics_json = obs::metrics().snapshot().to_json();
      conn.writer.enqueue(encode_stats_reply(reply));
      continue;
    }
    conn.pending.push_back(std::move(frame));
  }
  loop_dispatch(ls, conn);
  loop_flush(ls, conn);
  if (ls.conns.find(conn.id) == ls.conns.end()) return;  // flush closed it
  if (status == FrameReader::IoStatus::kClosed ||
      status == FrameReader::IoStatus::kError) {
    // Peer finished (or died): serve what is already in flight, then
    // close.  No new frames can arrive.
    if (conn.in_flight == 0 && conn.pending.empty() && conn.writer.idle()) {
      loop_close(ls, conn);
    } else {
      conn.closing = true;
      conn.reading = false;
      update_interest(ls, conn);
    }
    return;
  }
  update_interest(ls, conn);
}

void AdrRouter::loop_dispatch(LoopState& ls, Conn& conn) {
  (void)ls;
  while (conn.in_flight < 1 && !conn.pending.empty()) {
    Job job;
    job.conn_id = conn.id;
    job.frame = std::move(conn.pending.front());
    conn.pending.pop_front();
    ++conn.in_flight;
    {
      std::lock_guard lock(job_mutex_);
      jobs_.push_back(std::move(job));
    }
    job_cv_.notify_one();
  }
}

void AdrRouter::update_interest(LoopState& ls, Conn& conn) {
  const bool want_read =
      conn.lingering ||
      (!conn.closing && conn.reader.frames_ready() == 0 &&
       conn.pending.size() + conn.in_flight < kMaxPipelinedPerConn &&
       conn.writer.queued_bytes() < kMaxQueuedWriteBytes);
  const bool want_write = !conn.writer.idle();
  if (want_read == conn.reading && want_write == conn.writing) return;
  conn.reading = want_read;
  conn.writing = want_write;
  ls.poller.mod(conn.fd, conn.id, want_read, want_write);
}

void AdrRouter::loop_flush(LoopState& ls, Conn& conn) {
  const FrameWriter::IoStatus status = conn.writer.flush(conn.fd);
  if (status == FrameWriter::IoStatus::kError) {
    loop_close(ls, conn);
    return;
  }
  if (conn.closing && conn.writer.idle() && conn.in_flight == 0 &&
      conn.pending.empty()) {
    if (!conn.lingering) {
      // Flushed everything: half-close and linger briefly so the peer
      // can read the final frame before the fd goes away.
      conn.lingering = true;
      ::shutdown(conn.fd, SHUT_WR);
      if (conn.deadline == Clock::time_point{} ||
          conn.deadline > Clock::now() + kCloseDrainBudget) {
        conn.deadline = Clock::now() + kCloseDrainBudget;
        ls.deadlines.emplace_back(conn.deadline, conn.id);
        std::push_heap(ls.deadlines.begin(), ls.deadlines.end(),
                       deadline_heap_greater);
      }
      conn.reading = true;
      conn.writing = false;
      ls.poller.mod(conn.fd, conn.id, /*rd=*/true, /*wr=*/false);
    }
    return;
  }
  update_interest(ls, conn);
}

void AdrRouter::loop_close(LoopState& ls, Conn& conn) {
  ls.poller.del(conn.fd);
  ::close(conn.fd);
  if (conn.counted) {
    --ls.serving_count;
    router_metrics().active_connections.add(-1);
  }
  ls.conns.erase(conn.id);
}

void AdrRouter::loop_drain_completions(LoopState& ls) {
  std::deque<Completion> done;
  {
    std::lock_guard lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    auto it = ls.conns.find(c.conn_id);
    if (it == ls.conns.end()) continue;  // peer died before its result
    Conn& conn = *it->second;
    if (conn.in_flight > 0) --conn.in_flight;
    conn.writer.enqueue(c.frame);
    loop_dispatch(ls, conn);
    loop_flush(ls, conn);
  }
}

// ------------------------------------------------------- forwarders

void AdrRouter::forwarder_loop(int index) {
  // Per-forwarder jitter stream: deterministic under a fixed policy
  // seed, distinct across forwarders.
  std::uint64_t jitter_state =
      config_.retry.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(index) + 1;
  BackendSockets socks;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(job_mutex_);
      job_cv_.wait(lock, [this]() { return !running_.load() || !jobs_.empty(); });
      if (!running_.load()) break;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const std::uint64_t conn_id = job.conn_id;
    Completion completion;
    completion.conn_id = conn_id;
    completion.frame = route(job, socks, jitter_state);
    {
      std::lock_guard lock(completion_mutex_);
      completions_.push_back(std::move(completion));
    }
    wake();
  }
  for (const auto& [port, fd] : socks) ::close(fd);
}

std::vector<std::byte> AdrRouter::route(const Job& job, BackendSockets& socks,
                                        std::uint64_t& jitter_state) {
  router_metrics().queries.add();
  std::uint64_t signature = 0;
  try {
    signature = dataset_signature(decode_query(job.frame));
  } catch (const std::exception& e) {
    WireResult r;
    r.status = Status::make(StatusCode::kInvalidArgument,
                            std::string("router: bad query frame: ") + e.what());
    return encode_result(r);
  }

  // Ordered failover candidates: the replica set (first `replication`
  // ring nodes, rotated per query so a hot dataset fans out), then the
  // rest of the ring in order.
  const std::vector<std::uint16_t> ring_order = candidates_for(signature);
  const std::size_t n = ring_order.size();
  const std::size_t width = static_cast<std::size_t>(
      std::clamp<int>(config_.replication, 1, static_cast<int>(n)));
  const std::size_t offset = rotation_.fetch_add(1) % width;
  std::vector<std::uint16_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < width; ++i) {
    order.push_back(ring_order[(offset + i) % width]);
  }
  for (std::size_t i = width; i < n; ++i) order.push_back(ring_order[i]);

  const int max_attempts = std::max(1, config_.retry.max_attempts);
  std::vector<std::byte> last_reply;
  std::size_t position = 0;  // next candidate to try
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // Prefer the next candidate routing admits (skipping marked-down
    // backends); when *every* backend is inadmissible, force the
    // positional one — total mark-down must degrade to trying, not to
    // refusing without a connect.
    Backend* target = nullptr;
    const auto now = Clock::now();
    for (std::size_t probe = 0; probe < n; ++probe) {
      Backend* b = backend_of(order[(position + probe) % n]);
      if (b == nullptr) continue;
      std::lock_guard lock(b->mutex);
      if (b->health.admit(now)) {
        target = b;
        position = (position + probe) % n;
        break;
      }
    }
    if (target == nullptr) target = backend_of(order[position % n]);
    if (target == nullptr) break;  // unreachable: ports come from backends_

    router_metrics().forwarded.add();
    target->queries.add();
    std::vector<std::byte> reply;
    const RelayStatus status = relay(*target, socks, job.frame, reply);

    if (status == RelayStatus::kOk) {
      note_result(*target, true);
      // Inspect the typed status for failover-able failures; the frame
      // itself is returned verbatim on success.
      WireResult decoded;
      try {
        decoded = decode_result(reply);
      } catch (const std::exception&) {
        return reply;  // undecodable: pass through, client will complain
      }
      if (decoded.ok()) return reply;
      last_reply = std::move(reply);
      if (attempt >= max_attempts ||
          !is_retryable(decoded.status.code, config_.retry.idempotent)) {
        return last_reply;
      }
      // Busy or transient: back off (honoring the backend's hint) and
      // fail over to the next candidate.
      router_metrics().retries.add();
      double ms = static_cast<double>(config_.retry.initial_backoff.count());
      for (int i = 1; i < attempt; ++i) ms *= config_.retry.backoff_multiplier;
      ms = std::min(ms, static_cast<double>(config_.retry.max_backoff.count()));
      if (config_.retry.jitter > 0.0) {
        const double u =
            static_cast<double>(splitmix_next(jitter_state) >> 11) * 0x1.0p-53;
        ms *= 1.0 - config_.retry.jitter + 2.0 * config_.retry.jitter * u;
      }
      if (config_.retry.honor_retry_after && decoded.retry_after_ms > 0) {
        ms = std::max(ms, static_cast<double>(decoded.retry_after_ms));
      }
      if (ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<std::int64_t>(ms)));
      }
    } else {
      note_result(*target, false);
      if (status == RelayStatus::kLostAfterSend && !config_.retry.idempotent) {
        // The backend may have executed the query; re-sending could
        // apply it twice.  Mirror AdrClient: surface the loss.
        return unavailable_frame("connection lost before result");
      }
    }
    if (position + 1 < n || n > 1) {
      router_metrics().failovers.add();
      position = (position + 1) % n;
    }
  }
  router_metrics().exhausted.add();
  if (!last_reply.empty()) return last_reply;
  return unavailable_frame("all backends unavailable");
}

AdrRouter::RelayStatus AdrRouter::relay(Backend& backend, BackendSockets& socks,
                                        const std::vector<std::byte>& frame,
                                        std::vector<std::byte>& reply) {
  auto it = socks.find(backend.port);
  bool fresh = false;
  if (it == socks.end() || it->second < 0) {
    const int fd = connect_backend(backend.port, config_.backend_recv_timeout);
    if (fd < 0) return RelayStatus::kConnectFailed;
    it = socks.insert_or_assign(backend.port, fd).first;
    fresh = true;
  }
  if (!write_frame(it->second, frame)) {
    ::close(it->second);
    socks.erase(it);
    if (fresh) return RelayStatus::kLostAfterSend;
    // A cached connection may have gone stale (backend restarted since
    // the last query); one reconnect distinguishes that from a down
    // backend.  No bytes reached the *new* connection yet.
    const int fd = connect_backend(backend.port, config_.backend_recv_timeout);
    if (fd < 0) return RelayStatus::kConnectFailed;
    it = socks.insert_or_assign(backend.port, fd).first;
    if (!write_frame(it->second, frame)) {
      ::close(it->second);
      socks.erase(it);
      return RelayStatus::kLostAfterSend;
    }
  }
  if (!read_frame(it->second, reply)) {
    ::close(it->second);
    socks.erase(it);
    return RelayStatus::kLostAfterSend;
  }
  // A busy backend closes its side after the refusal frame; drop the
  // cached connection so the next relay reconnects cleanly.
  try {
    if (is_result_frame(reply) && decode_result(reply).server_busy()) {
      ::close(it->second);
      socks.erase(it);
    }
  } catch (const std::exception&) {
  }
  return RelayStatus::kOk;
}

// ------------------------------------------------------- health probes

bool AdrRouter::probe(Backend& backend) {
  const int fd = connect_backend(
      backend.port, std::min(config_.backend_recv_timeout,
                             std::chrono::milliseconds(2000)));
  if (fd < 0) return false;
  WireStatsRequest req;  // plain snapshot: cheapest liveness round trip
  bool ok = write_frame(fd, encode_stats_request(req));
  std::vector<std::byte> payload;
  if (ok) ok = read_frame(fd, payload);
  if (ok) {
    try {
      if (is_result_frame(payload)) {
        // A backend at its connection cap refuses with a busy result:
        // alive, just saturated — that is a healthy answer.
        ok = true;
      } else {
        (void)decode_stats_reply(payload);
      }
    } catch (const std::exception&) {
      ok = false;
    }
  }
  ::close(fd);
  return ok;
}

void AdrRouter::prober_loop() {
  while (running_.load()) {
    for (const auto& b : backends_) {
      if (!running_.load()) return;
      bool relevant;
      {
        std::lock_guard lock(b->mutex);
        const auto s = b->health.state(Clock::now());
        // Up backends get liveness checks; down ones get recovery
        // trials once half-open.  In kDown the probe would be refused
        // by admit() semantics anyway — skip the socket work.
        relevant = s != BackendHealth::State::kDown;
      }
      if (!relevant) continue;
      router_metrics().probes.add();
      const bool ok = probe(*b);
      if (!ok) router_metrics().probe_failures.add();
      note_result(*b, ok);
    }
    // Sleep in slices so stop() is prompt.
    auto left = config_.probe_interval;
    while (left.count() > 0 && running_.load()) {
      const auto slice = std::min(left, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      left -= slice;
    }
  }
}

}  // namespace adr::net
