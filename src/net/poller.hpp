// Readiness-notification façade shared by the event-driven front ends.
//
// epoll on Linux, poll(2) elsewhere; level-triggered in both variants.
// Each registered fd carries a caller tag returned with its events, so
// the owning loop dispatches on stable 64-bit ids instead of raw fds.
// Grown inside AdrServer (PR 6) and extracted once AdrRouter needed the
// identical loop skeleton over backend-facing connections.
//
// Not thread-safe: a Poller belongs to exactly one event-loop thread.
#pragma once

#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#define ADR_HAVE_EPOLL 1
#endif

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"

namespace adr::net {

class Poller {
 public:
  struct Ready {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
  };

  Poller() {
#ifdef ADR_HAVE_EPOLL
    ep_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep_ < 0) throw std::runtime_error("Poller: epoll_create1() failed");
#endif
  }

  ~Poller() {
#ifdef ADR_HAVE_EPOLL
    if (ep_ >= 0) ::close(ep_);
#endif
  }

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Returns false if the fd could not be registered (ENOMEM/ENOSPC);
  /// the caller must not expect events for it.
  [[nodiscard]] bool add(int fd, std::uint64_t tag, bool rd, bool wr) {
#ifdef ADR_HAVE_EPOLL
    epoll_event ev{};
    ev.events = events_of(rd, wr);
    ev.data.u64 = tag;
    if (::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ADR_WARN("poller: EPOLL_CTL_ADD failed for fd=" << fd << ": "
                                                      << std::strerror(errno));
      return false;
    }
#else
    entries_[fd] = Entry{tag, rd, wr};
#endif
    return true;
  }

  void mod(int fd, std::uint64_t tag, bool rd, bool wr) {
#ifdef ADR_HAVE_EPOLL
    epoll_event ev{};
    ev.events = events_of(rd, wr);
    ev.data.u64 = tag;
    if (::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      ADR_WARN("poller: EPOLL_CTL_MOD failed for fd=" << fd << ": "
                                                      << std::strerror(errno));
    }
#else
    entries_[fd] = Entry{tag, rd, wr};
#endif
  }

  void del(int fd) {
#ifdef ADR_HAVE_EPOLL
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
#else
    entries_.erase(fd);
#endif
  }

  /// Blocks up to timeout_ms (-1 = indefinitely) and fills `out`.
  void wait(std::vector<Ready>& out, int timeout_ms) {
    out.clear();
#ifdef ADR_HAVE_EPOLL
    epoll_event events[256];
    const int n = ::epoll_wait(ep_, events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Ready r;
      r.tag = events[i].data.u64;
      // Errors and hangups surface as readability: the owner's read
      // path observes the close/error and tears the connection down.
      r.readable = (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      r.writable = (events[i].events & (EPOLLOUT | EPOLLERR)) != 0;
      out.push_back(r);
    }
#else
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> tags;
    fds.reserve(entries_.size());
    for (const auto& [fd, e] : entries_) {
      pollfd p{};
      p.fd = fd;
      if (e.rd) p.events |= POLLIN;
      if (e.wr) p.events |= POLLOUT;
      fds.push_back(p);
      tags.push_back(e.tag);
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Ready r;
      r.tag = tags[i];
      r.readable = (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0;
      r.writable = (fds[i].revents & (POLLOUT | POLLERR)) != 0;
      out.push_back(r);
    }
#endif
  }

 private:
#ifdef ADR_HAVE_EPOLL
  static std::uint32_t events_of(bool rd, bool wr) {
    std::uint32_t e = 0;
    if (rd) e |= EPOLLIN;
    if (wr) e |= EPOLLOUT;
    return e;
  }
  int ep_ = -1;
#else
  struct Entry {
    std::uint64_t tag = 0;
    bool rd = false;
    bool wr = false;
  };
  std::unordered_map<int, Entry> entries_;
#endif
};

}  // namespace adr::net
