// ADR socket client (the paper's "sequential client").
//
// Connects to an AdrServer and submits range queries synchronously:
// each submit() sends one query frame and blocks for the result frame.
#pragma once

#include <cstdint>
#include <string>

#include "core/query.hpp"
#include "net/wire.hpp"

namespace adr::net {

class AdrClient {
 public:
  /// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
  explicit AdrClient(std::uint16_t port);
  ~AdrClient();

  AdrClient(const AdrClient&) = delete;
  AdrClient& operator=(const AdrClient&) = delete;

  /// Sends the query (with its execution options, wire v4) and waits
  /// for the result.  Throws WireError / std::runtime_error on protocol
  /// or transport failure; a server-side query failure comes back as a
  /// WireResult whose status carries the typed code and message.  A
  /// saturated server answers with status code kBusy (check
  /// server_busy()) and closes the connection — connected() turns
  /// false; reconnect and retry after result.retry_after_ms.
  WireResult submit(const Query& query, const ExecOptions& options = {});

  /// Asks the live server for its observability snapshot (wire v3):
  /// metrics_json is the obs registry rendered as JSON; trace_json is
  /// the Chrome trace_event export when `include_trace` is set and the
  /// server has tracing enabled (empty otherwise).  The connection
  /// stays open — queries and stats requests interleave freely.
  WireStatsReply stats(bool include_trace = false);

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace adr::net
