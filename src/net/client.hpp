// ADR socket client (the paper's "sequential client").
//
// Connects to an AdrServer and submits range queries synchronously:
// each submit() sends one query frame and blocks for the result frame.
//
// Admission control lives on both ends of the socket.  The server
// refuses work it cannot take (busy frames carrying a retry-after
// hint); the client, when constructed with a RetryPolicy, answers those
// refusals — and transport losses on idempotent queries — with bounded
// automatic retries under exponential backoff plus seeded jitter,
// honoring the server's hint.  A bounded in-client pending queue
// (submit_async / try_submit_async) pushes the same discipline up to
// the application: callers feel backpressure at the client instead of
// flooding the socket.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/query.hpp"
#include "net/wire.hpp"

namespace adr::net {

/// Client-side retry and admission-control policy.
///
/// The default (max_attempts == 1) disables retries entirely and
/// preserves the legacy single-shot semantics: transport failures throw
/// and busy frames are returned to the caller as-is.
struct RetryPolicy {
  /// Total submit attempts per query (first try included).  1 = no
  /// retries (legacy behavior).
  int max_attempts = 1;
  /// Backoff before the first retry; doubles (backoff_multiplier) per
  /// subsequent retry up to max_backoff.
  std::chrono::milliseconds initial_backoff{10};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{2000};
  /// Uniform jitter fraction applied to each backoff: the sleep is
  /// drawn from [backoff*(1-jitter), backoff*(1+jitter)] with a seeded
  /// RNG, so a fleet of clients refused together does not retry in
  /// lockstep — and a fixed seed replays the same schedule.
  double jitter = 0.2;
  /// Sleep at least the server's retry_after_ms hint on busy refusals.
  bool honor_retry_after = true;
  /// Whether this client's queries may be safely re-executed after a
  /// transport loss (result possibly computed but never delivered).
  /// Range aggregations rebuilt from scratch are; queries folding into
  /// existing output products are not.  Gates retry on kIoError /
  /// kUnavailable — kBusy is always retryable (the server refused
  /// before doing work).  Failures at connect() time are likewise
  /// always retryable: no bytes ever reached a server, so the query
  /// provably never executed, idempotent or not.
  bool idempotent = true;
  /// Seed for the jitter RNG (deterministic backoff schedules in tests).
  std::uint64_t seed = 0;
  /// Capacity of the in-client pending queue used by submit_async();
  /// submissions beyond it block (or fail, for try_submit_async) until
  /// the sender drains.
  std::size_t max_pending = 32;
};

class AdrClient {
 public:
  /// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
  explicit AdrClient(std::uint16_t port);

  /// Connects with a retry policy.  When the policy allows retries
  /// (max_attempts > 1) an initial connect failure does not throw — the
  /// first submit() attempts the connection under the retry loop, so a
  /// client may be constructed before its server finishes binding.
  AdrClient(std::uint16_t port, RetryPolicy policy);

  ~AdrClient();

  AdrClient(const AdrClient&) = delete;
  AdrClient& operator=(const AdrClient&) = delete;

  /// Sends the query (with its execution options, wire v4) and waits
  /// for the result.  With the default single-shot policy: throws
  /// WireError / std::runtime_error on protocol or transport failure; a
  /// server-side query failure comes back as a WireResult whose status
  /// carries the typed code and message; a saturated server answers
  /// with kBusy (check server_busy()) and closes the connection —
  /// connected() turns false; reconnect and retry after
  /// result.retry_after_ms.
  ///
  /// With a retrying policy: busy refusals and (for idempotent
  /// policies) transport losses are retried automatically with
  /// exponential backoff, reconnecting as needed; the returned result
  /// records how many attempts ran (result.attempts).  When every
  /// attempt fails the result carries the last failure's status
  /// (kUnavailable for transport loss) instead of throwing, and the
  /// `client.gave_up` counter ticks.
  WireResult submit(const Query& query, const ExecOptions& options = {});

  /// Qos-taking overload: `qos` (deadline, priority, drop-on-expiry)
  /// rides in the query's exec options across the wire (v6 frames carry
  /// it as deadline-remaining ms) and additionally caps the retry loop —
  /// no retry is attempted that could not complete before the deadline,
  /// and kDeadlineExceeded answers are never retried.
  WireResult submit(const Query& query, const Qos& qos,
                    const ExecOptions& options = {});

  /// Enqueues a query on the bounded in-client pending queue and
  /// returns a future for its result; a background sender thread drains
  /// the queue through the same retry loop as submit().  Blocks while
  /// the queue holds max_pending entries (client-side admission
  /// control: backpressure reaches the caller before the socket).
  std::future<WireResult> submit_async(const Query& query,
                                       const ExecOptions& options = {});

  /// Qos-taking overload of submit_async (see submit(query, qos, ...)).
  /// The deadline keeps counting down while the query waits in the
  /// client's pending queue — a backlogged client sheds at send time.
  std::future<WireResult> submit_async(const Query& query, const Qos& qos,
                                       const ExecOptions& options = {});

  /// Non-blocking submit_async: returns nullopt instead of blocking
  /// when the pending queue is full.
  std::optional<std::future<WireResult>> try_submit_async(
      const Query& query, const ExecOptions& options = {});

  /// Qos-taking overload of try_submit_async.
  std::optional<std::future<WireResult>> try_submit_async(
      const Query& query, const Qos& qos, const ExecOptions& options = {});

  /// Queries currently waiting in the pending queue (not yet handed to
  /// the socket).
  std::size_t pending() const;

  /// Asks the live server for its observability snapshot (wire v3):
  /// metrics_json is the obs registry rendered as JSON; trace_json is
  /// the Chrome trace_event export when `include_trace` is set and the
  /// server has tracing enabled (empty otherwise); history_json is the
  /// telemetry sampler's time-series ring when `include_history` is set
  /// (wire v5; `history_samples` caps how many trailing samples come
  /// back, 0 = all).  The connection stays open — queries and stats
  /// requests interleave freely.
  WireStatsReply stats(bool include_trace = false, bool include_history = false,
                       std::uint32_t history_samples = 0);

  bool connected() const;

  const RetryPolicy& policy() const { return policy_; }

 private:
  struct Pending {
    Query query;
    ExecOptions options;
    std::promise<WireResult> promise;
  };

  /// One connect attempt; returns false (leaving fd_ == -1) on failure.
  bool connect_locked();
  /// The retry loop.  Caller holds io_mutex_.
  WireResult submit_locked(const Query& query, const ExecOptions& options);
  /// One send+receive attempt.  Returns nullopt on transport failure;
  /// `sent` reports whether any query bytes may have reached the server
  /// (false = the failure happened at connect time, so the query
  /// provably never executed and a retry is safe even for
  /// non-idempotent policies).
  std::optional<WireResult> attempt_locked(const Query& query,
                                           const ExecOptions& options,
                                           bool& sent);
  /// Backoff for retry number `retry` (1-based), stretched to the
  /// server's hint when one was given.
  std::chrono::milliseconds backoff_delay(int retry, std::uint32_t hint_ms);
  void sender_loop();
  void start_sender_locked();

  std::uint16_t port_;
  RetryPolicy policy_;
  std::uint64_t jitter_state_;

  /// Guards fd_ and all socket I/O: the synchronous API and the async
  /// sender thread share one connection.
  mutable std::mutex io_mutex_;
  int fd_ = -1;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool sender_started_ = false;
  std::thread sender_;
};

}  // namespace adr::net
