#include "net/socket_io.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/fault.hpp"

namespace adr::net {
namespace {

bool read_exact(int fd, std::byte* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::byte* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::vector<std::byte>& payload) {
  // Injected receive failure: indistinguishable from the peer resetting
  // the connection before the frame arrived.
  if (fault::faults().fires("net.read_frame")) return false;
  std::byte header[4];
  if (!read_exact(fd, header, 4)) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[i])) << (8 * i);
  }
  if (length > kMaxFrameBytes) return false;
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

bool write_frame(int fd, const std::vector<std::byte>& payload) {
  // Injected send failure before any bytes leave: a clean reset.
  if (fault::faults().fires("net.write_frame")) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::byte header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::byte>((length >> (8 * i)) & 0xff);
  }
  if (!write_exact(fd, header, 4)) return false;
  if (payload.empty()) return true;
  // Injected short write: the header and half the payload reach the
  // peer, then the connection "dies".  The receiver's read_exact on the
  // remainder blocks until our side closes, then fails — exercising the
  // torn-frame path without a real network.
  if (fault::faults().fires("net.short_write")) {
    write_exact(fd, payload.data(), payload.size() / 2);
    return false;
  }
  return write_exact(fd, payload.data(), payload.size());
}

}  // namespace adr::net
