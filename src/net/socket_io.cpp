#include "net/socket_io.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.hpp"

namespace adr::net {

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

bool read_exact(int fd, std::byte* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::byte* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Sends header + payload as ONE syscall (one TCP segment when they
/// fit).  Two back-to-back send()s would put a lone 4-byte segment on
/// the wire and leave the payload parked behind Nagle waiting for the
/// peer's delayed ACK — a ~40ms stall per frame on loopback.
bool write_two(int fd, const std::byte* head, std::size_t head_n,
               const std::byte* body, std::size_t body_n) {
  const std::size_t total = head_n + body_n;
  std::size_t sent = 0;
  while (sent < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (sent < head_n) {
      iov[iovcnt].iov_base = const_cast<std::byte*>(head + sent);
      iov[iovcnt].iov_len = head_n - sent;
      ++iovcnt;
      if (body_n > 0) {
        iov[iovcnt].iov_base = const_cast<std::byte*>(body);
        iov[iovcnt].iov_len = body_n;
        ++iovcnt;
      }
    } else {
      iov[iovcnt].iov_base = const_cast<std::byte*>(body + (sent - head_n));
      iov[iovcnt].iov_len = body_n - (sent - head_n);
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
    const ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void append_header(std::vector<std::byte>& out, std::uint32_t length) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((length >> (8 * i)) & 0xff));
  }
}

}  // namespace

bool read_frame(int fd, std::vector<std::byte>& payload) {
  // Injected receive failure: indistinguishable from the peer resetting
  // the connection before the frame arrived.
  if (fault::faults().fires("net.read_frame")) return false;
  std::byte header[4];
  if (!read_exact(fd, header, 4)) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[i])) << (8 * i);
  }
  if (length > kMaxFrameBytes) return false;
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

bool write_frame(int fd, const std::vector<std::byte>& payload) {
  // Injected send failure before any bytes leave: a clean reset.
  if (fault::faults().fires("net.write_frame")) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::byte header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::byte>((length >> (8 * i)) & 0xff);
  }
  if (payload.empty()) return write_exact(fd, header, 4);
  // Injected short write: the header and half the payload reach the
  // peer, then the connection "dies".  The receiver's read_exact on the
  // remainder blocks until our side closes, then fails — exercising the
  // torn-frame path without a real network.
  if (fault::faults().fires("net.short_write")) {
    write_two(fd, header, 4, payload.data(), payload.size() / 2);
    return false;
  }
  return write_two(fd, header, 4, payload.data(), payload.size());
}

// ------------------------------------------------------- FrameReader

bool FrameReader::feed(std::span<const std::byte> data) {
  if (poisoned_) return false;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (!in_payload_) {
      // Accumulate the 4-byte length header, possibly across feeds.
      while (header_bytes_ < 4 && pos < data.size()) {
        header_[header_bytes_++] = data[pos++];
      }
      if (header_bytes_ < 4) return true;
      std::uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(header_[i]))
                  << (8 * i);
      }
      if (length > max_frame_bytes_) {
        poisoned_ = true;
        return false;
      }
      header_bytes_ = 0;
      in_payload_ = true;
      partial_.resize(length);
      partial_filled_ = 0;
      if (length == 0) {
        ready_.push_back({});
        in_payload_ = false;
        continue;
      }
    }
    const std::size_t want = partial_.size() - partial_filled_;
    const std::size_t take = std::min(want, data.size() - pos);
    std::memcpy(partial_.data() + partial_filled_, data.data() + pos, take);
    partial_filled_ += take;
    pos += take;
    if (partial_filled_ == partial_.size()) {
      ready_.push_back(std::move(partial_));
      partial_ = {};
      partial_filled_ = 0;
      in_payload_ = false;
    }
  }
  return true;
}

bool FrameReader::next(std::vector<std::byte>& payload) {
  if (ready_.empty()) return false;
  payload = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

FrameReader::IoStatus FrameReader::pump(int fd) {
  if (poisoned_) return IoStatus::kError;
  std::byte buf[16 * 1024];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r == 0) return IoStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOpen;
      return IoStatus::kError;
    }
    if (!feed({buf, static_cast<std::size_t>(r)})) return IoStatus::kError;
    // A short read means the socket buffer is drained; stop instead of
    // paying one more syscall just to learn EAGAIN.
    if (static_cast<std::size_t>(r) < sizeof(buf)) return IoStatus::kOpen;
  }
}

// ------------------------------------------------------- FrameWriter

bool FrameWriter::enqueue(const std::vector<std::byte>& payload) {
  if (poisoned_) return false;
  // Same injected-failure semantics as write_frame(): refuse before
  // buffering a byte, or buffer a torn frame and poison the stream.
  if (fault::faults().fires("net.write_frame")) return false;
  append_header(buffer_, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty() && fault::faults().fires("net.short_write")) {
    buffer_.insert(buffer_.end(), payload.begin(),
                   payload.begin() + static_cast<std::ptrdiff_t>(payload.size() / 2));
    poisoned_ = true;
    return false;
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  return true;
}

FrameWriter::IoStatus FrameWriter::flush(int fd) {
  while (offset_ < buffer_.size()) {
    const ssize_t r = ::send(fd, buffer_.data() + offset_, buffer_.size() - offset_,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOpen;
      return IoStatus::kError;
    }
    offset_ += static_cast<std::size_t>(r);
  }
  buffer_.clear();
  offset_ = 0;
  // A poisoned backlog (injected short write) fails once the torn
  // frame is on the wire, so the owner drops the connection and the
  // peer observes the truncation.
  return poisoned_ ? IoStatus::kError : IoStatus::kOpen;
}

}  // namespace adr::net
