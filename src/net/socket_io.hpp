// Length-prefixed frame I/O over a stream socket.
//
// Every protocol message travels as `u32 length | payload` (little
// endian).  Frames are capped to keep a malformed peer from driving an
// unbounded allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adr::net {

/// Largest accepted frame (1 GiB).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Reads one frame; returns false on orderly close or error.
bool read_frame(int fd, std::vector<std::byte>& payload);

/// Writes one frame; returns false on error.
bool write_frame(int fd, const std::vector<std::byte>& payload);

}  // namespace adr::net
