// Length-prefixed frame I/O over a stream socket.
//
// Every protocol message travels as `u32 length | payload` (little
// endian).  Frames are capped to keep a malformed peer from driving an
// unbounded allocation.
//
// Two layers share the format:
//
//  - read_frame()/write_frame(): the blocking helpers AdrClient (and a
//    few tests) use — one call, one whole frame, the calling thread
//    sleeps in recv/send until it is done.
//  - FrameReader/FrameWriter: the incremental, non-blocking layer the
//    event-driven AdrServer front end is built on.  A FrameReader
//    accumulates whatever bytes the socket happens to deliver and hands
//    out completed frames; a FrameWriter buffers whole outbound frames
//    and flushes as much as the socket accepts.  Neither ever blocks,
//    so one event-loop thread can own thousands of connections.
//
// Fault points (docs/robustness.md): the blocking helpers evaluate
// `net.read_frame` / `net.write_frame` / `net.short_write` per call;
// FrameWriter::enqueue evaluates the two write points with identical
// semantics (the server's read-side point fires in the event loop when
// a completed frame is lifted off a connection — see server.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace adr::net {

/// Largest accepted frame (1 GiB).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Disables Nagle on a connected TCP socket.  The framed
/// request/response protocol is exactly the write-write-read shape
/// Nagle punishes: without this, a request frame can sit behind the
/// peer's delayed ACK for ~40ms.  Every serving-path socket (client,
/// server accept, router relay) sets it.
void set_tcp_nodelay(int fd);

/// Reads one frame; returns false on orderly close or error.
bool read_frame(int fd, std::vector<std::byte>& payload);

/// Writes one frame; returns false on error.
bool write_frame(int fd, const std::vector<std::byte>& payload);

/// Incremental frame reassembly for non-blocking sockets.
///
/// Feed it stream bytes in whatever sized slices arrive — a byte at a
/// time, several frames at once, cuts straddling the header/payload
/// boundary — and pop completed frames with next().  A length field
/// over the cap poisons the reader (the stream can never resynchronize
/// after a frame it refuses to buffer), mirroring read_frame's
/// oversized-frame rejection.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `data`, completing as many frames as it contains.
  /// Returns false once the stream is poisoned (oversized length);
  /// further bytes are ignored.
  bool feed(std::span<const std::byte> data);

  /// Pops the oldest completed frame into `payload`; false when none
  /// is ready.
  bool next(std::vector<std::byte>& payload);

  /// Completed frames waiting to be popped.
  std::size_t frames_ready() const { return ready_.size(); }

  /// True while a partially delivered frame (header or payload bytes)
  /// is buffered.
  bool mid_frame() const { return header_bytes_ > 0 || in_payload_; }

  /// True after an oversized length field; the connection should be
  /// dropped.
  bool poisoned() const { return poisoned_; }

  /// Non-blocking socket pump: recv()s until the socket would block,
  /// closes, or errors, feeding everything into the reassembler.
  enum class IoStatus {
    kOpen,    // drained what was available; connection still live
    kClosed,  // orderly peer close
    kError,   // transport error or poisoned stream
  };
  IoStatus pump(int fd);

 private:
  const std::uint32_t max_frame_bytes_;
  std::byte header_[4] = {};
  std::size_t header_bytes_ = 0;  // header bytes accumulated so far
  bool in_payload_ = false;
  std::vector<std::byte> partial_;     // payload under construction
  std::size_t partial_filled_ = 0;     // bytes of partial_ received
  std::deque<std::vector<std::byte>> ready_;
  bool poisoned_ = false;
};

/// Incremental frame writer for non-blocking sockets.
///
/// enqueue() buffers a whole `u32 length | payload` frame; flush()
/// pushes as much of the backlog as the socket accepts and never
/// blocks.  The owner keeps the fd registered for writability while
/// !idle().
class FrameWriter {
 public:
  /// Queues one frame.  Evaluates the `net.write_frame` (refuse before
  /// any byte is buffered) and `net.short_write` (buffer the header
  /// plus half the payload, then poison the stream so the peer sees a
  /// torn frame once it flushes) fault points exactly like
  /// write_frame().  Returns false when a fault fired or the writer is
  /// already poisoned — the connection should be flushed and dropped.
  bool enqueue(const std::vector<std::byte>& payload);

  enum class IoStatus {
    kOpen,   // flushed all it could (possibly everything); fd still good
    kError,  // transport error, or a poisoned backlog fully flushed
  };
  /// Sends buffered bytes until the backlog drains or the socket would
  /// block.
  IoStatus flush(int fd);

  /// Nothing buffered.
  bool idle() const { return buffer_.size() == offset_; }

  /// Bytes buffered and not yet accepted by the socket.
  std::size_t queued_bytes() const { return buffer_.size() - offset_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t offset_ = 0;  // bytes of buffer_ already sent
  bool poisoned_ = false;   // injected short write: fail after flushing
};

}  // namespace adr::net
