#include "net/http_exposition.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace adr::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Request heads larger than this are refused (telemetry GETs are tiny;
/// anything bigger is a confused or hostile peer).
constexpr std::size_t kMaxRequestBytes = 4096;
/// A connection that has not completed its exchange within this budget
/// is closed — a stalled scraper must not accumulate fds.
constexpr auto kConnDeadline = std::chrono::seconds(5);
/// Connections served concurrently; beyond it, accepts are refused by
/// immediate close (scrapers retry on their next interval).
constexpr std::size_t kMaxConns = 32;

struct HttpMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
};

HttpMetrics& http_metrics() {
  static HttpMetrics m{obs::metrics().counter("server.http_requests"),
                       obs::metrics().counter("server.http_errors")};
  return m;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

struct HttpConn {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
  bool responding = false;
  Clock::time_point deadline;
};

std::string http_response(int code, const char* reason, const char* content_type,
                          std::string body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  head += body;
  return head;
}

/// Parses "GET <path> HTTP/1.x" out of a complete request head.  Only
/// the request line matters; headers are ignored.
bool parse_request_line(const std::string& head, std::string& method,
                        std::string& target) {
  const std::size_t eol = head.find("\r\n");
  const std::string line = head.substr(0, eol);  // npos -> whole string
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  method = line.substr(0, sp1);
  target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  return !method.empty() && !target.empty();
}

/// Routes a parsed request to a full serialized response.
std::string respond(const std::string& method, const std::string& target) {
  if (method != "GET") {
    http_metrics().errors.add();
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET is served\n");
  }
  std::string path = target;
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  if (path == "/metrics") {
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         obs::to_prometheus(obs::metrics().snapshot()));
  }
  if (path == "/history") {
    // Optional ?n=<k>: only the k most recent samples.
    std::size_t last_n = 0;
    if (query.rfind("n=", 0) == 0) {
      last_n = static_cast<std::size_t>(std::strtoul(query.c_str() + 2, nullptr, 10));
    }
    return http_response(200, "OK", "application/json",
                         obs::sampler().history_json(last_n));
  }
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }
  http_metrics().errors.add();
  return http_response(404, "Not Found", "text/plain",
                       "serves /metrics, /history and /healthz\n");
}

}  // namespace

HttpExpositionServer::HttpExpositionServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpExpositionServer: socket() failed");
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("HttpExpositionServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("HttpExpositionServer: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("HttpExpositionServer: listen() failed");
  }
  set_nonblocking(listen_fd_);
}

HttpExpositionServer::~HttpExpositionServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpExpositionServer::start() {
  if (running_.exchange(true)) return;
  int fds[2];
  if (::pipe(fds) != 0) {
    running_.store(false);
    throw std::runtime_error("HttpExpositionServer: pipe() failed");
  }
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
  thread_ = std::thread([this]() { loop(); });
}

void HttpExpositionServer::stop() {
  if (!running_.exchange(false)) return;
  wake();
  if (thread_.joinable()) thread_.join();
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
}

void HttpExpositionServer::wake() {
  if (wake_wr_ < 0) return;
  const char one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_wr_, &one, 1);
}

void HttpExpositionServer::loop() {
  std::vector<HttpConn> conns;
  std::vector<pollfd> pfds;
  while (running_.load()) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_rd_, POLLIN, 0});
    for (const HttpConn& c : conns) {
      pfds.push_back({c.fd, static_cast<short>(c.responding ? POLLOUT : POLLIN), 0});
    }
    // Wake by the earliest connection deadline (1s floor keeps the idle
    // loop cheap; deadlines are seconds-scale).
    int timeout_ms = -1;
    if (!conns.empty()) {
      auto first = conns.front().deadline;
      for (const HttpConn& c : conns) first = std::min(first, c.deadline);
      const auto dt =
          std::chrono::duration_cast<std::chrono::milliseconds>(first - Clock::now());
      timeout_ms = static_cast<int>(std::max<long long>(dt.count(), 0));
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (!running_.load()) break;
    if (n < 0 && errno != EINTR) break;

    if (pfds[1].revents & POLLIN) {
      char buf[64];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (conns.size() >= kMaxConns) {
          http_metrics().errors.add();
          ::close(fd);
          continue;
        }
        set_nonblocking(fd);
        HttpConn c;
        c.fd = fd;
        c.deadline = Clock::now() + kConnDeadline;
        conns.push_back(std::move(c));
      }
    }

    const auto now = Clock::now();
    for (std::size_t i = 0; i < conns.size();) {
      HttpConn& c = conns[i];
      const short revents = i + 2 < pfds.size() ? pfds[i + 2].revents : 0;
      bool close_conn = now >= c.deadline || (revents & (POLLERR | POLLHUP | POLLNVAL));
      if (!close_conn && !c.responding && (revents & POLLIN)) {
        char buf[1024];
        for (;;) {
          const ssize_t r = ::read(c.fd, buf, sizeof(buf));
          if (r > 0) {
            c.in.append(buf, static_cast<std::size_t>(r));
            if (c.in.size() > kMaxRequestBytes) {
              http_metrics().errors.add();
              close_conn = true;
              break;
            }
            continue;
          }
          if (r == 0) close_conn = true;  // EOF before a full head
          break;                          // EAGAIN or EOF
        }
        if (!close_conn && c.in.find("\r\n\r\n") != std::string::npos) {
          std::string method;
          std::string target;
          if (parse_request_line(c.in, method, target)) {
            c.out = respond(method, target);
          } else {
            http_metrics().errors.add();
            c.out = http_response(400, "Bad Request", "text/plain", "bad request\n");
          }
          http_metrics().requests.add();
          served_.fetch_add(1);
          c.responding = true;
        }
      }
      if (!close_conn && c.responding) {
        while (c.out_pos < c.out.size()) {
          const ssize_t w =
              ::write(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos);
          if (w > 0) {
            c.out_pos += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          close_conn = true;  // peer vanished mid-response
          break;
        }
        if (c.out_pos >= c.out.size()) close_conn = true;  // exchange complete
      }
      if (close_conn) {
        ::close(c.fd);
        conns[i] = std::move(conns.back());
        conns.pop_back();
        // The pollfd snapshot no longer lines up with conns past i;
        // the swapped-in entry just waits for the next poll round.
        if (i + 2 < pfds.size()) pfds[i + 2].revents = 0;
      } else {
        ++i;
      }
    }
  }
  for (HttpConn& c : conns) ::close(c.fd);
}

}  // namespace adr::net
