// Plain-HTTP telemetry exposition listener.
//
// A deliberately tiny HTTP/1.0 GET server on its own loopback port so
// stock scrapers (Prometheus, curl, adr_top's fallback path) can read
// the process's telemetry without speaking the ADR wire protocol.  It
// serves exactly three read-only paths:
//
//   /metrics      the live obs::metrics() registry in Prometheus text
//                 exposition format 0.0.4 (see obs/exposition.hpp)
//   /history      the telemetry sampler's time-series ring as JSON;
//                 ?n=<k> caps the reply to the k most recent samples
//   /healthz      liveness probe ("ok")
//
// Like the query-serving loop (net/server.hpp) it never blocks on a
// peer: one background thread owns every fd, sockets are non-blocking
// under poll(2), request heads are capped at a few KiB and each
// connection carries a hard deadline, so a scraper that stalls
// mid-request is cut off instead of wedging the listener.  Responses
// declare Content-Length and the connection closes after each exchange
// (HTTP/1.0 semantics) — no keep-alive state to manage.
//
// Serving is read-only and lock-light: a request snapshots the metrics
// registry / sampler ring and renders; nothing on the query hot path is
// touched.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace adr::net {

class HttpExpositionServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port).  The socket
  /// exists after construction; serving starts with start().
  explicit HttpExpositionServer(std::uint16_t port);
  ~HttpExpositionServer();

  HttpExpositionServer(const HttpExpositionServer&) = delete;
  HttpExpositionServer& operator=(const HttpExpositionServer&) = delete;

  /// Starts the serving thread.  Idempotent.
  void start();
  /// Stops accepting, closes every connection, joins the thread.
  void stop();

  /// The bound port (valid after construction).
  std::uint16_t port() const { return port_; }

  /// Requests answered (any status) since construction.
  std::uint64_t requests_served() const { return served_.load(); }

 private:
  void loop();
  void wake();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  /// Self-pipe wakeup: stop() writes a byte to interrupt poll().
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace adr::net
