// ADR front-end socket server.
//
// "The front-end interacts with client applications and relays the range
// queries to the back-end... The socket interface is used for sequential
// clients." (paper sections 1-2)
//
// AdrServer listens on a TCP port (loopback by default), accepts client
// connections, and serves length-prefixed query frames: each frame is
// decoded, submitted to the Repository, and answered with a result frame
// carrying the summary and any return-to-client output chunks.  One
// connection is served at a time per server thread, matching ADR's
// single parallel back-end.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "core/frontend.hpp"
#include "core/planner/cost_model.hpp"

namespace adr::net {

class AdrServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = pick an ephemeral port).  `costs`
  /// are the compute charges applied to every submitted query.
  AdrServer(Repository& repository, std::uint16_t port,
            const ComputeCosts& costs = {});
  ~AdrServer();

  AdrServer(const AdrServer&) = delete;
  AdrServer& operator=(const AdrServer&) = delete;

  /// Starts the accept loop on a background thread.
  void start();

  /// Stops accepting and joins the server thread.
  void stop();

  /// The bound port (valid after construction).
  std::uint16_t port() const { return port_; }

  std::uint64_t queries_served() const { return served_.load(); }

 private:
  void serve_loop();
  void serve_connection(int fd);

  Repository* repository_;
  ComputeCosts costs_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> conn_fd_{-1};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace adr::net
