// ADR front-end socket server.
//
// "The front-end interacts with client applications and relays the range
// queries to the back-end... The socket interface is used for sequential
// clients." (paper sections 1-2)
//
// AdrServer listens on a TCP port (loopback by default) and serves each
// accepted client on its own connection thread: length-prefixed query
// frames are decoded and routed through the server's
// QuerySubmissionService worker pool (the paper's query submission
// service), so server-side execution concurrency is bounded by scheduler
// slots — not by the connection count — and every client shares the
// repository's warm executor pool and chunk cache.  The connection
// thread blocks on its ticket and answers with a result frame carrying
// the summary and any return-to-client output chunks.
//
// Back-pressure is protocol-level: past `max_connections`, or when the
// scheduler's pending queue is full, the server replies with a
// WireResult{ok=false, error="server busy"} frame — carrying a
// retry-after hint derived from the live queue-depth gauge and measured
// submit latency — and then closes, so clients can distinguish refusal
// from crash and know when retrying is worth it.
//
// Observability: every connection and query updates the process-wide
// obs::metrics() registry (server.* series; catalog in
// docs/observability.md), and a stats-request frame (wire protocol v3)
// on any connection answers with the registry snapshot as JSON plus,
// optionally, the query-lifecycle trace — see AdrClient::stats() and
// the adr_stats CLI tool.
//
// fd ownership: each connection's fd is closed only by its connection
// thread.  stop() never closes a connection fd from outside; it
// shutdown()s fds still registered in the live set (registration and
// close are ordered through conn_mutex_, so a shutdown can never hit a
// recycled descriptor), which unblocks any read so the thread can finish
// its in-flight query, flush the result, and exit on its own.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "core/frontend.hpp"
#include "core/planner/cost_model.hpp"

namespace adr::net {

class AdrServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = pick an ephemeral port).  `costs`
  /// are the compute charges applied to every submitted query.
  /// `max_connections` bounds concurrently served clients;
  /// `scheduler_workers` bounds concurrently *executing* queries and
  /// `max_pending` bounds accepted-but-unfinished queries (beyond it,
  /// submits are refused with a "server busy" frame).
  AdrServer(Repository& repository, std::uint16_t port,
            const ComputeCosts& costs = {}, int max_connections = 64,
            int scheduler_workers = 4, std::size_t max_pending = 256);
  ~AdrServer();

  AdrServer(const AdrServer&) = delete;
  AdrServer& operator=(const AdrServer&) = delete;

  /// Starts the accept loop on a background thread.
  void start();

  /// Graceful drain: stops accepting, half-closes (SHUT_RD) every live
  /// connection so in-flight queries still deliver their result frame,
  /// and joins every connection thread before returning.
  void stop();

  /// The bound port (valid after construction).
  std::uint16_t port() const { return port_; }

  std::uint64_t queries_served() const { return served_.load(); }

  /// Connections currently being served.
  std::size_t active_connections() const;

  /// Connections refused because max_connections was reached (each got a
  /// "server busy" frame before the close).
  std::uint64_t connections_refused() const { return refused_.load(); }

  /// Queries refused because the scheduler's pending queue was full.
  std::uint64_t queries_refused() const { return queries_refused_.load(); }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  void reap_finished_locked();  // joins done threads; caller holds conn_mutex_
  /// Sends a WireResult{ok=false, "server busy"} frame, then closes the
  /// fd gracefully (half-close + bounded drain, so the frame survives
  /// a client that is still writing its query).
  void refuse_with_busy_frame(int fd);
  /// Retry-after estimate for busy refusals: the queue the caller would
  /// sit behind (live scheduler depth gauges) times the measured mean
  /// submit latency, per worker.
  std::uint32_t retry_after_hint_ms() const;

  Repository* repository_;
  ComputeCosts costs_;
  /// Routes every query; bounded by scheduler slots, shared by all
  /// connections.
  QuerySubmissionService scheduler_;
  const int scheduler_workers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  const int max_connections_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> queries_refused_{0};
  std::atomic<std::uint64_t> next_client_id_{1};

  mutable std::mutex conn_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  // fds safe to shutdown() from stop(): a connection removes itself
  // before closing its fd.
  std::unordered_set<int> live_fds_;
};

}  // namespace adr::net
