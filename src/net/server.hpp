// ADR front-end socket server.
//
// "The front-end interacts with client applications and relays the range
// queries to the back-end... The socket interface is used for sequential
// clients." (paper sections 1-2)
//
// AdrServer listens on a TCP port (loopback by default) and serves every
// accepted client from ONE event-loop thread: all sockets are
// non-blocking and owned by an epoll (poll on non-Linux) readiness loop,
// a per-connection FrameReader reassembles length-prefixed query frames
// from whatever bytes arrive, and each complete frame is handed to the
// server's QuerySubmissionService worker pool (the paper's query
// submission service) — so server-side execution concurrency is bounded
// by scheduler slots and serving concurrency is no longer bounded by a
// thread per connection.  When a query finishes, the scheduler's
// completion hook wakes the loop through an eventfd (pipe fallback) and
// the loop — never a worker thread — serializes the result frame into
// the connection's FrameWriter and flushes it as the socket accepts.
// docs/serving.md walks through the architecture, back-pressure path and
// fd life cycle.
//
// Back-pressure is protocol-level: past `max_connections`, or when the
// scheduler's pending queue is full, the server replies with a
// WireResult{kBusy, "server busy"} frame — carrying a retry-after hint
// derived from the live queue-depth gauge and measured submit latency —
// and then closes, so clients can distinguish refusal from crash and
// know when retrying is worth it.  All refusal I/O is non-blocking and
// deadline-bounded: a refused peer that never reads can never stall the
// loop, stop(), or active_connections().
//
// Observability: every connection and query updates the process-wide
// obs::metrics() registry (server.* series; catalog in
// docs/observability.md), and a stats-request frame (wire protocol v3)
// on any connection answers with the registry snapshot as JSON plus,
// optionally, the query-lifecycle trace — see AdrClient::stats() and
// the adr_stats CLI tool.
//
// fd ownership: every client fd is created, registered, and closed by
// the event-loop thread only.  stop() signals the loop (running_ +
// wakeup), and the loop finishes in-flight queries, flushes their
// result frames under a bounded drain deadline, closes everything and
// exits; stop() then joins it and drains the scheduler.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/frontend.hpp"
#include "core/planner/cost_model.hpp"

namespace adr::net {

struct WireResult;
class HttpExpositionServer;

/// Continuous-telemetry knobs (now adr::TelemetryOptions, defined in
/// core/runtime_config.hpp so RuntimeConfig can carry it; this alias
/// keeps the historical adr::net name compiling).
using TelemetryOptions = adr::TelemetryOptions;

class AdrServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = pick an ephemeral port).  `costs`
  /// are the compute charges applied to every submitted query.
  /// `max_connections` bounds concurrently served clients;
  /// `scheduler_workers` bounds concurrently *executing* queries and
  /// `max_pending` bounds accepted-but-unfinished queries (beyond it,
  /// submits are refused with a "server busy" frame).
  AdrServer(Repository& repository, std::uint16_t port,
            const ComputeCosts& costs = {}, int max_connections = 64,
            int scheduler_workers = 4, std::size_t max_pending = 256,
            const TelemetryOptions& telemetry = {});

  /// RuntimeConfig overload: one validated struct carries the
  /// connection cap, scheduler shape, gang policy, telemetry knobs and
  /// the adaptive controller's band (core/runtime_config.hpp).  With
  /// runtime.adaptive.enabled the server owns an AdaptiveController
  /// that moves the repository's executor-pool cap and the scheduler's
  /// gang window from live sampler signals for the server's lifetime.
  AdrServer(Repository& repository, std::uint16_t port, const ComputeCosts& costs,
            const RuntimeConfig& runtime);
  ~AdrServer();

  AdrServer(const AdrServer&) = delete;
  AdrServer& operator=(const AdrServer&) = delete;

  /// Starts the event loop on a background thread.
  void start();

  /// Graceful drain: stops accepting, lets in-flight queries finish and
  /// flushes their result frames (bounded per-connection drain
  /// deadlines, so a peer that never reads cannot hold stop() hostage),
  /// then joins the loop thread and the scheduler workers.
  void stop();

  /// The bound port (valid after construction).
  std::uint16_t port() const { return port_; }

  /// The HTTP exposition port, or 0 when TelemetryOptions::http_port
  /// disabled it (valid after construction).
  std::uint16_t http_port() const;

  std::uint64_t queries_served() const { return served_.load(); }

  /// Connections currently being served.  Lock-free: the loop maintains
  /// an atomic count, so this never waits on connection I/O.
  std::size_t active_connections() const {
    const std::int64_t n = active_conns_.load();
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  /// Connections refused because max_connections was reached (each got a
  /// "server busy" frame before the close).
  std::uint64_t connections_refused() const { return refused_.load(); }

  /// Queries refused because the scheduler's pending queue was full.
  std::uint64_t queries_refused() const { return queries_refused_.load(); }

  /// Queries refused at admission because their Qos deadline had already
  /// expired, or a saturated-path retry hint overshot it (each got a
  /// typed kDeadlineExceeded frame).
  std::uint64_t deadline_refusals() const { return deadline_refusals_.load(); }

  /// The adaptive controller, or nullptr when the server was built
  /// without one (legacy constructors / runtime.adaptive.enabled off).
  const AdaptiveController* adaptive() const { return adaptive_.get(); }

 private:
  struct LoopState;  // event-loop-owned state; lives on the loop's stack
  struct Conn;       // per-connection state (see server.cpp)

  void event_loop();
  /// Signals the loop thread (safe from any thread).
  void wake();
  /// Scheduler completion hook: runs on a worker thread, records the
  /// ticket and wakes the loop — result frames are written only by the
  /// loop.
  void on_ticket_done(std::uint64_t ticket);

  // Loop internals (loop thread only; see server.cpp).
  void loop_accept(LoopState& ls);
  void loop_accept_error(LoopState& ls);
  void loop_register(LoopState& ls, int fd);
  void loop_refuse(LoopState& ls, int fd);
  void loop_readable(LoopState& ls, Conn& conn);
  void loop_process_frames(LoopState& ls, Conn& conn);
  void loop_handle_frame(LoopState& ls, Conn& conn, std::vector<std::byte> payload);
  void loop_reply(LoopState& ls, Conn& conn, const WireResult& result,
                  std::uint64_t ticket, bool close_after);
  void loop_flush(LoopState& ls, Conn& conn);
  void loop_drain_completions(LoopState& ls);
  void loop_update_interest(LoopState& ls, Conn& conn);
  void loop_maybe_finish_close(LoopState& ls, Conn& conn);
  void loop_close(LoopState& ls, Conn& conn);
  void loop_begin_stop_drain(LoopState& ls);
  void loop_expire_deadlines(LoopState& ls);
  int loop_timeout_ms(LoopState& ls) const;

  /// Retry-after estimate for busy refusals: the queue the caller would
  /// sit behind (live scheduler depth gauges) times the measured mean
  /// submit latency, per worker.
  std::uint32_t retry_after_hint_ms() const;

  Repository* repository_;
  ComputeCosts costs_;
  TelemetryOptions telemetry_;
  /// Constructed eagerly (the bind can throw; callers learn at
  /// construction, not at start()); serving begins in start().
  std::unique_ptr<HttpExpositionServer> http_;
  /// Routes every query; bounded by scheduler slots, shared by all
  /// connections.
  QuerySubmissionService scheduler_;
  /// Feedback controller over the executor pool + gang window; non-null
  /// only for the RuntimeConfig constructor with adaptive.enabled.
  std::unique_ptr<AdaptiveController> adaptive_;
  const int scheduler_workers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  const int max_connections_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> queries_refused_{0};
  std::atomic<std::uint64_t> deadline_refusals_{0};
  std::atomic<std::uint64_t> next_client_id_{1};
  std::atomic<std::int64_t> active_conns_{0};

  /// Wakeup channel: eventfd on Linux (rd == wr), self-pipe elsewhere.
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  /// Tickets finished by scheduler workers, awaiting pickup by the loop.
  std::mutex completion_mutex_;
  std::vector<std::uint64_t> completed_tickets_;
};

}  // namespace adr::net
