#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

#include "net/socket_io.hpp"

namespace adr::net {

AdrClient::AdrClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("AdrClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("AdrClient: connect() failed");
  }
}

AdrClient::~AdrClient() {
  if (fd_ >= 0) ::close(fd_);
}

WireResult AdrClient::submit(const Query& query, const ExecOptions& options) {
  if (fd_ < 0) throw std::runtime_error("AdrClient: not connected");
  if (!write_frame(fd_, encode_query(query, options))) {
    throw std::runtime_error("AdrClient: send failed");
  }
  std::vector<std::byte> payload;
  if (!read_frame(fd_, payload)) {
    throw std::runtime_error("AdrClient: connection closed before result");
  }
  WireResult result = decode_result(payload);
  if (result.server_busy()) {
    // Protocol-level refusal (connection cap or scheduler queue full):
    // the server closes this connection after the busy frame, so drop
    // our side too — connected() turns false and the caller knows to
    // reconnect and retry rather than treat this as a crash.
    ::close(fd_);
    fd_ = -1;
  }
  return result;
}

WireStatsReply AdrClient::stats(bool include_trace) {
  if (fd_ < 0) throw std::runtime_error("AdrClient: not connected");
  WireStatsRequest req;
  req.include_trace = include_trace;
  if (!write_frame(fd_, encode_stats_request(req))) {
    throw std::runtime_error("AdrClient: send failed");
  }
  std::vector<std::byte> payload;
  if (!read_frame(fd_, payload)) {
    throw std::runtime_error("AdrClient: connection closed before stats reply");
  }
  return decode_stats_reply(payload);
}

}  // namespace adr::net
