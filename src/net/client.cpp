#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "net/socket_io.hpp"
#include "obs/metrics.hpp"

namespace adr::net {
namespace {

// Cumulative process-wide series (metric catalog: docs/observability.md).
struct ClientMetrics {
  obs::Counter& retries;
  obs::Counter& gave_up;
  obs::Gauge& pending;
};

ClientMetrics& client_metrics() {
  static ClientMetrics m{obs::metrics().counter("client.retries"),
                         obs::metrics().counter("client.gave_up"),
                         obs::metrics().gauge("client.pending")};
  return m;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Uniform in [0, 1).
double next_unit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

Status transport_lost_status() {
  return Status::make(StatusCode::kUnavailable,
                      "connection lost before result");
}

Status connect_failed_status() {
  return Status::make(StatusCode::kUnavailable,
                      "connect failed before send");
}

}  // namespace

AdrClient::AdrClient(std::uint16_t port) : AdrClient(port, RetryPolicy{}) {}

AdrClient::AdrClient(std::uint16_t port, RetryPolicy policy)
    : port_(port),
      policy_(policy),
      // Mix the port in so two same-seed clients on different servers
      // still draw distinct jitter streams.
      jitter_state_(policy.seed * 0x9e3779b97f4a7c15ull + port + 1) {
  std::lock_guard lock(io_mutex_);
  if (!connect_locked() && policy_.max_attempts <= 1) {
    // Legacy single-shot contract: construction either yields a live
    // connection or throws.  A retrying client defers to submit() —
    // the server may simply not be listening *yet*.
    throw std::runtime_error("AdrClient: connect() failed");
  }
}

AdrClient::~AdrClient() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (sender_.joinable()) sender_.join();
  // Fail whatever the sender never reached; futures must not dangle.
  std::deque<Pending> orphaned;
  {
    std::lock_guard lock(queue_mutex_);
    orphaned.swap(queue_);
  }
  client_metrics().pending.add(-static_cast<std::int64_t>(orphaned.size()));
  for (Pending& p : orphaned) {
    WireResult r;
    r.status = Status::make(StatusCode::kUnavailable, "client shut down");
    p.promise.set_value(std::move(r));
  }
  std::lock_guard lock(io_mutex_);
  if (fd_ >= 0) ::close(fd_);
}

bool AdrClient::connected() const {
  std::lock_guard lock(io_mutex_);
  return fd_ >= 0;
}

bool AdrClient::connect_locked() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  set_tcp_nodelay(fd);
  fd_ = fd;
  return true;
}

std::optional<WireResult> AdrClient::attempt_locked(const Query& query,
                                                    const ExecOptions& options,
                                                    bool& sent) {
  sent = false;
  if (!connect_locked()) return std::nullopt;
  // From here on bytes may reach the server even if the write reports
  // failure (partial send), so the query must be presumed executed.
  sent = true;
  if (!write_frame(fd_, encode_query(query, options))) {
    ::close(fd_);
    fd_ = -1;
    return std::nullopt;
  }
  std::vector<std::byte> payload;
  if (!read_frame(fd_, payload)) {
    ::close(fd_);
    fd_ = -1;
    return std::nullopt;
  }
  WireResult result = decode_result(payload);
  if (result.server_busy()) {
    // Protocol-level refusal (connection cap or scheduler queue full):
    // the server closes this connection after the busy frame, so drop
    // our side too — connected() turns false and the caller (or the
    // retry loop) knows to reconnect rather than treat this as a crash.
    ::close(fd_);
    fd_ = -1;
  }
  return result;
}

std::chrono::milliseconds AdrClient::backoff_delay(int retry,
                                                   std::uint32_t hint_ms) {
  double ms = static_cast<double>(policy_.initial_backoff.count());
  for (int i = 1; i < retry; ++i) ms *= policy_.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(policy_.max_backoff.count()));
  if (policy_.jitter > 0.0) {
    const double u = next_unit(jitter_state_);  // [0,1)
    ms *= 1.0 - policy_.jitter + 2.0 * policy_.jitter * u;
  }
  if (policy_.honor_retry_after && hint_ms > 0) {
    // The server told us when the backlog should have drained; retrying
    // earlier than that just gets refused again.
    ms = std::max(ms, static_cast<double>(hint_ms));
  }
  return std::chrono::milliseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(ms)));
}

WireResult AdrClient::submit_locked(const Query& query,
                                    const ExecOptions& options) {
  const int max_attempts = std::max(1, policy_.max_attempts);
  WireResult last;
  for (int attempt = 1;; ++attempt) {
    bool sent = false;
    std::optional<WireResult> result = attempt_locked(query, options, sent);
    if (result.has_value()) {
      last = std::move(*result);
    } else if (sent) {
      // Transport loss after bytes went out: send failed mid-frame or
      // the connection closed before the result frame (e.g. a dropped
      // reply).  The server may have executed the query.
      last = WireResult{};
      last.status = transport_lost_status();
    } else {
      // Connect-stage failure: no bytes ever reached a server, so the
      // query provably never executed and a retry can never
      // double-apply it — retryable even for non-idempotent policies
      // (the server may simply not be listening yet).
      last = WireResult{};
      last.status = connect_failed_status();
    }
    last.attempts = static_cast<std::uint32_t>(attempt);
    if (last.ok()) return last;
    if (attempt >= max_attempts) break;
    if (sent && !is_retryable(last.status.code, policy_.idempotent)) return last;
    if (!sent && !is_retryable(last.status.code, /*idempotent=*/true)) return last;
    const auto delay = backoff_delay(attempt, last.retry_after_ms);
    // Deadline cap: a retry that cannot start (let alone finish) before
    // the query's Qos deadline would only burn a server slot to learn
    // kDeadlineExceeded — stop here and return the last real failure.
    if (options.qos.has_deadline() &&
        std::chrono::steady_clock::now() + delay >= options.qos.deadline) {
      ADR_DEBUG("client: deadline reached, not retrying ("
                << last.status.to_string() << ")");
      break;
    }
    ADR_DEBUG("client: retrying (" << last.status.to_string() << ") in "
                                   << delay.count() << "ms, attempt "
                                   << attempt + 1 << "/" << max_attempts);
    client_metrics().retries.add();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  if (!last.ok()) client_metrics().gave_up.add();
  return last;
}

WireResult AdrClient::submit(const Query& query, const ExecOptions& options) {
  std::lock_guard lock(io_mutex_);
  if (policy_.max_attempts <= 1) {
    // Legacy single-shot path, preserved exactly: no reconnects, every
    // transport failure is an exception with the historical message.
    if (fd_ < 0) throw std::runtime_error("AdrClient: not connected");
    if (!write_frame(fd_, encode_query(query, options))) {
      throw std::runtime_error("AdrClient: send failed");
    }
    std::vector<std::byte> payload;
    if (!read_frame(fd_, payload)) {
      throw std::runtime_error("AdrClient: connection closed before result");
    }
    WireResult result = decode_result(payload);
    if (result.server_busy()) {
      ::close(fd_);
      fd_ = -1;
    }
    return result;
  }
  return submit_locked(query, options);
}

WireResult AdrClient::submit(const Query& query, const Qos& qos,
                             const ExecOptions& options) {
  ExecOptions with_qos = options;
  with_qos.qos = qos;
  return submit(query, with_qos);
}

void AdrClient::start_sender_locked() {
  if (sender_started_) return;
  sender_started_ = true;
  sender_ = std::thread([this]() { sender_loop(); });
}

void AdrClient::sender_loop() {
  for (;;) {
    Pending item;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // On shutdown, stop immediately even with work queued: the
      // destructor fails the leftover promises with kUnavailable
      // instead of holding teardown hostage to retry backoffs.
      if (stopping_ || queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    client_metrics().pending.add(-1);
    queue_cv_.notify_all();  // a blocked submit_async can take the slot
    WireResult result;
    try {
      std::lock_guard lock(io_mutex_);
      result = submit_locked(item.query, item.options);
    } catch (...) {
      item.promise.set_exception(std::current_exception());
      continue;
    }
    item.promise.set_value(std::move(result));
  }
}

std::future<WireResult> AdrClient::submit_async(const Query& query,
                                                const ExecOptions& options) {
  Pending item;
  item.query = query;
  item.options = options;
  std::future<WireResult> future = item.promise.get_future();
  {
    std::unique_lock lock(queue_mutex_);
    queue_cv_.wait(lock, [this]() {
      return stopping_ || queue_.size() < policy_.max_pending;
    });
    if (stopping_) {
      WireResult r;
      r.status = Status::make(StatusCode::kUnavailable, "client shut down");
      item.promise.set_value(std::move(r));
      return future;
    }
    queue_.push_back(std::move(item));
    start_sender_locked();
  }
  client_metrics().pending.add(1);
  queue_cv_.notify_all();
  return future;
}

std::future<WireResult> AdrClient::submit_async(const Query& query, const Qos& qos,
                                                const ExecOptions& options) {
  ExecOptions with_qos = options;
  with_qos.qos = qos;
  return submit_async(query, with_qos);
}

std::optional<std::future<WireResult>> AdrClient::try_submit_async(
    const Query& query, const ExecOptions& options) {
  Pending item;
  item.query = query;
  item.options = options;
  std::future<WireResult> future = item.promise.get_future();
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_ || queue_.size() >= policy_.max_pending) return std::nullopt;
    queue_.push_back(std::move(item));
    start_sender_locked();
  }
  client_metrics().pending.add(1);
  queue_cv_.notify_all();
  return future;
}

std::optional<std::future<WireResult>> AdrClient::try_submit_async(
    const Query& query, const Qos& qos, const ExecOptions& options) {
  ExecOptions with_qos = options;
  with_qos.qos = qos;
  return try_submit_async(query, with_qos);
}

std::size_t AdrClient::pending() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

WireStatsReply AdrClient::stats(bool include_trace, bool include_history,
                                std::uint32_t history_samples) {
  std::lock_guard lock(io_mutex_);
  if (fd_ < 0 && !connect_locked()) {
    throw std::runtime_error("AdrClient: not connected");
  }
  WireStatsRequest req;
  req.include_trace = include_trace;
  req.include_history = include_history;
  req.history_samples = history_samples;
  if (!write_frame(fd_, encode_stats_request(req))) {
    throw std::runtime_error("AdrClient: send failed");
  }
  std::vector<std::byte> payload;
  if (!read_frame(fd_, payload)) {
    throw std::runtime_error("AdrClient: connection closed before stats reply");
  }
  if (is_result_frame(payload)) {
    // A server at its connection cap answers every new connection with a
    // busy result frame and closes — surface the typed status (and its
    // retry-after hint) instead of a "not a stats reply" decode error.
    const WireResult result = decode_result(payload);
    ::close(fd_);
    fd_ = -1;
    std::string msg = result.status.message.empty() ? std::string(kServerBusyError)
                                                    : result.status.message;
    if (result.retry_after_ms > 0) {
      msg += " (retry after " + std::to_string(result.retry_after_ms) + "ms)";
    }
    throw StatusError(result.status.code == StatusCode::kOk ? StatusCode::kUnavailable
                                                            : result.status.code,
                      msg);
  }
  return decode_stats_reply(payload);
}

}  // namespace adr::net
