#include "storage/catalog.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace adr {
namespace {

void write_rect(std::ostream& os, const Rect& r) {
  for (int i = 0; i < r.dims(); ++i) os << ' ' << r.lo()[i];
  for (int i = 0; i < r.dims(); ++i) os << ' ' << r.hi()[i];
}

Rect read_rect(std::istringstream& is, int dims) {
  Point lo(dims), hi(dims);
  for (int i = 0; i < dims; ++i) {
    if (!(is >> lo[i])) throw std::runtime_error("catalog: bad rect");
  }
  for (int i = 0; i < dims; ++i) {
    if (!(is >> hi[i])) throw std::runtime_error("catalog: bad rect");
  }
  return Rect(lo, hi);
}

}  // namespace

void save_catalog(std::ostream& os, const std::vector<const Dataset*>& datasets) {
  os << "adr-catalog 1\n";
  os << std::setprecision(17);
  for (const Dataset* ds : datasets) {
    os << "dataset " << ds->id() << ' ' << ds->domain().dims();
    write_rect(os, ds->domain());
    os << ' ' << ds->num_chunks() << ' ' << ds->name() << '\n';
    for (const ChunkMeta& c : ds->chunks()) {
      os << "chunk " << c.id.index << ' ' << c.disk << ' ' << c.bytes;
      write_rect(os, c.mbr);
      os << '\n';
    }
  }
}

void save_catalog_file(const std::filesystem::path& path,
                       const std::vector<const Dataset*>& datasets) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("catalog: cannot write " + path.string());
  save_catalog(os, datasets);
  if (!os) throw std::runtime_error("catalog: write failed for " + path.string());
}

std::vector<Dataset> load_catalog(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("adr-catalog 1", 0) != 0) {
    throw std::runtime_error("catalog: bad header");
  }
  std::vector<Dataset> out;

  std::uint32_t cur_id = 0;
  std::string cur_name;
  Rect cur_domain;
  std::size_t cur_expected = 0;
  std::vector<ChunkMeta> cur_chunks;
  bool open = false;

  auto finish = [&]() {
    if (!open) return;
    if (cur_chunks.size() != cur_expected) {
      throw std::runtime_error("catalog: dataset '" + cur_name + "' expects " +
                               std::to_string(cur_expected) + " chunks, found " +
                               std::to_string(cur_chunks.size()));
    }
    Dataset ds(cur_id, cur_name, cur_domain, std::move(cur_chunks));
    ds.build_index();
    out.push_back(std::move(ds));
    cur_chunks = {};
    open = false;
  };

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "dataset") {
      finish();
      int dims = 0;
      if (!(ls >> cur_id >> dims)) throw std::runtime_error("catalog: bad dataset line");
      if (dims < 1 || dims > kMaxDims) throw std::runtime_error("catalog: bad dims");
      cur_domain = read_rect(ls, dims);
      if (!(ls >> cur_expected)) throw std::runtime_error("catalog: bad chunk count");
      std::getline(ls, cur_name);
      if (!cur_name.empty() && cur_name.front() == ' ') cur_name.erase(0, 1);
      open = true;
    } else if (kind == "chunk") {
      if (!open) throw std::runtime_error("catalog: chunk before dataset");
      ChunkMeta meta;
      std::uint32_t index = 0;
      if (!(ls >> index >> meta.disk >> meta.bytes)) {
        throw std::runtime_error("catalog: bad chunk line");
      }
      meta.id = ChunkId{cur_id, index};
      meta.mbr = read_rect(ls, cur_domain.dims());
      if (index != cur_chunks.size()) {
        throw std::runtime_error("catalog: chunk indices out of order");
      }
      cur_chunks.push_back(meta);
    } else {
      throw std::runtime_error("catalog: unknown record '" + kind + "'");
    }
  }
  finish();
  return out;
}

std::vector<Dataset> load_catalog_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("catalog: cannot read " + path.string());
  return load_catalog(is);
}

}  // namespace adr
