#include "storage/loader.hpp"

#include <cassert>
#include <utility>

namespace adr {

Dataset load_dataset(std::uint32_t id, const std::string& name, const Rect& domain,
                     std::vector<Chunk> chunks, ChunkStore& store,
                     const LoadOptions& options) {
  // Renumber and collect metadata.
  std::vector<ChunkMeta> metas;
  metas.reserve(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    chunks[i].meta().id = ChunkId{id, static_cast<std::uint32_t>(i)};
    if (chunks[i].meta().bytes == 0) {
      chunks[i].meta().bytes = chunks[i].payload().size();
    }
    metas.push_back(chunks[i].meta());
  }

  // (2) placement.
  DeclusterOptions dopts = options.decluster;
  assert(dopts.num_disks == store.num_disks());
  const std::vector<int> placement = decluster(metas, domain, dopts);

  // (3) move chunks to their disks.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    chunks[i].meta().disk = placement[i];
    metas[i].disk = placement[i];
    if (options.store_payloads) {
      store.put(std::move(chunks[i]));
    } else {
      store.put(Chunk(metas[i]));
    }
  }

  // (4) index.
  Dataset ds(id, name, domain, std::move(metas));
  ds.build_index();
  return ds;
}

Dataset load_dataset_meta(std::uint32_t id, const std::string& name, const Rect& domain,
                          std::vector<ChunkMeta> chunks, const DeclusterOptions& options) {
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    chunks[i].id = ChunkId{id, static_cast<std::uint32_t>(i)};
  }
  const std::vector<int> placement = decluster(chunks, domain, options);
  for (std::size_t i = 0; i < chunks.size(); ++i) chunks[i].disk = placement[i];
  Dataset ds(id, name, domain, std::move(chunks));
  ds.build_index();
  return ds;
}

}  // namespace adr
