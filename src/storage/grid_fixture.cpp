#include "storage/grid_fixture.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "core/frontend.hpp"

namespace adr {

Rect grid_cell(const Rect& domain, int n, int ix, int iy) {
  const double dx = domain.extent(0) / n;
  const double dy = domain.extent(1) / n;
  const double e = 1e-9;
  return Rect(Point{domain.lo()[0] + ix * dx + e * dx,
                    domain.lo()[1] + iy * dy + e * dy},
              Point{domain.lo()[0] + (ix + 1) * dx - e * dx,
                    domain.lo()[1] + (iy + 1) * dy - e * dy});
}

std::uint64_t grid_full_sum(const GridSpec& spec, int d) {
  const std::uint64_t cells =
      static_cast<std::uint64_t>(spec.n) * static_cast<std::uint64_t>(spec.n);
  return static_cast<std::uint64_t>(d) * 100 * cells +
         cells * (cells - 1) / 2;
}

std::vector<GridIds> create_grid_datasets(Repository& repo,
                                          const GridSpec& spec) {
  if (spec.datasets < 1 || spec.n < 1 || spec.out_n < 1) {
    throw std::invalid_argument("create_grid_datasets: non-positive spec");
  }
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  std::vector<GridIds> ids;
  ids.reserve(static_cast<std::size_t>(spec.datasets));
  for (int d = 0; d < spec.datasets; ++d) {
    std::vector<Chunk> inputs;
    inputs.reserve(static_cast<std::size_t>(spec.n) * spec.n);
    for (int iy = 0; iy < spec.n; ++iy) {
      for (int ix = 0; ix < spec.n; ++ix) {
        ChunkMeta meta;
        meta.mbr = grid_cell(domain, spec.n, ix, iy);
        const std::uint64_t value =
            static_cast<std::uint64_t>(d) * 100 +
            static_cast<std::uint64_t>(iy) * spec.n + ix;
        std::vector<std::byte> payload(sizeof(std::uint64_t));
        std::memcpy(payload.data(), &value, payload.size());
        inputs.emplace_back(meta, std::move(payload));
      }
    }
    std::vector<Chunk> outputs;
    outputs.reserve(static_cast<std::size_t>(spec.out_n) * spec.out_n);
    for (int iy = 0; iy < spec.out_n; ++iy) {
      for (int ix = 0; ix < spec.out_n; ++ix) {
        ChunkMeta meta;
        meta.mbr = grid_cell(domain, spec.out_n, ix, iy);
        // One sum-count-max accumulator: sum, count, max (3 x u64).
        outputs.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
      }
    }
    GridIds pair;
    pair.input = repo.create_dataset("grid_in_" + std::to_string(d), domain,
                                     std::move(inputs));
    pair.output = repo.create_dataset("grid_out_" + std::to_string(d), domain,
                                      std::move(outputs));
    ids.push_back(pair);
  }
  return ids;
}

}  // namespace adr
