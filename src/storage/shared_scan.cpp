#include "storage/shared_scan.hpp"

#include <algorithm>

#include "common/fault.hpp"

namespace adr {

SharedScanStore::SharedScanStore(ChunkStore& backing, std::uint64_t max_bytes)
    : backing_(&backing), max_bytes_(max_bytes) {}

void SharedScanStore::add_planned_uses(ChunkId id, std::uint32_t uses) {
  if (uses == 0) return;
  std::lock_guard lock(mutex_);
  planned_[id] += uses;
}

std::optional<Chunk> SharedScanStore::get(int disk, ChunkId id) const {
  std::unique_lock lock(mutex_);
  if (auto it = retained_.find(id); it != retained_.end()) {
    ++stats_.shared_hits;
    Chunk copy = it->second.chunk;
    if (--it->second.remaining == 0) {
      stats_.resident_bytes -= it->second.chunk.payload().size();
      retained_.erase(it);
    }
    return copy;
  }

  auto planned = planned_.find(id);
  if (planned == planned_.end() || planned->second == 0) {
    ++stats_.passthrough;
    lock.unlock();
    return backing_->get(disk, id);
  }

  // First planned reader: pay the cold fetch, keep the chunk resident
  // for the remaining readers (unless the buffer is at its cap).
  const std::uint32_t uses = planned->second;
  planned_.erase(planned);
  ++stats_.cold_fetches;
  // Holding the mutex across the backing fetch keeps a second reader of
  // the same chunk from double-fetching; different chunks only contend
  // for the map, not the I/O (the backing store has its own locking).
  // A failed cold fetch consumes only the failed reader's planned use:
  // the remaining uses are re-registered so the gang's later readers are
  // still counted (and retained once a retry succeeds) instead of the
  // whole refcount leaking away into passthrough reads.
  std::optional<Chunk> chunk;
  try {
    fault::faults().check("storage.shared_fetch");
    chunk = backing_->get(disk, id);
  } catch (...) {
    if (uses > 1) planned_[id] = uses - 1;
    throw;
  }
  if (!chunk.has_value()) {
    if (uses > 1) planned_[id] = uses - 1;
    return chunk;
  }
  if (uses > 1) {
    const std::uint64_t charge = chunk->payload().size();
    if (max_bytes_ != 0 && stats_.resident_bytes + charge > max_bytes_) {
      // Over budget: later readers refetch.  Re-register them so each
      // still gets counted (and retained once memory frees up).
      ++stats_.cap_rejections;
      planned_[id] = uses - 1;
    } else {
      retained_.emplace(id, Entry{*chunk, uses - 1});
      stats_.resident_bytes += charge;
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
    }
  }
  return chunk;
}

void SharedScanStore::put(Chunk chunk) {
  {
    std::lock_guard lock(mutex_);
    if (auto it = retained_.find(chunk.meta().id); it != retained_.end()) {
      stats_.resident_bytes -= it->second.chunk.payload().size();
      stats_.resident_bytes += chunk.payload().size();
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
      it->second.chunk = chunk;
    }
  }
  backing_->put(std::move(chunk));
}

bool SharedScanStore::contains(int disk, ChunkId id) const {
  return backing_->contains(disk, id);
}

bool SharedScanStore::erase(int disk, ChunkId id) {
  {
    std::lock_guard lock(mutex_);
    if (auto it = retained_.find(id); it != retained_.end()) {
      stats_.resident_bytes -= it->second.chunk.payload().size();
      retained_.erase(it);
    }
    planned_.erase(id);
  }
  return backing_->erase(disk, id);
}

std::size_t SharedScanStore::chunk_count(int disk) const {
  return backing_->chunk_count(disk);
}

std::uint64_t SharedScanStore::bytes_on_disk(int disk) const {
  return backing_->bytes_on_disk(disk);
}

SharedScanStats SharedScanStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace adr
