// R-tree spatial index (ADR's indexing service).
//
// After chunks are placed on the disk farm, an R-tree is built over their
// MBRs; at query time it returns the chunks whose MBRs intersect the range
// query (paper section 2.2).  Supports Sort-Tile-Recursive (STR) bulk
// loading for dataset loads and Guttman-style dynamic insertion with
// linear-split for incremental appends.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

class RTree {
 public:
  /// Leaf fanout / internal fanout.
  explicit RTree(int max_entries = 16);

  /// Builds the tree from scratch with STR bulk loading.
  /// `mbrs[i]` becomes the entry with value `i`.
  void bulk_load(const std::vector<Rect>& mbrs);

  /// Inserts a single entry (Guttman insert, linear split).
  void insert(const Rect& mbr, std::uint32_t value);

  /// Returns the values of all entries whose MBR intersects `query`,
  /// in ascending value order.
  std::vector<std::uint32_t> query(const Rect& query) const;

  /// Visits matching entries without materializing a vector.
  void visit(const Rect& query,
             const std::function<void(std::uint32_t, const Rect&)>& fn) const;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int height() const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Root MBR (invalid Rect when empty).
  Rect bounds() const;

 private:
  struct Entry {
    Rect mbr;
    // Child node index for internal nodes; user value for leaves.
    std::uint32_t ref = 0;
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    Rect mbr() const;
  };

  std::uint32_t new_node(bool leaf);
  void visit_node(std::uint32_t node, const Rect& query,
                  const std::function<void(std::uint32_t, const Rect&)>& fn) const;
  std::uint32_t choose_leaf(std::uint32_t node, const Rect& mbr, int target_level,
                            int level, std::vector<std::uint32_t>& path);
  /// Splits an overflowing node; returns the new sibling index.
  std::uint32_t split_node(std::uint32_t node);
  int node_height(std::uint32_t node) const;

  int max_entries_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  std::size_t count_ = 0;
};

}  // namespace adr
