// Cross-query chunk cache (the buffer cache the paper flushed away,
// rebuilt for the serving path).
//
// CachingChunkStore decorates any ChunkStore with a sharded LRU payload
// cache: one shard per disk of the farm, each with its own lock and byte
// budget, so node threads reading from different disks never contend.
// Reads that hit serve from memory; misses fall through to the backing
// store and populate the shard.  put() is write-through and updates an
// already-cached id in place (a put of an uncached id does not allocate
// cache space — query outputs don't pollute the read cache); erase()
// invalidates.  The cache sits *below* the engine: plan chunk-read counts
// and ExecStats::chunks_read are unchanged, only where the bytes come
// from changes — exactly the layering bench/ablation_caching.cpp modelled
// in the simulator.
//
// Thread safety: fully thread-safe.  Lock order: shard mutex -> backing
// store's internal mutex (a shard lock is held across the backing get on
// a miss; the backing store never calls back into the cache).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/disk_store.hpp"

namespace adr {

/// Monotonic counters, aggregated over all shards.
struct ChunkCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Payload bytes served from memory (hits) vs fetched from the
  /// backing store (misses) — the byte-level split the per-query cost
  /// ledger reconciles against (obs/query_cost.hpp).
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidations = 0;
  /// Point-in-time occupancy.
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_chunks = 0;
};

class CachingChunkStore : public ChunkStore {
 public:
  /// Wraps `backing` (not owned; must outlive the cache) with one LRU
  /// shard per backing disk, each budgeted `bytes_per_disk`.
  CachingChunkStore(ChunkStore& backing, std::uint64_t bytes_per_disk);
  ~CachingChunkStore() override;

  void put(Chunk chunk) override;
  std::optional<Chunk> get(int disk, ChunkId id) const override;
  bool contains(int disk, ChunkId id) const override;
  bool erase(int disk, ChunkId id) override;
  std::size_t chunk_count(int disk) const override;
  std::uint64_t bytes_on_disk(int disk) const override;
  int num_disks() const override { return backing_->num_disks(); }

  ChunkStore& backing() { return *backing_; }
  std::uint64_t bytes_per_disk() const { return bytes_per_disk_; }

  ChunkCacheStats stats() const;

  /// Drops every cached payload (counters keep counting).
  void clear();

 private:
  /// Memory charged to a cached chunk beyond its payload (map/list node
  /// and metadata overhead) so metadata-only chunks still have a cost.
  static constexpr std::uint64_t kEntryOverheadBytes = 64;

  struct Entry {
    Chunk chunk;
    std::list<ChunkId>::iterator lru_pos;
    std::uint64_t charged_bytes = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<ChunkId> lru;  // front = most recently used
    std::unordered_map<ChunkId, Entry, ChunkIdHash> entries;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t invalidations = 0;
  };

  static std::uint64_t charge(const Chunk& chunk) {
    return chunk.payload().size() + kEntryOverheadBytes;
  }

  Shard& shard_of(int disk) const { return *shards_[static_cast<std::size_t>(disk)]; }
  /// Inserts or refreshes `chunk` in `shard`, evicting LRU entries until
  /// it fits.  Caller holds the shard mutex.
  void install_locked(Shard& shard, const Chunk& chunk) const;
  void remove_locked(Shard& shard, ChunkId id) const;

  ChunkStore* backing_;
  std::uint64_t bytes_per_disk_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace adr
