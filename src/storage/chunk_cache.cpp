#include "storage/chunk_cache.hpp"

#include <cassert>
#include <stdexcept>

#include "common/fault.hpp"
#include "obs/metrics.hpp"

namespace adr {
namespace {

// Cumulative process-wide series folding every cache instance's shard
// counters (metric catalog: docs/observability.md).  The per-instance
// ChunkCacheStats stay exact per cache; these are what the stats
// endpoint and long-running dashboards read.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& hit_bytes;
  obs::Counter& miss_bytes;
  obs::Counter& evictions;
  obs::Counter& insertions;
  obs::Counter& invalidations;
  obs::Gauge& resident_bytes;
  obs::Gauge& resident_chunks;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m{obs::metrics().counter("chunk_cache.hits"),
                        obs::metrics().counter("chunk_cache.misses"),
                        obs::metrics().counter("chunk_cache.hit_bytes"),
                        obs::metrics().counter("chunk_cache.miss_bytes"),
                        obs::metrics().counter("chunk_cache.evictions"),
                        obs::metrics().counter("chunk_cache.insertions"),
                        obs::metrics().counter("chunk_cache.invalidations"),
                        obs::metrics().gauge("chunk_cache.resident_bytes"),
                        obs::metrics().gauge("chunk_cache.resident_chunks")};
  return m;
}

}  // namespace

CachingChunkStore::CachingChunkStore(ChunkStore& backing, std::uint64_t bytes_per_disk)
    : backing_(&backing), bytes_per_disk_(bytes_per_disk) {
  if (backing_->num_disks() < 1) {
    throw std::invalid_argument("CachingChunkStore: backing store has no disks");
  }
  shards_.reserve(static_cast<std::size_t>(backing_->num_disks()));
  for (int d = 0; d < backing_->num_disks(); ++d) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachingChunkStore::~CachingChunkStore() {
  // Residency gauges are process-wide; give back what this instance
  // still holds so a destroyed repository doesn't leak phantom bytes.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    cache_metrics().resident_bytes.add(-static_cast<std::int64_t>(shard->bytes));
    cache_metrics().resident_chunks.add(
        -static_cast<std::int64_t>(shard->entries.size()));
  }
}

void CachingChunkStore::remove_locked(Shard& shard, ChunkId id) const {
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return;
  shard.bytes -= it->second.charged_bytes;
  cache_metrics().resident_bytes.add(
      -static_cast<std::int64_t>(it->second.charged_bytes));
  cache_metrics().resident_chunks.add(-1);
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

void CachingChunkStore::install_locked(Shard& shard, const Chunk& chunk) const {
  const std::uint64_t cost = charge(chunk);
  remove_locked(shard, chunk.meta().id);  // refresh: drop any stale copy
  if (cost > bytes_per_disk_) return;     // larger than the whole budget
  while (shard.bytes + cost > bytes_per_disk_) {
    assert(!shard.lru.empty());
    remove_locked(shard, shard.lru.back());
    ++shard.evictions;
    cache_metrics().evictions.add();
  }
  shard.lru.push_front(chunk.meta().id);
  Entry entry{chunk, shard.lru.begin(), cost};
  shard.bytes += cost;
  shard.entries.emplace(chunk.meta().id, std::move(entry));
  ++shard.insertions;
  cache_metrics().insertions.add();
  cache_metrics().resident_bytes.add(static_cast<std::int64_t>(cost));
  cache_metrics().resident_chunks.add(1);
}

void CachingChunkStore::put(Chunk chunk) {
  const int disk = chunk.meta().disk;
  if (disk < 0 || disk >= num_disks()) {
    // Let the backing store produce its usual error for bad placements.
    backing_->put(std::move(chunk));
    return;
  }
  Shard& shard = shard_of(disk);
  std::lock_guard<std::mutex> lock(shard.mutex);
  backing_->put(chunk);  // write-through first: backing is ground truth
  auto it = shard.entries.find(chunk.meta().id);
  if (it != shard.entries.end()) {
    // Coherence on overwrite of a cached id: refresh in place.
    ++shard.invalidations;
    cache_metrics().invalidations.add();
    install_locked(shard, chunk);
  }
}

std::optional<Chunk> CachingChunkStore::get(int disk, ChunkId id) const {
  if (disk < 0 || disk >= num_disks()) return backing_->get(disk, id);
  Shard& shard = shard_of(disk);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    ++shard.hits;
    shard.hit_bytes += it->second.chunk.payload().size();
    cache_metrics().hits.add();
    cache_metrics().hit_bytes.add(it->second.chunk.payload().size());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return it->second.chunk;
  }
  ++shard.misses;
  cache_metrics().misses.add();
  // A failed backing fetch must never populate the shard: a fault that
  // throws below (or the injected one here, between the fetch and the
  // install) would otherwise be masked for every later reader, serving
  // bytes the "disk" never delivered.
  std::optional<Chunk> chunk = backing_->get(disk, id);
  fault::faults().check("storage.cache_fetch");
  if (chunk.has_value()) {
    shard.miss_bytes += chunk->payload().size();
    cache_metrics().miss_bytes.add(chunk->payload().size());
    install_locked(shard, *chunk);
  }
  return chunk;
}

bool CachingChunkStore::contains(int disk, ChunkId id) const {
  return backing_->contains(disk, id);
}

bool CachingChunkStore::erase(int disk, ChunkId id) {
  if (disk < 0 || disk >= num_disks()) return backing_->erase(disk, id);
  Shard& shard = shard_of(disk);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    ++shard.invalidations;
    cache_metrics().invalidations.add();
    remove_locked(shard, id);
  }
  return backing_->erase(disk, id);
}

std::size_t CachingChunkStore::chunk_count(int disk) const {
  return backing_->chunk_count(disk);
}

std::uint64_t CachingChunkStore::bytes_on_disk(int disk) const {
  return backing_->bytes_on_disk(disk);
}

ChunkCacheStats CachingChunkStore::stats() const {
  ChunkCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.hit_bytes += shard->hit_bytes;
    total.miss_bytes += shard->miss_bytes;
    total.evictions += shard->evictions;
    total.insertions += shard->insertions;
    total.invalidations += shard->invalidations;
    total.resident_bytes += shard->bytes;
    total.resident_chunks += shard->entries.size();
  }
  return total;
}

void CachingChunkStore::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    cache_metrics().resident_bytes.add(-static_cast<std::int64_t>(shard->bytes));
    cache_metrics().resident_chunks.add(
        -static_cast<std::int64_t>(shard->entries.size()));
    shard->lru.clear();
    shard->entries.clear();
    shard->bytes = 0;
  }
}

}  // namespace adr
