#include "storage/dataset.hpp"

#include <cassert>

namespace adr {

Dataset::Dataset(std::uint32_t id, std::string name, Rect domain,
                 std::vector<ChunkMeta> chunks)
    : id_(id), name_(std::move(name)), domain_(domain), chunks_(std::move(chunks)) {
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    assert(chunks_[i].id.dataset == id_);
    assert(chunks_[i].id.index == static_cast<std::uint32_t>(i));
    total_bytes_ += chunks_[i].bytes;
  }
}

void Dataset::build_index() { build_index(std::make_unique<RTreeIndex>()); }

void Dataset::build_index(std::unique_ptr<SpatialIndex> index) {
  assert(index != nullptr);
  std::vector<Rect> mbrs;
  mbrs.reserve(chunks_.size());
  for (const ChunkMeta& c : chunks_) mbrs.push_back(c.mbr);
  index->build(mbrs);
  index_ = std::move(index);
}

std::vector<std::uint32_t> Dataset::find_chunks(const Rect& range) const {
  assert(index_ != nullptr);
  return index_->query(range);
}

void Dataset::set_placement(const std::vector<int>& disk_of_chunk) {
  assert(disk_of_chunk.size() == chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) chunks_[i].disk = disk_of_chunk[i];
}

double Dataset::mean_chunk_bytes() const {
  if (chunks_.empty()) return 0.0;
  return static_cast<double>(total_bytes_) / static_cast<double>(chunks_.size());
}

}  // namespace adr
