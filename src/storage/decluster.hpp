// Declustering: assigning chunks to the disks of the farm.
//
// ADR distributes a dataset's chunks across all disks so a range query can
// be served by many disks in parallel.  The paper uses a Hilbert-curve
// based declustering algorithm (Faloutsos & Bhagwat; Moon & Saltz): chunks
// are ordered by the Hilbert index of their MBR midpoint and dealt to
// disks round-robin, which places spatially adjacent chunks on distinct
// disks.  Round-robin (in load order) and random assignment are provided
// as baselines for the ablation bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "storage/chunk.hpp"

namespace adr {

enum class DeclusterMethod {
  kHilbert,     // paper's method
  kRoundRobin,  // deal chunks to disks in input order
  kRandom,      // uniform random disk per chunk
};

std::string to_string(DeclusterMethod m);

struct DeclusterOptions {
  DeclusterMethod method = DeclusterMethod::kHilbert;
  int num_disks = 1;
  /// Hilbert quantization bits per dimension.
  int hilbert_bits = 16;
  /// Seed for kRandom.
  std::uint64_t seed = 1;
};

/// Computes a disk assignment (one global disk index per chunk).
/// `domain` is the attribute-space bounding box used for Hilbert
/// quantization; pass the dataset's full extent.
std::vector<int> decluster(const std::vector<ChunkMeta>& chunks, const Rect& domain,
                           const DeclusterOptions& options);

/// Quality metric for a placement: for each of `probes` random square range
/// queries with the given relative extent, counts the chunks selected per
/// disk and returns the mean max/ideal ratio (1.0 = perfectly parallel
/// retrieval, larger = hotspots).  Used by the declustering ablation.
double decluster_quality(const std::vector<ChunkMeta>& chunks,
                         const std::vector<int>& assignment, const Rect& domain,
                         int num_disks, double query_extent_fraction, int probes,
                         std::uint64_t seed);

}  // namespace adr
