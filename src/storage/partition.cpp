#include "storage/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/hilbert.hpp"

namespace adr {

std::vector<Chunk> partition_items(std::vector<Item> items, const Rect& domain,
                                   const PartitionOptions& options) {
  std::vector<Chunk> chunks;
  if (items.empty()) return chunks;

  // Order items along the Hilbert curve through their positions.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<std::uint64_t> keys(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    keys[i] = hilbert_index_in_domain(items[i].position, domain, options.hilbert_bits);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&keys](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

  // Split the curve into runs of bounded payload size.
  std::vector<std::byte> payload;
  Rect mbr;
  auto flush = [&]() {
    if (payload.empty()) return;
    ChunkMeta meta;
    meta.mbr = mbr;
    meta.bytes = payload.size();
    chunks.emplace_back(meta, std::move(payload));
    payload = {};
    mbr = Rect();
  };
  for (std::size_t pos : order) {
    Item& item = items[pos];
    if (!payload.empty() &&
        payload.size() + item.payload.size() > options.target_chunk_bytes) {
      flush();
    }
    payload.insert(payload.end(), item.payload.begin(), item.payload.end());
    mbr = Rect::join(mbr, Rect(item.position, item.position));
  }
  flush();
  return chunks;
}

std::vector<Chunk> partition_grid(
    const Rect& domain, int nx, int ny,
    const std::function<std::vector<std::byte>(int ix, int iy)>& fill) {
  assert(domain.dims() >= 2 && nx >= 1 && ny >= 1);
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<size_t>(nx) * static_cast<size_t>(ny));
  const double dx = domain.extent(0) / nx;
  const double dy = domain.extent(1) / ny;
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      ChunkMeta meta;
      Point lo(2), hi(2);
      lo[0] = domain.lo()[0] + ix * dx + dx * 1e-9;
      hi[0] = domain.lo()[0] + (ix + 1) * dx - dx * 1e-9;
      lo[1] = domain.lo()[1] + iy * dy + dy * 1e-9;
      hi[1] = domain.lo()[1] + (iy + 1) * dy - dy * 1e-9;
      meta.mbr = Rect(lo, hi);
      std::vector<std::byte> payload = fill(ix, iy);
      meta.bytes = payload.size();
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

double partition_overlap(const std::vector<Chunk>& chunks) {
  if (chunks.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t a = 0; a < chunks.size(); ++a) {
    const Rect& ra = chunks[a].meta().mbr;
    const double volume = ra.volume();
    if (volume <= 0.0) continue;
    double overlap = 0.0;
    for (std::size_t b = 0; b < chunks.size(); ++b) {
      if (a == b) continue;
      overlap += ra.overlap_volume(chunks[b].meta().mbr);
    }
    total += overlap / volume;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace adr
