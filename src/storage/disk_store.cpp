#include "storage/disk_store.hpp"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/fault.hpp"
#include "obs/metrics.hpp"

namespace adr {

namespace {

// Process-wide backing-store read traffic (catalog:
// docs/observability.md).  Both concrete stores tick these on every
// successful fetch, so the series counts *cold* reads — the chunk cache
// serves hits without reaching here — and the per-query cost ledger's
// cold bytes reconcile against it.
struct StorageMetrics {
  obs::Counter& chunk_reads;
  obs::Counter& bytes_read;
};

StorageMetrics& storage_metrics() {
  static StorageMetrics m{obs::metrics().counter("storage.chunk_reads"),
                          obs::metrics().counter("storage.bytes_read")};
  return m;
}

}  // namespace

MemoryChunkStore::MemoryChunkStore(int num_disks) : disks_(static_cast<size_t>(num_disks)) {
  assert(num_disks >= 1);
}

void MemoryChunkStore::put(Chunk chunk) {
  const int disk = chunk.meta().disk;
  assert(disk >= 0 && disk < num_disks());
  std::lock_guard<std::mutex> lock(mutex_);
  Disk& d = disks_[static_cast<size_t>(disk)];
  auto [it, inserted] = d.chunks.insert_or_assign(chunk.meta().id, std::move(chunk));
  if (!inserted) {
    // Replacement: adjust byte accounting below using the new value only;
    // recompute lazily to keep the common path cheap.
    d.bytes = 0;
    for (const auto& [id, c] : d.chunks) d.bytes += c.meta().bytes;
  } else {
    d.bytes += it->second.meta().bytes;
  }
}

std::optional<Chunk> MemoryChunkStore::get(int disk, ChunkId id) const {
  assert(disk >= 0 && disk < num_disks());
  // Checked before the store lock: a latency fault sleeps without
  // serializing the whole farm; an error fault throws StatusError.
  fault::faults().check("storage.fetch");
  std::lock_guard<std::mutex> lock(mutex_);
  const Disk& d = disks_[static_cast<size_t>(disk)];
  auto it = d.chunks.find(id);
  if (it == d.chunks.end()) return std::nullopt;
  storage_metrics().chunk_reads.add();
  storage_metrics().bytes_read.add(it->second.payload().size());
  return it->second;
}

bool MemoryChunkStore::contains(int disk, ChunkId id) const {
  assert(disk >= 0 && disk < num_disks());
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].chunks.contains(id);
}

bool MemoryChunkStore::erase(int disk, ChunkId id) {
  assert(disk >= 0 && disk < num_disks());
  std::lock_guard<std::mutex> lock(mutex_);
  Disk& d = disks_[static_cast<size_t>(disk)];
  auto it = d.chunks.find(id);
  if (it == d.chunks.end()) return false;
  d.bytes -= it->second.meta().bytes;
  d.chunks.erase(it);
  return true;
}

std::size_t MemoryChunkStore::chunk_count(int disk) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].chunks.size();
}

std::uint64_t MemoryChunkStore::bytes_on_disk(int disk) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].bytes;
}

FileChunkStore::FileChunkStore(std::filesystem::path dir, int num_disks,
                               bool open_existing)
    : dir_(std::move(dir)),
      manifest_path_(dir_ / "manifest.txt"),
      disks_(static_cast<size_t>(num_disks)) {
  assert(num_disks >= 1);
  std::filesystem::create_directories(dir_);
  for (int k = 0; k < num_disks; ++k) {
    Disk& d = disks_[static_cast<size_t>(k)];
    d.path = dir_ / ("disk" + std::to_string(k) + ".dat");
    if (!open_existing) {
      // Truncate any stale file from a previous run.
      std::ofstream(d.path, std::ios::binary | std::ios::trunc);
    }
  }
  if (open_existing) {
    replay_manifest();
  } else {
    std::ofstream(manifest_path_, std::ios::trunc);
  }
}

void FileChunkStore::append_manifest(const std::string& line) {
  std::ofstream f(manifest_path_, std::ios::app);
  if (!f) throw std::runtime_error("FileChunkStore: cannot append manifest");
  f << line << '\n';
}

void FileChunkStore::replay_manifest() {
  std::ifstream f(manifest_path_);
  if (!f) return;  // empty store
  std::string line;
  while (std::getline(f, line)) {
    std::istringstream ls(line);
    std::string op;
    ls >> op;
    if (op == "put") {
      int disk = 0, dims = 0;
      Entry e;
      if (!(ls >> disk >> e.meta.id.dataset >> e.meta.id.index >> e.offset >>
            e.stored_bytes >> e.meta.bytes >> dims)) {
        throw std::runtime_error("FileChunkStore: bad manifest put line");
      }
      if (dims < 0 || dims > kMaxDims) {
        throw std::runtime_error("FileChunkStore: bad manifest dims");
      }
      if (dims > 0) {
        Point lo(dims), hi(dims);
        for (int i = 0; i < dims; ++i) ls >> lo[i];
        for (int i = 0; i < dims; ++i) ls >> hi[i];
        if (!ls) throw std::runtime_error("FileChunkStore: bad manifest mbr");
        e.meta.mbr = Rect(lo, hi);
      }
      e.meta.disk = disk;
      if (disk < 0 || disk >= num_disks()) {
        throw std::runtime_error("FileChunkStore: manifest disk out of range");
      }
      Disk& d = disks_[static_cast<size_t>(disk)];
      auto it = d.entries.find(e.meta.id);
      if (it != d.entries.end()) d.live_bytes -= it->second.meta.bytes;
      d.entries[e.meta.id] = e;
      d.live_bytes += e.meta.bytes;
      d.file_size = std::max(d.file_size, e.offset + e.stored_bytes);
    } else if (op == "erase") {
      int disk = 0;
      ChunkId id;
      if (!(ls >> disk >> id.dataset >> id.index)) {
        throw std::runtime_error("FileChunkStore: bad manifest erase line");
      }
      Disk& d = disks_[static_cast<size_t>(disk)];
      auto it = d.entries.find(id);
      if (it != d.entries.end()) {
        d.live_bytes -= it->second.meta.bytes;
        d.entries.erase(it);
      }
    } else if (!op.empty()) {
      throw std::runtime_error("FileChunkStore: unknown manifest op '" + op + "'");
    }
  }
}

FileChunkStore::~FileChunkStore() = default;

void FileChunkStore::put(Chunk chunk) {
  const int disk = chunk.meta().disk;
  assert(disk >= 0 && disk < num_disks());
  std::lock_guard<std::mutex> lock(mutex_);
  Disk& d = disks_[static_cast<size_t>(disk)];
  Entry e;
  e.meta = chunk.meta();
  e.offset = d.file_size;
  e.stored_bytes = chunk.payload().size();
  if (e.stored_bytes > 0) {
    std::ofstream f(d.path, std::ios::binary | std::ios::app);
    if (!f) throw std::runtime_error("FileChunkStore: cannot open " + d.path.string());
    f.write(reinterpret_cast<const char*>(chunk.payload().data()),
            static_cast<std::streamsize>(e.stored_bytes));
    d.file_size += e.stored_bytes;
  }
  auto it = d.entries.find(e.meta.id);
  if (it != d.entries.end()) d.live_bytes -= it->second.meta.bytes;
  d.entries[e.meta.id] = e;
  d.live_bytes += e.meta.bytes;

  std::ostringstream line;
  line << std::setprecision(17) << "put " << disk << ' ' << e.meta.id.dataset << ' '
       << e.meta.id.index << ' ' << e.offset << ' ' << e.stored_bytes << ' '
       << e.meta.bytes << ' ' << e.meta.mbr.dims();
  for (int i = 0; i < e.meta.mbr.dims(); ++i) line << ' ' << e.meta.mbr.lo()[i];
  for (int i = 0; i < e.meta.mbr.dims(); ++i) line << ' ' << e.meta.mbr.hi()[i];
  append_manifest(line.str());
}

std::optional<Chunk> FileChunkStore::get(int disk, ChunkId id) const {
  assert(disk >= 0 && disk < num_disks());
  fault::faults().check("storage.fetch");
  std::lock_guard<std::mutex> lock(mutex_);
  const Disk& d = disks_[static_cast<size_t>(disk)];
  auto it = d.entries.find(id);
  if (it == d.entries.end()) return std::nullopt;
  const Entry& e = it->second;
  std::vector<std::byte> payload(e.stored_bytes);
  if (e.stored_bytes > 0) {
    std::ifstream f(d.path, std::ios::binary);
    if (!f) throw std::runtime_error("FileChunkStore: cannot open " + d.path.string());
    f.seekg(static_cast<std::streamoff>(e.offset));
    f.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(e.stored_bytes));
    if (!f) throw std::runtime_error("FileChunkStore: short read from " + d.path.string());
  }
  storage_metrics().chunk_reads.add();
  storage_metrics().bytes_read.add(payload.size());
  return Chunk(e.meta, std::move(payload));
}

bool FileChunkStore::contains(int disk, ChunkId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].entries.contains(id);
}

bool FileChunkStore::erase(int disk, ChunkId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Disk& d = disks_[static_cast<size_t>(disk)];
  auto it = d.entries.find(id);
  if (it == d.entries.end()) return false;
  d.live_bytes -= it->second.meta.bytes;
  d.entries.erase(it);  // dead bytes remain in the file (no compaction)
  append_manifest("erase " + std::to_string(disk) + ' ' +
                  std::to_string(id.dataset) + ' ' + std::to_string(id.index));
  return true;
}

std::size_t FileChunkStore::chunk_count(int disk) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].entries.size();
}

std::uint64_t FileChunkStore::bytes_on_disk(int disk) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disks_[static_cast<size_t>(disk)].live_bytes;
}

}  // namespace adr
