// Deterministic grid datasets shared by every process of a sharded
// deployment.
//
// The router's chaos harness compares results produced by *different
// processes* — routed backends against a single-process oracle — so the
// datasets must be byte-identically reconstructible from nothing but a
// spec: adr_backend, the test oracle and bench_router_scaleout all call
// create_grid_datasets() with the same GridSpec and get the same
// chunks, ids and payloads.  (The in-process tests' ad-hoc fixtures in
// tests/test_helpers.hpp stay; this is the cross-process flavor.)
//
// Layout per dataset d (0-based):
//   input  "grid_in_<d>":  n x n chunks over the unit square; chunk
//     (ix, iy) holds one u64 value d * 100 + iy * n + ix
//   output "grid_out_<d>": out_n x out_n chunks of 24 zero bytes
//     (one sum-count-max accumulator)
// so a full-domain sum-count-max over dataset d sums to
//   d * 100 * n^2 + n^2 (n^2 - 1) / 2      (= 1600 d + 120 for n = 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

class Repository;

struct GridSpec {
  /// Independent input/output dataset pairs (distinct ids spread over a
  /// router's hash ring).
  int datasets = 1;
  /// Input grid side (n x n input chunks per dataset).
  int n = 4;
  /// Output grid side (out_n x out_n output chunks per dataset).
  int out_n = 2;
};

struct GridIds {
  std::uint32_t input = 0;
  std::uint32_t output = 0;
};

/// Axis-aligned cell (ix, iy) of an n x n split of `domain`, inset by a
/// relative epsilon so neighboring cells never touch (chunk MBRs stay
/// disjoint and range intersection is unambiguous).
Rect grid_cell(const Rect& domain, int n, int ix, int iy);

/// The expected full-domain sum-count-max *sum* over dataset `d`.
std::uint64_t grid_full_sum(const GridSpec& spec, int d);

/// Creates the spec's datasets in `repo` (ids in dataset order).
/// Throws std::invalid_argument on a non-positive spec field.
std::vector<GridIds> create_grid_datasets(Repository& repo,
                                          const GridSpec& spec = {});

}  // namespace adr
