// Dataset catalog persistence.
//
// Serializes dataset metadata (attribute-space extents, chunk MBRs,
// sizes and placements) to a plain-text catalog file, so a repository
// built over a FileChunkStore survives the process: payloads live in the
// per-disk data files, the catalog records where everything is.
//
// Format (line oriented, '#' comments allowed):
//
//   adr-catalog 1
//   dataset <id> <dims> <lo...> <hi...> <nchunks> <name>
//   chunk <index> <disk> <bytes> <lo...> <hi...>
//   ...
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "storage/dataset.hpp"

namespace adr {

/// Writes all datasets to `os`.  Indices are not serialized (they are
/// rebuilt on load).
void save_catalog(std::ostream& os, const std::vector<const Dataset*>& datasets);

/// Convenience: writes to a file; throws std::runtime_error on I/O error.
void save_catalog_file(const std::filesystem::path& path,
                       const std::vector<const Dataset*>& datasets);

/// Parses a catalog and rebuilds every dataset (with a fresh default
/// index).  Throws std::runtime_error on malformed input.
std::vector<Dataset> load_catalog(std::istream& is);

std::vector<Dataset> load_catalog_file(const std::filesystem::path& path);

}  // namespace adr
