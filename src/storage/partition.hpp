// Dataset partitioning (paper section 2.2, load step 1).
//
// "A dataset is partitioned into a set of chunks to achieve high
// bandwidth data retrieval...  Since data is accessed through range
// queries, it is desirable to have data items that are close to each
// other in the multi-dimensional space in the same chunk."
//
// partition_items() turns a bag of multi-dimensional items into chunks:
// items are ordered along the Hilbert curve and split into runs of
// bounded byte size, so every chunk is spatially compact and the chunk
// MBRs tile the data with little overlap.  A regular-grid partitioner is
// provided for dense array data (VM/WCS-style), where the grid *is* the
// right chunking.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.hpp"
#include "storage/chunk.hpp"

namespace adr {

/// One input item: a point plus its serialized payload.
struct Item {
  Point position;
  std::vector<std::byte> payload;
};

struct PartitionOptions {
  /// Target chunk payload size; a chunk closes when adding the next item
  /// would exceed it (chunks hold at least one item regardless).
  std::uint64_t target_chunk_bytes = 128 * 1024;
  /// Hilbert quantization bits for the ordering pass.
  int hilbert_bits = 16;
};

/// Chunks a set of items by Hilbert order + size splitting.  `domain`
/// must cover all item positions.  Item payloads are concatenated into
/// the chunk payload in curve order; the chunk MBR is the bounding box
/// of its items.  Items are consumed (moved from).
std::vector<Chunk> partition_items(std::vector<Item> items, const Rect& domain,
                                   const PartitionOptions& options = {});

/// Chunks a dense 2-D array domain into an nx x ny grid of equal cells,
/// calling `fill(ix, iy)` for each cell's payload.  Cells are shrunk by a
/// relative epsilon so neighbours do not touch.
std::vector<Chunk> partition_grid(
    const Rect& domain, int nx, int ny,
    const std::function<std::vector<std::byte>(int ix, int iy)>& fill);

/// Quality metric: mean over chunks of (sum of pairwise MBR overlap
/// volume with every other chunk) / chunk MBR volume.  0 = perfectly
/// disjoint chunking; large = heavily overlapping chunks that defeat
/// range-query pruning.
double partition_overlap(const std::vector<Chunk>& chunks);

}  // namespace adr
