#include "storage/rtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace adr {

RTree::RTree(int max_entries) : max_entries_(max_entries) {
  assert(max_entries_ >= 4);
  root_ = new_node(/*leaf=*/true);
}

Rect RTree::Node::mbr() const {
  Rect r;
  for (const Entry& e : entries) r = Rect::join(r, e.mbr);
  return r;
}

std::uint32_t RTree::new_node(bool leaf) {
  nodes_.push_back(Node{leaf, {}});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void RTree::bulk_load(const std::vector<Rect>& mbrs) {
  nodes_.clear();
  count_ = mbrs.size();
  if (mbrs.empty()) {
    root_ = new_node(true);
    return;
  }
  const int dims = mbrs.front().dims();

  // Current level: entries to pack into nodes one level up.
  std::vector<Entry> level;
  level.reserve(mbrs.size());
  for (std::uint32_t i = 0; i < mbrs.size(); ++i) level.push_back({mbrs[i], i});

  bool leaf = true;
  while (true) {
    // STR: recursively partition the entries into vertical "slabs" per
    // dimension, then pack runs of max_entries_ into nodes.
    const std::size_t n = level.size();
    const auto num_nodes =
        static_cast<std::size_t>(std::ceil(static_cast<double>(n) / max_entries_));
    if (num_nodes <= 1) {
      const std::uint32_t node = new_node(leaf);
      nodes_[node].entries = std::move(level);
      root_ = node;
      return;
    }

    // Sort-tile along each dimension in turn.
    std::function<void(std::span<Entry>, int)> tile = [&](std::span<Entry> part, int dim) {
      if (dim >= dims - 1 || part.size() <= static_cast<std::size_t>(max_entries_)) {
        std::sort(part.begin(), part.end(), [dim](const Entry& a, const Entry& b) {
          return a.mbr.center(dim) < b.mbr.center(dim);
        });
        return;
      }
      std::sort(part.begin(), part.end(), [dim](const Entry& a, const Entry& b) {
        return a.mbr.center(dim) < b.mbr.center(dim);
      });
      const auto nodes_here =
          static_cast<double>(std::ceil(static_cast<double>(part.size()) / max_entries_));
      const auto slabs = static_cast<std::size_t>(
          std::ceil(std::pow(nodes_here, 1.0 / static_cast<double>(dims - dim))));
      const std::size_t per_slab =
          (part.size() + slabs - 1) / std::max<std::size_t>(slabs, 1);
      for (std::size_t s = 0; s * per_slab < part.size(); ++s) {
        const std::size_t lo = s * per_slab;
        const std::size_t hi = std::min(part.size(), lo + per_slab);
        tile(part.subspan(lo, hi - lo), dim + 1);
      }
    };
    tile(level, 0);

    std::vector<Entry> parents;
    parents.reserve(num_nodes);
    for (std::size_t i = 0; i < n; i += static_cast<std::size_t>(max_entries_)) {
      const std::size_t hi = std::min(n, i + static_cast<std::size_t>(max_entries_));
      const std::uint32_t node = new_node(leaf);
      nodes_[node].entries.assign(level.begin() + static_cast<std::ptrdiff_t>(i),
                                  level.begin() + static_cast<std::ptrdiff_t>(hi));
      parents.push_back({nodes_[node].mbr(), node});
    }
    level = std::move(parents);
    leaf = false;
  }
}

void RTree::insert(const Rect& mbr, std::uint32_t value) {
  ++count_;
  // Descend to a leaf, remembering the path for MBR updates and splits.
  std::vector<std::uint32_t> path;
  std::uint32_t node = root_;
  path.push_back(node);
  while (!nodes_[node].leaf) {
    // Choose the child needing least volume enlargement.
    double best_growth = std::numeric_limits<double>::infinity();
    double best_vol = std::numeric_limits<double>::infinity();
    std::uint32_t best = 0;
    for (const Entry& e : nodes_[node].entries) {
      const double vol = e.mbr.volume();
      const double grown = Rect::join(e.mbr, mbr).volume();
      const double growth = grown - vol;
      if (growth < best_growth || (growth == best_growth && vol < best_vol)) {
        best_growth = growth;
        best_vol = vol;
        best = e.ref;
      }
    }
    node = best;
    path.push_back(node);
  }

  nodes_[node].entries.push_back({mbr, value});

  // Walk back up: split overflowing nodes, refresh parent MBRs.
  for (auto level = static_cast<int>(path.size()) - 1; level >= 0; --level) {
    const std::uint32_t cur = path[static_cast<std::size_t>(level)];
    std::uint32_t sibling = 0;
    const bool overflow =
        nodes_[cur].entries.size() > static_cast<std::size_t>(max_entries_);
    if (overflow) sibling = split_node(cur);

    if (level == 0) {
      if (overflow) {
        const std::uint32_t new_root = new_node(/*leaf=*/false);
        nodes_[new_root].entries.push_back({nodes_[cur].mbr(), cur});
        nodes_[new_root].entries.push_back({nodes_[sibling].mbr(), sibling});
        root_ = new_root;
      }
      break;
    }

    // Refresh this child's MBR in the parent; attach the sibling.
    const std::uint32_t parent = path[static_cast<std::size_t>(level - 1)];
    for (Entry& e : nodes_[parent].entries) {
      if (e.ref == cur) {
        e.mbr = nodes_[cur].mbr();
        break;
      }
    }
    if (overflow) nodes_[parent].entries.push_back({nodes_[sibling].mbr(), sibling});
  }
}

std::uint32_t RTree::split_node(std::uint32_t node) {
  // Guttman linear split: pick the pair of entries with the greatest
  // normalized separation as seeds, then assign the rest greedily.
  std::vector<Entry> entries = std::move(nodes_[node].entries);
  nodes_[node].entries.clear();
  const int dims = entries.front().mbr.dims();

  std::size_t seed_a = 0, seed_b = 1;
  double best_sep = -1.0;
  for (int d = 0; d < dims; ++d) {
    double lo_max = -std::numeric_limits<double>::infinity();
    double hi_min = std::numeric_limits<double>::infinity();
    double lo_min = std::numeric_limits<double>::infinity();
    double hi_max = -std::numeric_limits<double>::infinity();
    std::size_t lo_max_i = 0, hi_min_i = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Rect& r = entries[i].mbr;
      if (r.lo()[d] > lo_max) {
        lo_max = r.lo()[d];
        lo_max_i = i;
      }
      if (r.hi()[d] < hi_min) {
        hi_min = r.hi()[d];
        hi_min_i = i;
      }
      lo_min = std::min(lo_min, r.lo()[d]);
      hi_max = std::max(hi_max, r.hi()[d]);
    }
    const double width = hi_max - lo_min;
    const double sep = width > 0 ? (lo_max - hi_min) / width : 0.0;
    if (sep > best_sep && lo_max_i != hi_min_i) {
      best_sep = sep;
      seed_a = lo_max_i;
      seed_b = hi_min_i;
    }
  }
  if (seed_a == seed_b) seed_b = (seed_a + 1) % entries.size();

  const std::uint32_t sibling = new_node(nodes_[node].leaf);
  Rect mbr_a = entries[seed_a].mbr;
  Rect mbr_b = entries[seed_b].mbr;
  nodes_[node].entries.push_back(entries[seed_a]);
  nodes_[sibling].entries.push_back(entries[seed_b]);

  const std::size_t min_fill = static_cast<std::size_t>(max_entries_) / 2;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    const std::size_t remaining = entries.size() - i;  // coarse upper bound
    Node& a = nodes_[node];
    Node& b = nodes_[sibling];
    // Force-fill a side that could not otherwise reach minimum occupancy.
    if (a.entries.size() + remaining <= min_fill) {
      a.entries.push_back(entries[i]);
      mbr_a = Rect::join(mbr_a, entries[i].mbr);
      continue;
    }
    if (b.entries.size() + remaining <= min_fill) {
      b.entries.push_back(entries[i]);
      mbr_b = Rect::join(mbr_b, entries[i].mbr);
      continue;
    }
    const double grow_a = Rect::join(mbr_a, entries[i].mbr).volume() - mbr_a.volume();
    const double grow_b = Rect::join(mbr_b, entries[i].mbr).volume() - mbr_b.volume();
    if (grow_a < grow_b || (grow_a == grow_b && a.entries.size() <= b.entries.size())) {
      a.entries.push_back(entries[i]);
      mbr_a = Rect::join(mbr_a, entries[i].mbr);
    } else {
      b.entries.push_back(entries[i]);
      mbr_b = Rect::join(mbr_b, entries[i].mbr);
    }
  }
  return sibling;
}

void RTree::visit_node(std::uint32_t node, const Rect& query,
                       const std::function<void(std::uint32_t, const Rect&)>& fn) const {
  const Node& n = nodes_[node];
  for (const Entry& e : n.entries) {
    if (!e.mbr.intersects(query)) continue;
    if (n.leaf) {
      fn(e.ref, e.mbr);
    } else {
      visit_node(e.ref, query, fn);
    }
  }
}

void RTree::visit(const Rect& query,
                  const std::function<void(std::uint32_t, const Rect&)>& fn) const {
  if (nodes_.empty()) return;
  visit_node(root_, query, fn);
}

std::vector<std::uint32_t> RTree::query(const Rect& q) const {
  std::vector<std::uint32_t> out;
  visit(q, [&out](std::uint32_t v, const Rect&) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

int RTree::node_height(std::uint32_t node) const {
  const Node& n = nodes_[node];
  if (n.leaf) return 1;
  if (n.entries.empty()) return 1;
  return 1 + node_height(n.entries.front().ref);
}

int RTree::height() const {
  if (nodes_.empty()) return 0;
  return node_height(root_);
}

Rect RTree::bounds() const {
  if (nodes_.empty()) return Rect();
  return nodes_[root_].mbr();
}

}  // namespace adr
