// Chunks: ADR's unit of storage, I/O and communication.
//
// Every dataset is partitioned into chunks; each chunk carries the minimum
// bounding rectangle (MBR) of its items in the dataset's attribute space,
// a placement (which disk of the farm holds it), and optionally a payload.
// Payloads are real bytes in thread-executor runs; simulation runs may use
// metadata-only chunks whose size still drives I/O and network costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

/// Identifies a chunk within the repository: (dataset id, chunk index).
struct ChunkId {
  std::uint32_t dataset = 0;
  std::uint32_t index = 0;

  bool operator==(const ChunkId&) const = default;
  auto operator<=>(const ChunkId&) const = default;

  std::string to_string() const {
    return "d" + std::to_string(dataset) + ":c" + std::to_string(index);
  }
};

struct ChunkIdHash {
  std::size_t operator()(const ChunkId& id) const {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(id.dataset) << 32) |
                                      id.index);
  }
};

/// Chunk metadata: everything the planner and indexing service need.
struct ChunkMeta {
  ChunkId id;
  /// MBR of the chunk's items in the dataset's attribute space.
  Rect mbr;
  /// On-disk size in bytes (drives I/O and communication costs).
  std::uint64_t bytes = 0;
  /// Global disk index (node-major across the disk farm); -1 = unplaced.
  int disk = -1;
};

/// A chunk with (optional) payload.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(ChunkMeta meta) : meta_(std::move(meta)) {}
  Chunk(ChunkMeta meta, std::vector<std::byte> payload)
      : meta_(std::move(meta)), payload_(std::move(payload)) {}

  const ChunkMeta& meta() const { return meta_; }
  ChunkMeta& meta() { return meta_; }

  bool has_payload() const { return !payload_.empty(); }
  const std::vector<std::byte>& payload() const { return payload_; }
  std::vector<std::byte>& payload() { return payload_; }

  /// Reinterprets the payload as an array of T (size must divide evenly).
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(payload_.data()), payload_.size() / sizeof(T)};
  }

  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(payload_.data()), payload_.size() / sizeof(T)};
  }

 private:
  ChunkMeta meta_;
  std::vector<std::byte> payload_;
};

/// Builds a payload from a vector of doubles (the emulators' item type).
std::vector<std::byte> payload_from_doubles(const std::vector<double>& values);

}  // namespace adr
