// Dataset loading (paper section 2.2).
//
// "Loading a dataset into ADR is accomplished in four steps: (1) partition
// a dataset into data chunks, (2) compute placement information, (3) move
// data chunks to the disks according to placement information, and (4)
// create an index."
//
// Step (1) is performed by the caller / emulator (chunks arrive already
// partitioned); load_dataset performs (2)-(4): declusters the chunks over
// the disk farm, moves them into the ChunkStore, and builds the R-tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/chunk.hpp"
#include "storage/dataset.hpp"
#include "storage/decluster.hpp"
#include "storage/disk_store.hpp"

namespace adr {

struct LoadOptions {
  DeclusterOptions decluster;
  /// When false, only metadata is registered (simulation runs); payloads
  /// are dropped and reads return metadata-only chunks.
  bool store_payloads = true;
};

/// Loads pre-partitioned chunks as dataset `id`/`name` into `store` and
/// returns the catalog entry.  Chunk metas are renumbered to (id, 0..n-1);
/// `domain` is the dataset's attribute-space extent.
Dataset load_dataset(std::uint32_t id, const std::string& name, const Rect& domain,
                     std::vector<Chunk> chunks, ChunkStore& store,
                     const LoadOptions& options);

/// Metadata-only variant: same placement + indexing, nothing stored.
Dataset load_dataset_meta(std::uint32_t id, const std::string& name, const Rect& domain,
                          std::vector<ChunkMeta> chunks, const DeclusterOptions& options);

}  // namespace adr
