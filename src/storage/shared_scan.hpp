// Gang-scoped shared-scan buffer for batch execution.
//
// SharedScanStore decorates a ChunkStore for the lifetime of one gang
// (Repository::submit_batch): the batch plan registers, per input chunk,
// how many reads the gang's members will issue for it in total.  The
// first get() of a chunk fetches it from the backing store (a *cold*
// fetch) and, when more planned uses remain, retains the payload; every
// later get() is served from the buffer (a *shared hit*) and decrements
// the remaining-use count.  When the count hits zero the entry is
// dropped immediately — residency tracks exactly the window between a
// chunk's first and last planned reader, bounded further by `max_bytes`
// (past the cap, chunks are served pass-through and later users refetch;
// sharing degrades instead of memory growing).
//
// Reads with no registered uses (e.g. output-chunk initialization reads)
// pass straight through.  put()/erase() forward to the backing store and
// update/invalidate any retained copy, so a member that writes a chunk a
// later member reads observes the same bytes serial execution would.
//
// Thread safety: fully thread-safe (one mutex; the gang's node threads
// read concurrently).  Lock order: SharedScanStore mutex -> backing
// store internals (the backing store never calls back in).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "storage/disk_store.hpp"

namespace adr {

struct SharedScanStats {
  /// Fetches that reached the backing store for a chunk with registered
  /// uses — the gang's cold reads.
  std::uint64_t cold_fetches = 0;
  /// Reads served from the retained buffer.
  std::uint64_t shared_hits = 0;
  /// Reads with no registered use (forwarded untouched).
  std::uint64_t passthrough = 0;
  /// Retentions skipped because max_bytes was reached.
  std::uint64_t cap_rejections = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
};

class SharedScanStore : public ChunkStore {
 public:
  /// Wraps `backing` (not owned; must outlive this store).  `max_bytes`
  /// caps retained payload bytes; 0 means unlimited.
  explicit SharedScanStore(ChunkStore& backing, std::uint64_t max_bytes = 0);

  /// Registers `uses` planned reads of a chunk (additive across calls).
  void add_planned_uses(ChunkId id, std::uint32_t uses);

  void put(Chunk chunk) override;
  std::optional<Chunk> get(int disk, ChunkId id) const override;
  bool contains(int disk, ChunkId id) const override;
  bool erase(int disk, ChunkId id) override;
  std::size_t chunk_count(int disk) const override;
  std::uint64_t bytes_on_disk(int disk) const override;
  int num_disks() const override { return backing_->num_disks(); }

  SharedScanStats stats() const;

 private:
  struct Entry {
    Chunk chunk;
    std::uint32_t remaining = 0;
  };

  ChunkStore* backing_;
  const std::uint64_t max_bytes_;

  mutable std::mutex mutex_;
  mutable std::unordered_map<ChunkId, std::uint32_t, ChunkIdHash> planned_;
  mutable std::unordered_map<ChunkId, Entry, ChunkIdHash> retained_;
  mutable SharedScanStats stats_;
};

}  // namespace adr
