// Semantic aggregate reuse: a cross-query cache of finalized
// per-accumulator-chunk partials (data-cube marginals).
//
// The chunk cache (storage/chunk_cache.hpp) reuses *bytes*; this layer
// reuses *aggregates*.  Because AggregationOp is associative and
// commutative, the post-global-combine accumulator a completed query
// holds for one output chunk is a pure function of (a) the aggregation
// operation, (b) the mapping function, and (c) the exact set of input
// chunks that contributed — it does not depend on the strategy, the
// tiling, the gang it ran in, or any other query parameter.  That makes
// it exactly a data-cube marginal: any later query whose range induces
// the same contributing set for that accumulator chunk can skip both the
// I/O and the compute for it and pay only for the fringe.
//
// Keying.  An entry is addressed by a 128-bit canonical signature mixed
// (MarginalSignature) from: the aggregation name, the map-function name,
// the output chunk identity (dataset id, shape version, chunk index,
// chunk bytes), and the sorted contributing input chunk set, each tagged
// with its dataset's id and *data version*.  Versions make invalidation
// O(1): writing a dataset's payloads bumps its data version, replacing a
// dataset (load_catalog over an existing id) bumps both versions, and
// every entry minted under the old version becomes unreachable — the LRU
// sweeps it out under byte pressure.  Two queries with the same range
// but a different map or aggregation mix different names and therefore
// never collide.
//
// Structure mirrors CachingChunkStore: fixed shards (keyed by signature
// bits, not disk — partials have no placement), each with its own lock,
// LRU list and byte budget.  Thread safety: fully thread-safe; the
// version table sits behind its own mutex, acquired before any shard
// lock (never the other way).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/disk_store.hpp"

namespace adr {

/// 128-bit canonical signature of one cached partial.
struct MarginalKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const MarginalKey&) const = default;
};

struct MarginalKeyHash {
  std::size_t operator()(const MarginalKey& k) const {
    // hi and lo are already well-mixed; fold them.
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Canonical signature hasher: a keyed streaming mix over the query
/// parameters that determine a partial's value.  Two independent lanes
/// give 128 bits, so accidental collisions are out of reach for any
/// realistic catalog.  Mixing is order-sensitive — callers must feed
/// fields in a canonical order (the cache's consult path sorts the
/// contributing chunk set before mixing).
class MarginalSignature {
 public:
  MarginalSignature();

  void mix(std::uint64_t value);
  void mix(std::string_view text);

  MarginalKey key() const { return MarginalKey{hi_, lo_}; }

 private:
  std::uint64_t hi_;
  std::uint64_t lo_;
};

/// A dataset's version pair as captured at consult time.
struct MarginalVersions {
  /// Bumped when the dataset's chunk payloads change (query write-back,
  /// chunk erase): partials computed *from* the dataset are stale.
  std::uint64_t data = 0;
  /// Bumped when the dataset's shape changes (replaced wholesale via
  /// load_catalog): partials *into* its chunks are stale too.
  std::uint64_t shape = 0;
};

/// Monotonic counters plus point-in-time occupancy, over all shards.
struct MarginalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t publishes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // dataset version bumps
  /// Input payload bytes whose read *and* aggregation were skipped
  /// because the covering partials were served from this cache.
  std::uint64_t bytes_saved = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_entries = 0;
};

class MarginalCache {
 public:
  /// Total byte budget over `num_shards` LRU shards (each gets an equal
  /// slice, minimum one entry's overhead worth).
  explicit MarginalCache(std::uint64_t byte_budget, int num_shards = 8);
  ~MarginalCache();

  MarginalCache(const MarginalCache&) = delete;
  MarginalCache& operator=(const MarginalCache&) = delete;

  /// The cached partial for `key`, or nullopt.  Hits refresh LRU order.
  std::optional<std::vector<std::byte>> lookup(const MarginalKey& key);

  /// Installs a finalized partial (refreshing any stale copy), evicting
  /// LRU entries until it fits.  Oversized partials are dropped.
  void publish(const MarginalKey& key, std::vector<std::byte> partial);

  /// Current version pair for a dataset (zeros until first bump).
  MarginalVersions versions(std::uint32_t dataset_id) const;

  /// Dataset payloads changed (write-back, erase): bump data version.
  void invalidate_data(std::uint32_t dataset_id);

  /// Dataset replaced wholesale: bump data and shape versions.
  void invalidate_dataset(std::uint32_t dataset_id);

  /// Records input bytes not read because partials were served from the
  /// cache (kept here so the process-wide series stays in one place).
  void note_bytes_saved(std::uint64_t bytes);

  std::uint64_t byte_budget() const { return byte_budget_; }

  MarginalCacheStats stats() const;

  /// Drops every cached partial (counters and versions keep counting).
  void clear();

 private:
  /// Charged per entry beyond the partial payload (map/list node plus
  /// key/metadata overhead) so tiny partials still have a cost.
  static constexpr std::uint64_t kEntryOverheadBytes = 96;

  struct Entry {
    std::vector<std::byte> partial;
    std::list<MarginalKey>::iterator lru_pos;
    std::uint64_t charged_bytes = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<MarginalKey> lru;  // front = most recently used
    std::unordered_map<MarginalKey, Entry, MarginalKeyHash> entries;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t publishes = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const MarginalKey& key) const {
    return *shards_[static_cast<std::size_t>(key.hi % shards_.size())];
  }
  void remove_locked(Shard& shard, const MarginalKey& key) const;

  std::uint64_t byte_budget_;
  std::uint64_t bytes_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards versions_ and the invalidation/bytes-saved counters.
  mutable std::mutex version_mutex_;
  std::unordered_map<std::uint32_t, MarginalVersions> versions_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t bytes_saved_ = 0;
};

/// ChunkStore decorator closing the out-of-band write hole: every
/// put/erase through the repository's store handle bumps the written
/// dataset's data version in the marginal cache, so partials computed
/// from the old payloads become unreachable exactly like they do for
/// query write-back.  Reads forward untouched (one virtual hop).
class MarginalInvalidatingStore : public ChunkStore {
 public:
  MarginalInvalidatingStore(ChunkStore& inner, MarginalCache& cache)
      : inner_(inner), cache_(cache) {}

  void put(Chunk chunk) override {
    const std::uint32_t dataset = chunk.meta().id.dataset;
    inner_.put(std::move(chunk));
    cache_.invalidate_data(dataset);
  }

  std::optional<Chunk> get(int disk, ChunkId id) const override {
    return inner_.get(disk, id);
  }

  bool contains(int disk, ChunkId id) const override {
    return inner_.contains(disk, id);
  }

  bool erase(int disk, ChunkId id) override {
    const bool existed = inner_.erase(disk, id);
    if (existed) cache_.invalidate_data(id.dataset);
    return existed;
  }

  std::size_t chunk_count(int disk) const override {
    return inner_.chunk_count(disk);
  }

  std::uint64_t bytes_on_disk(int disk) const override {
    return inner_.bytes_on_disk(disk);
  }

  int num_disks() const override { return inner_.num_disks(); }

 private:
  ChunkStore& inner_;
  MarginalCache& cache_;
};

}  // namespace adr
