#include "storage/spatial_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace adr {

void GridIndex::build(const std::vector<Rect>& mbrs) {
  entries_ = mbrs;
  bounds_ = Rect();
  for (const Rect& r : mbrs) bounds_ = Rect::join(bounds_, r);
  cells_ = cells_hint_ > 0
               ? cells_hint_
               : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(
                                 std::max<std::size_t>(mbrs.size(), 1)))));
  buckets_.assign(static_cast<size_t>(cells_) * static_cast<size_t>(cells_), {});
  if (mbrs.empty() || bounds_.dims() < 2) return;
  for (std::uint32_t i = 0; i < mbrs.size(); ++i) {
    int x0, x1, y0, y1;
    cell_span(mbrs[i], x0, x1, y0, y1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        buckets_[static_cast<size_t>(y) * static_cast<size_t>(cells_) +
                 static_cast<size_t>(x)]
            .push_back(i);
      }
    }
  }
}

void GridIndex::cell_span(const Rect& r, int& x0, int& x1, int& y0, int& y1) const {
  auto clamp_cell = [this](double frac) {
    return std::clamp(static_cast<int>(frac * cells_), 0, cells_ - 1);
  };
  const double ex = std::max(bounds_.extent(0), 1e-300);
  const double ey = std::max(bounds_.extent(1), 1e-300);
  x0 = clamp_cell((r.lo()[0] - bounds_.lo()[0]) / ex);
  x1 = clamp_cell((r.hi()[0] - bounds_.lo()[0]) / ex);
  y0 = clamp_cell((r.lo()[1] - bounds_.lo()[1]) / ey);
  y1 = clamp_cell((r.hi()[1] - bounds_.lo()[1]) / ey);
}

std::vector<std::uint32_t> GridIndex::query(const Rect& range) const {
  std::vector<std::uint32_t> out;
  if (entries_.empty() || range.dims() != bounds_.dims()) return out;
  if (!range.intersects(bounds_)) return out;
  int x0, x1, y0, y1;
  cell_span(range, x0, x1, y0, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      for (std::uint32_t i :
           buckets_[static_cast<size_t>(y) * static_cast<size_t>(cells_) +
                    static_cast<size_t>(x)]) {
        if (entries_[i].intersects(range)) out.push_back(i);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

IndexRegistry::IndexRegistry() {
  register_index("rtree", []() { return std::make_unique<RTreeIndex>(); });
  register_index("grid", []() { return std::make_unique<GridIndex>(); });
}

void IndexRegistry::register_index(const std::string& name, Factory factory) {
  assert(factory != nullptr);
  factories_[name] = std::move(factory);
}

std::unique_ptr<SpatialIndex> IndexRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("IndexRegistry: unknown index '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> IndexRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace adr
