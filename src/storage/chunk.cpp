#include "storage/chunk.hpp"

#include <cstring>

namespace adr {

std::vector<std::byte> payload_from_doubles(const std::vector<double>& values) {
  std::vector<std::byte> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

}  // namespace adr
