// Dataset catalog (ADR's dataset service).
//
// A Dataset is the metadata for one stored multi-dimensional dataset: its
// attribute-space extent, the metadata of every chunk (MBR, size,
// placement), and the spatial index built over the chunk MBRs.  Payloads
// live in a ChunkStore; the Dataset only knows where they are.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "storage/chunk.hpp"
#include "storage/spatial_index.hpp"

namespace adr {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::uint32_t id, std::string name, Rect domain, std::vector<ChunkMeta> chunks);

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Rect& domain() const { return domain_; }

  std::size_t num_chunks() const { return chunks_.size(); }
  const std::vector<ChunkMeta>& chunks() const { return chunks_; }
  const ChunkMeta& chunk(std::uint32_t index) const {
    return chunks_[static_cast<std::size_t>(index)];
  }

  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Builds (or rebuilds) the default index (an R-tree) over chunk MBRs.
  void build_index();

  /// Builds with a caller-supplied index (the indexing service's
  /// "user-provided indices").
  void build_index(std::unique_ptr<SpatialIndex> index);

  bool has_index() const { return index_ != nullptr; }
  const SpatialIndex* index() const { return index_.get(); }

  /// Chunk indices whose MBR intersects `range`; requires build_index().
  std::vector<std::uint32_t> find_chunks(const Rect& range) const;

  /// Updates placement from a declustering assignment (global disk ids).
  void set_placement(const std::vector<int>& disk_of_chunk);

  /// Average chunk size in bytes (0 when empty).
  double mean_chunk_bytes() const;

 private:
  std::uint32_t id_ = 0;
  std::string name_;
  Rect domain_;
  std::vector<ChunkMeta> chunks_;
  std::uint64_t total_bytes_ = 0;
  std::unique_ptr<SpatialIndex> index_;
};

}  // namespace adr
