// Per-disk chunk stores (ADR's storage manager / disk farm).
//
// A ChunkStore addresses the whole farm by global disk index and provides
// the paper's storage contract: a chunk lives on exactly one disk, is read
// and written only through that disk, and is always moved as a whole.
// Two backends: an in-memory store (simulations, tests) and a file-backed
// store (one data file per disk plus an offset table, for runs whose
// payloads should survive the process).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/chunk.hpp"

namespace adr {

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  /// Stores `chunk` on the disk recorded in its metadata (meta().disk).
  virtual void put(Chunk chunk) = 0;

  /// Reads a chunk; returns nullopt if absent.
  virtual std::optional<Chunk> get(int disk, ChunkId id) const = 0;

  /// True if the chunk exists on the given disk.
  virtual bool contains(int disk, ChunkId id) const = 0;

  /// Removes a chunk; returns true if it existed.
  virtual bool erase(int disk, ChunkId id) = 0;

  /// Number of chunks resident on `disk`.
  virtual std::size_t chunk_count(int disk) const = 0;

  /// Total payload bytes resident on `disk`.
  virtual std::uint64_t bytes_on_disk(int disk) const = 0;

  virtual int num_disks() const = 0;
};

/// In-memory backend.  Thread-safe: the thread executor reads concurrently
/// from many node threads.
class MemoryChunkStore : public ChunkStore {
 public:
  explicit MemoryChunkStore(int num_disks);

  void put(Chunk chunk) override;
  std::optional<Chunk> get(int disk, ChunkId id) const override;
  bool contains(int disk, ChunkId id) const override;
  bool erase(int disk, ChunkId id) override;
  std::size_t chunk_count(int disk) const override;
  std::uint64_t bytes_on_disk(int disk) const override;
  int num_disks() const override { return static_cast<int>(disks_.size()); }

 private:
  struct Disk {
    std::unordered_map<ChunkId, Chunk, ChunkIdHash> chunks;
    std::uint64_t bytes = 0;
  };
  mutable std::mutex mutex_;
  std::vector<Disk> disks_;
};

/// File-backed backend: `<dir>/disk<k>.dat` holds payloads back to back;
/// an offset table locates them.  Metadata-only chunks (no payload) are
/// tracked in the table with zero stored bytes.  Every put/erase is also
/// appended to `<dir>/manifest.txt`, so a store can be reopened in a
/// later process with `open_existing = true` (the manifest is replayed
/// to rebuild the offset tables).
class FileChunkStore : public ChunkStore {
 public:
  FileChunkStore(std::filesystem::path dir, int num_disks,
                 bool open_existing = false);
  ~FileChunkStore() override;

  void put(Chunk chunk) override;
  std::optional<Chunk> get(int disk, ChunkId id) const override;
  bool contains(int disk, ChunkId id) const override;
  bool erase(int disk, ChunkId id) override;
  std::size_t chunk_count(int disk) const override;
  std::uint64_t bytes_on_disk(int disk) const override;
  int num_disks() const override { return static_cast<int>(disks_.size()); }

  const std::filesystem::path& directory() const { return dir_; }

 private:
  struct Entry {
    ChunkMeta meta;
    std::uint64_t offset = 0;
    std::uint64_t stored_bytes = 0;
  };
  struct Disk {
    std::filesystem::path path;
    std::map<ChunkId, Entry> entries;
    std::uint64_t file_size = 0;
    std::uint64_t live_bytes = 0;
  };

  void append_manifest(const std::string& line);
  void replay_manifest();

  mutable std::mutex mutex_;
  std::filesystem::path dir_;
  std::filesystem::path manifest_path_;
  std::vector<Disk> disks_;
};

}  // namespace adr
