#include "storage/marginal_cache.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace adr {
namespace {

// Process-wide cumulative series folding every marginal-cache instance
// (metric catalog: docs/observability.md, keying: docs/caching.md).
struct MarginalMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& publishes;
  obs::Counter& evictions;
  obs::Counter& invalidations;
  obs::Counter& bytes_saved;
  obs::Gauge& resident_bytes;
  obs::Gauge& resident_entries;
};

MarginalMetrics& marginal_metrics() {
  static MarginalMetrics m{
      obs::metrics().counter("cache.marginal.hits"),
      obs::metrics().counter("cache.marginal.misses"),
      obs::metrics().counter("cache.marginal.publishes"),
      obs::metrics().counter("cache.marginal.evictions"),
      obs::metrics().counter("cache.marginal.invalidations"),
      obs::metrics().counter("cache.marginal.bytes_saved"),
      obs::metrics().gauge("cache.marginal.resident_bytes"),
      obs::metrics().gauge("cache.marginal.resident_entries")};
  return m;
}

// splitmix64 finalizer: full-avalanche 64-bit permutation, the same
// primitive the fault registry's per-point streams use.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// Two lanes seeded with distinct constants; every mixed field perturbs
// both through independent permutations, so the lanes stay uncorrelated
// and the pair behaves as a 128-bit digest.
MarginalSignature::MarginalSignature()
    : hi_(0x243f6a8885a308d3ull),  // pi fractional bits
      lo_(0x13198a2e03707344ull) {}

void MarginalSignature::mix(std::uint64_t value) {
  hi_ = mix64(hi_ ^ value);
  lo_ = mix64(lo_ + (value ^ 0xa5a5a5a5a5a5a5a5ull));
}

void MarginalSignature::mix(std::string_view text) {
  // Length first so "ab"+"c" and "a"+"bc" digest differently.
  mix(static_cast<std::uint64_t>(text.size()));
  std::uint64_t word = 0;
  int filled = 0;
  for (unsigned char c : text) {
    word = (word << 8) | c;
    if (++filled == 8) {
      mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) mix(word);
}

MarginalCache::MarginalCache(std::uint64_t byte_budget, int num_shards)
    : byte_budget_(byte_budget) {
  if (num_shards < 1) num_shards = 1;
  bytes_per_shard_ = std::max<std::uint64_t>(
      byte_budget_ / static_cast<std::uint64_t>(num_shards), kEntryOverheadBytes);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MarginalCache::~MarginalCache() {
  // Residency gauges are process-wide; give back what this instance
  // still holds so a destroyed repository doesn't leak phantom bytes.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    marginal_metrics().resident_bytes.add(-static_cast<std::int64_t>(shard->bytes));
    marginal_metrics().resident_entries.add(
        -static_cast<std::int64_t>(shard->entries.size()));
  }
}

void MarginalCache::remove_locked(Shard& shard, const MarginalKey& key) const {
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.bytes -= it->second.charged_bytes;
  marginal_metrics().resident_bytes.add(
      -static_cast<std::int64_t>(it->second.charged_bytes));
  marginal_metrics().resident_entries.add(-1);
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

std::optional<std::vector<std::byte>> MarginalCache::lookup(const MarginalKey& key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    marginal_metrics().misses.add();
    return std::nullopt;
  }
  ++shard.hits;
  marginal_metrics().hits.add();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.partial;
}

void MarginalCache::publish(const MarginalKey& key, std::vector<std::byte> partial) {
  const std::uint64_t cost =
      static_cast<std::uint64_t>(partial.size()) + kEntryOverheadBytes;
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  remove_locked(shard, key);            // refresh: drop any stale copy
  if (cost > bytes_per_shard_) return;  // larger than the shard budget
  while (shard.bytes + cost > bytes_per_shard_) {
    assert(!shard.lru.empty());
    remove_locked(shard, shard.lru.back());
    ++shard.evictions;
    marginal_metrics().evictions.add();
  }
  shard.lru.push_front(key);
  Entry entry{std::move(partial), shard.lru.begin(), cost};
  shard.bytes += cost;
  shard.entries.emplace(key, std::move(entry));
  ++shard.publishes;
  marginal_metrics().publishes.add();
  marginal_metrics().resident_bytes.add(static_cast<std::int64_t>(cost));
  marginal_metrics().resident_entries.add(1);
}

MarginalVersions MarginalCache::versions(std::uint32_t dataset_id) const {
  std::lock_guard<std::mutex> lock(version_mutex_);
  auto it = versions_.find(dataset_id);
  return it == versions_.end() ? MarginalVersions{} : it->second;
}

void MarginalCache::invalidate_data(std::uint32_t dataset_id) {
  std::lock_guard<std::mutex> lock(version_mutex_);
  ++versions_[dataset_id].data;
  ++invalidations_;
  marginal_metrics().invalidations.add();
}

void MarginalCache::invalidate_dataset(std::uint32_t dataset_id) {
  std::lock_guard<std::mutex> lock(version_mutex_);
  MarginalVersions& v = versions_[dataset_id];
  ++v.data;
  ++v.shape;
  ++invalidations_;
  marginal_metrics().invalidations.add();
}

void MarginalCache::note_bytes_saved(std::uint64_t bytes) {
  if (bytes == 0) return;
  marginal_metrics().bytes_saved.add(bytes);
  std::lock_guard<std::mutex> lock(version_mutex_);
  bytes_saved_ += bytes;
}

MarginalCacheStats MarginalCache::stats() const {
  MarginalCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.publishes += shard->publishes;
    total.evictions += shard->evictions;
    total.resident_bytes += shard->bytes;
    total.resident_entries += shard->entries.size();
  }
  std::lock_guard<std::mutex> lock(version_mutex_);
  total.invalidations = invalidations_;
  total.bytes_saved = bytes_saved_;
  return total;
}

void MarginalCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    marginal_metrics().resident_bytes.add(-static_cast<std::int64_t>(shard->bytes));
    marginal_metrics().resident_entries.add(
        -static_cast<std::int64_t>(shard->entries.size()));
    shard->lru.clear();
    shard->entries.clear();
    shard->bytes = 0;
  }
}

}  // namespace adr
