// Indexing service: pluggable spatial indices over chunk MBRs.
//
// "Indexing service manages various indices (default and user-provided)
// for the datasets stored in the ADR back-end.  An index returns the disk
// locations of the set of data chunks that contain data items that fall
// inside the given multi-dimensional range query." (paper section 2.1)
//
// SpatialIndex is the user-extension point; RTreeIndex (default) wraps
// the STR-bulk-loaded R-tree and GridIndex is a uniform-grid alternative
// that wins on dense regular layouts.  IndexRegistry maps index names to
// factories so applications can register their own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "storage/rtree.hpp"

namespace adr {

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual std::string name() const = 0;

  /// (Re)builds the index; entry `i` of `mbrs` gets value `i`.
  virtual void build(const std::vector<Rect>& mbrs) = 0;

  /// Values of all entries intersecting `range`, ascending.
  virtual std::vector<std::uint32_t> query(const Rect& range) const = 0;

  virtual std::size_t size() const = 0;
};

/// Default index: the R-tree (STR bulk load).
class RTreeIndex : public SpatialIndex {
 public:
  explicit RTreeIndex(int max_entries = 16) : tree_(max_entries) {}
  std::string name() const override { return "rtree"; }
  void build(const std::vector<Rect>& mbrs) override { tree_.bulk_load(mbrs); }
  std::vector<std::uint32_t> query(const Rect& range) const override {
    return tree_.query(range);
  }
  std::size_t size() const override { return tree_.size(); }
  const RTree& tree() const { return tree_; }

 private:
  RTree tree_;
};

/// Uniform-grid index: the domain bounding box is cut into roughly
/// sqrt(n) x sqrt(n) cells (2-D; higher dims use the first two); each
/// cell lists the entries overlapping it.  Cheap to build and fast on
/// regular dense layouts; degrades when MBRs are wildly non-uniform.
class GridIndex : public SpatialIndex {
 public:
  /// cells_hint <= 0 picks ~sqrt(n) cells per side automatically.
  explicit GridIndex(int cells_hint = 0) : cells_hint_(cells_hint) {}
  std::string name() const override { return "grid"; }
  void build(const std::vector<Rect>& mbrs) override;
  std::vector<std::uint32_t> query(const Rect& range) const override;
  std::size_t size() const override { return entries_.size(); }
  int cells_per_side() const { return cells_; }

 private:
  void cell_span(const Rect& r, int& x0, int& x1, int& y0, int& y1) const;

  int cells_hint_;
  int cells_ = 1;
  Rect bounds_;
  std::vector<Rect> entries_;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

/// Registry of named index factories; "rtree" and "grid" are built in.
class IndexRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SpatialIndex>()>;

  IndexRegistry();

  void register_index(const std::string& name, Factory factory);

  /// Creates an index; throws std::invalid_argument for unknown names.
  std::unique_ptr<SpatialIndex> create(const std::string& name) const;

  bool contains(const std::string& name) const { return factories_.contains(name); }
  std::vector<std::string> names() const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace adr
