#include "storage/decluster.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/hilbert.hpp"
#include "common/random.hpp"

namespace adr {

std::string to_string(DeclusterMethod m) {
  switch (m) {
    case DeclusterMethod::kHilbert:
      return "hilbert";
    case DeclusterMethod::kRoundRobin:
      return "round-robin";
    case DeclusterMethod::kRandom:
      return "random";
  }
  return "?";
}

std::vector<int> decluster(const std::vector<ChunkMeta>& chunks, const Rect& domain,
                           const DeclusterOptions& options) {
  assert(options.num_disks >= 1);
  std::vector<int> assignment(chunks.size(), 0);
  switch (options.method) {
    case DeclusterMethod::kRoundRobin: {
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        assignment[i] = static_cast<int>(i % static_cast<std::size_t>(options.num_disks));
      }
      break;
    }
    case DeclusterMethod::kRandom: {
      Rng rng(options.seed);
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        assignment[i] = static_cast<int>(rng.uniform_int(0, options.num_disks - 1));
      }
      break;
    }
    case DeclusterMethod::kHilbert: {
      // Order chunks along the Hilbert curve through their MBR midpoints,
      // then deal to disks round-robin in that order.
      std::vector<std::size_t> order(chunks.size());
      std::iota(order.begin(), order.end(), 0u);
      std::vector<std::uint64_t> keys(chunks.size());
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        keys[i] = hilbert_index_in_domain(chunks[i].mbr.center(), domain,
                                          options.hilbert_bits);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&keys](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        assignment[order[pos]] =
            static_cast<int>(pos % static_cast<std::size_t>(options.num_disks));
      }
      break;
    }
  }
  return assignment;
}

double decluster_quality(const std::vector<ChunkMeta>& chunks,
                         const std::vector<int>& assignment, const Rect& domain,
                         int num_disks, double query_extent_fraction, int probes,
                         std::uint64_t seed) {
  assert(chunks.size() == assignment.size());
  assert(num_disks >= 1);
  Rng rng(seed);
  const int d = domain.dims();
  double total_ratio = 0.0;
  int counted = 0;
  for (int probe = 0; probe < probes; ++probe) {
    Point lo(d), hi(d);
    for (int i = 0; i < d; ++i) {
      const double ext = domain.extent(i) * query_extent_fraction;
      const double start =
          rng.uniform(domain.lo()[i], std::max(domain.lo()[i], domain.hi()[i] - ext));
      lo[i] = start;
      hi[i] = start + ext;
    }
    const Rect q(lo, hi);
    std::vector<int> per_disk(static_cast<std::size_t>(num_disks), 0);
    int selected = 0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (chunks[c].mbr.intersects(q)) {
        ++per_disk[static_cast<std::size_t>(assignment[c])];
        ++selected;
      }
    }
    if (selected == 0) continue;
    const int max_per_disk = *std::max_element(per_disk.begin(), per_disk.end());
    const double ideal =
        static_cast<double>(selected) / static_cast<double>(num_disks);
    total_ratio += static_cast<double>(max_per_disk) / std::max(ideal, 1.0);
    ++counted;
  }
  return counted > 0 ? total_ratio / counted : 0.0;
}

}  // namespace adr
