#include "runtime/sim_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace adr {

SimExecutor::SimExecutor(sim::SimCluster* cluster, ChunkStore* store)
    : cluster_(cluster), store_(store) {
  assert(cluster_ != nullptr);
  if (store_ != nullptr && store_->num_disks() != cluster_->config().total_disks()) {
    throw std::invalid_argument("SimExecutor: store disk count != cluster disk count");
  }
  caches_.resize(static_cast<size_t>(cluster_->num_nodes()));
}

int SimExecutor::num_nodes() const { return cluster_->num_nodes(); }

void SimExecutor::post(int node, Task task) {
  (void)node;  // single-threaded simulation: node context is implicit
  cluster_->sim().schedule(0, std::move(task));
}

bool SimExecutor::cache_lookup(int node, std::uint64_t key) {
  if (cluster_->config().disk_cache_bytes == 0) return false;
  NodeCache& cache = caches_[static_cast<size_t>(node)];
  auto it = cache.index.find(key);
  if (it == cache.index.end()) return false;
  cache.lru.splice(cache.lru.begin(), cache.lru, it->second);  // touch
  return true;
}

void SimExecutor::cache_insert(int node, std::uint64_t key, std::uint64_t bytes) {
  const std::uint64_t capacity = cluster_->config().disk_cache_bytes;
  if (capacity == 0 || bytes > capacity) return;
  NodeCache& cache = caches_[static_cast<size_t>(node)];
  auto it = cache.index.find(key);
  if (it != cache.index.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return;
  }
  while (cache.resident + bytes > capacity && !cache.lru.empty()) {
    const NodeCache::Entry& victim = cache.lru.back();
    cache.resident -= victim.bytes;
    cache.index.erase(victim.key);
    cache.lru.pop_back();
  }
  cache.lru.push_front(NodeCache::Entry{key, bytes});
  cache.index[key] = cache.lru.begin();
  cache.resident += bytes;
}

void SimExecutor::read(int node, int global_disk, ChunkId id, std::uint64_t bytes,
                       ReadCallback done) {
  assert(cluster_->node_of_disk(global_disk) == node);
  ChunkStore* store = store_;
  auto deliver = [store, global_disk, id, done = std::move(done)]() {
    if (store != nullptr) {
      done(store->get(global_disk, id));
    } else {
      done(std::nullopt);
    }
  };

  const std::uint64_t key = cache_key(global_disk, id);
  if (cache_lookup(node, key)) {
    ++cache_hits_;
    // Buffer-cache hit: a memory copy instead of a disk access.
    cluster_->sim().schedule(sim::from_micros(50.0), std::move(deliver));
    return;
  }
  ++cache_misses_;
  sim::DiskModel& disk = cluster_->node(node).disk(cluster_->local_disk(global_disk));
  disk.read(bytes, [this, node, key, bytes, deliver = std::move(deliver)]() mutable {
    cache_insert(node, key, bytes);
    deliver();
  });
}

void SimExecutor::write(int node, int global_disk, Chunk chunk, Task done) {
  assert(cluster_->node_of_disk(global_disk) == node);
  sim::DiskModel& disk = cluster_->node(node).disk(cluster_->local_disk(global_disk));
  const std::uint64_t bytes = chunk.meta().bytes;
  // Write-through: the written chunk is warm in the buffer cache.
  cache_insert(node, cache_key(global_disk, chunk.meta().id), bytes);
  ChunkStore* store = store_;
  disk.write(bytes, [store, chunk = std::move(chunk), done = std::move(done)]() mutable {
    if (store != nullptr) store->put(std::move(chunk));
    done();
  });
}

void SimExecutor::send(Message msg) {
  assert(handler_ != nullptr);
  assert(msg.src >= 0 && msg.src < num_nodes());
  assert(msg.dst >= 0 && msg.dst < num_nodes());
  if (msg.src == msg.dst) {
    // Local delivery costs no network time.
    cluster_->sim().schedule(0, [this, msg = std::move(msg)]() { handler_(msg); });
    return;
  }
  sim::NicModel& src_nic = cluster_->node(msg.src).nic();
  sim::NicModel& dst_nic = cluster_->node(msg.dst).nic();
  src_nic.send(dst_nic, msg.bytes, [this, msg = std::move(msg)]() { handler_(msg); });
}

void SimExecutor::set_message_handler(MessageHandler handler) {
  handler_ = std::move(handler);
}

void SimExecutor::compute(int node, double cost_seconds, Task done) {
  assert(cost_seconds >= 0.0);
  const double speed = cluster_->config().cpu_speed;
  const sim::SimDuration d = sim::from_seconds(cost_seconds / speed);
  cluster_->node(node).cpu().acquire(d, std::move(done));
}

void SimExecutor::barrier(int node, Task done) {
  (void)node;
  barrier_waiters_.push_back(std::move(done));
  if (static_cast<int>(barrier_waiters_.size()) == num_nodes()) {
    std::vector<Task> ready = std::move(barrier_waiters_);
    barrier_waiters_.clear();
    for (Task& t : ready) cluster_->sim().schedule(0, std::move(t));
  }
}

void SimExecutor::window_sync(int node, int epoch, int lag, Task done) {
  if (epoch_completed_.empty()) epoch_completed_.assign(static_cast<size_t>(num_nodes()), -1);
  epoch_completed_[static_cast<size_t>(node)] =
      std::max(epoch_completed_[static_cast<size_t>(node)], epoch);
  window_waiters_.push_back(WindowWaiter{epoch, lag, std::move(done)});
  const int min_done = *std::min_element(epoch_completed_.begin(), epoch_completed_.end());
  std::vector<Task> ready;
  std::erase_if(window_waiters_, [min_done, &ready](WindowWaiter& w) {
    if (w.epoch - w.lag <= min_done) {
      ready.push_back(std::move(w.task));
      return true;
    }
    return false;
  });
  for (Task& t : ready) cluster_->sim().schedule(0, std::move(t));
}

void SimExecutor::finish(int node) {
  (void)node;
  ++finished_;
}

double SimExecutor::run(std::function<void(int)> entry) {
  finished_ = 0;
  epoch_completed_.clear();
  const sim::SimTime start = cluster_->sim().now();
  for (int n = 0; n < num_nodes(); ++n) {
    cluster_->sim().schedule(0, [entry, n]() { entry(n); });
  }
  cluster_->sim().run();
  if (finished_ != num_nodes()) {
    throw std::logic_error("SimExecutor: simulation drained with " +
                           std::to_string(num_nodes() - finished_) +
                           " node(s) unfinished (engine deadlock)");
  }
  return sim::to_seconds(cluster_->sim().now() - start);
}

double SimExecutor::now_seconds() const { return sim::to_seconds(cluster_->sim().now()); }

}  // namespace adr
