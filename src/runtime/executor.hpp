// The execution substrate interface.
//
// ADR's query execution service is an event-driven state machine: it
// issues asynchronous disk reads, message sends and computations, and
// reacts to their completions (paper section 2.4).  The engine is written
// once against this interface and runs unchanged on two substrates:
//
//  * SimExecutor   - discrete-event simulation of the modelled cluster;
//                    completions fire in virtual time, costs come from the
//                    hardware models.  Used for the paper-scale
//                    (8..128 node) experiments.
//  * ThreadExecutor- one real thread per node with real chunk payloads;
//                    completions fire in wall time.  Used for correctness
//                    validation and the runnable examples.
//
// Concurrency contract: all callbacks for node n are serialized in node
// n's context; distinct nodes may run concurrently (thread executor).  A
// node must not touch another node's state except by send().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "runtime/message.hpp"
#include "storage/chunk.hpp"

namespace adr {

class Executor {
 public:
  using Task = std::function<void()>;
  using ReadCallback = std::function<void(std::optional<Chunk>)>;
  using MessageHandler = std::function<void(const Message&)>;

  virtual ~Executor() = default;

  virtual int num_nodes() const = 0;

  /// Schedules `task` to run in node `node`'s context as soon as possible.
  virtual void post(int node, Task task) = 0;

  /// Asynchronously reads a chunk from a *local* disk of `node`
  /// (`global_disk` must belong to `node`).  `bytes` is the transfer size
  /// used for cost modelling.  The callback receives the stored chunk, or
  /// nullopt when running without a chunk store (metadata-only runs).
  virtual void read(int node, int global_disk, ChunkId id, std::uint64_t bytes,
                    ReadCallback done) = 0;

  /// Asynchronously writes a chunk to a local disk of `node`.
  virtual void write(int node, int global_disk, Chunk chunk, Task done) = 0;

  /// Sends a message; it is delivered by invoking the registered handler
  /// in the destination node's context.  Fire-and-forget: ordering between
  /// different (src,dst) pairs is unspecified; per-pair order preserved.
  virtual void send(Message msg) = 0;

  /// Registers the handler invoked on message delivery (shared by all
  /// nodes; the handler dispatches on msg.dst).  Must be set before any
  /// send.
  virtual void set_message_handler(MessageHandler handler) = 0;

  /// Performs `cost_seconds` of computation on `node`'s CPU, then invokes
  /// `done` (which performs the real data work on the thread executor).
  virtual void compute(int node, double cost_seconds, Task done) = 0;

  /// Global barrier: `done` fires in `node`'s context once every node has
  /// entered the barrier.  Nodes must all use barriers in the same order.
  virtual void barrier(int node, Task done) = 0;

  /// Sliding-window synchronization for tile-pipelined execution: the
  /// caller reports completion of `epoch` (tiles are epochs 0,1,...);
  /// `done` fires once every node has completed epoch `epoch - lag` (so
  /// with lag 1, a node may run one tile ahead of the slowest node).
  /// Epochs must be reported in increasing order per node.
  virtual void window_sync(int node, int epoch, int lag, Task done) = 0;

  /// Marks `node` as finished; run() returns after every node finishes.
  virtual void finish(int node) = 0;

  /// Runs `entry(node)` on every node and drives execution until all
  /// nodes have called finish().  Returns elapsed time in seconds
  /// (virtual time on the sim executor, wall time on threads).
  virtual double run(std::function<void(int)> entry) = 0;

  /// Current time in seconds on the executor's clock.
  virtual double now_seconds() const = 0;

  /// CPU seconds the backend's worker threads spent inside the most
  /// recent run() (the cost ledger's thread-CPU attribution).  0 when
  /// the backend has no real threads (the simulator) or the platform
  /// cannot read per-thread CPU clocks.
  virtual double last_run_cpu_seconds() const { return 0.0; }
};

}  // namespace adr
