// Persistent pool of warm ThreadExecutors.
//
// The seed built a fresh ThreadExecutor per submit — spawning and joining
// num_nodes OS threads per query.  ADR is a long-lived service: queries
// arrive continuously, so the node-thread pools should persist.  This
// pool hands out exclusive leases on warm executors:
//
//   * acquire() returns an idle warm executor when one exists, otherwise
//     constructs a new one.  It NEVER blocks — concurrency is whatever
//     the callers ask for, exactly as with per-query executors, so a
//     query stalled inside the engine (e.g. a blocking aggregation)
//     cannot deadlock unrelated queries.
//   * A released executor is kept warm while at most `max_resident`
//     are idle; beyond that it is destroyed (threads joined).  Steady
//     traffic therefore converges on a small set of long-lived pools.
//
// A lease is exclusive: two queries never interleave one executor's
// barriers or sliding-window epochs.  Thread safety: acquire/release/
// stats are internally locked; the leased executor itself is used by one
// query at a time.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/thread_executor.hpp"

namespace adr {

class ThreadExecutorPool {
 public:
  struct Stats {
    /// Executors constructed so far (each construction spawns threads).
    std::uint64_t created = 0;
    /// Total acquire() calls.
    std::uint64_t leases = 0;
    /// acquire() calls served by a warm executor (no thread spawn).
    std::uint64_t reuses = 0;
    /// Warm executors currently idle in the pool.
    std::size_t resident = 0;
    /// Current cap on idle executors (moved by set_max_resident()).
    std::size_t max_resident = 0;
  };

  /// Executors are built as ThreadExecutor(num_nodes, disks_per_node,
  /// store); `store` may be null (metadata-only) and must outlive the
  /// pool.  `max_resident` >= 1.
  ThreadExecutorPool(int num_nodes, int disks_per_node, ChunkStore* store,
                     std::size_t max_resident);
  ~ThreadExecutorPool();

  ThreadExecutorPool(const ThreadExecutorPool&) = delete;
  ThreadExecutorPool& operator=(const ThreadExecutorPool&) = delete;

  /// RAII lease: returns the executor to the pool on destruction.
  class Lease {
   public:
    Lease(ThreadExecutorPool* pool, std::unique_ptr<ThreadExecutor> executor)
        : pool_(pool), executor_(std::move(executor)) {}
    ~Lease() {
      if (executor_ != nullptr) pool_->release(std::move(executor_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ThreadExecutor& operator*() { return *executor_; }
    ThreadExecutor* operator->() { return executor_.get(); }

   private:
    ThreadExecutorPool* pool_;
    std::unique_ptr<ThreadExecutor> executor_;
  };

  /// Never blocks: reuses a warm executor or constructs a fresh one.
  Lease acquire();

  /// Moves the resident cap (clamped to >= 1).  Shrinking destroys the
  /// now-excess idle executors (threads joined, outside the pool lock);
  /// growing takes effect as executors are released back.  The adaptive
  /// controller's scale actuator.
  void set_max_resident(std::size_t max_resident);
  std::size_t max_resident() const;

  /// Constructs idle executors up to min(n, max_resident) so a scale-up
  /// decision pays the thread-spawn cost here, off the query path.
  void prewarm(std::size_t n);

  Stats stats() const;

 private:
  friend class Lease;
  void release(std::unique_ptr<ThreadExecutor> executor);

  const int num_nodes_;
  const int disks_per_node_;
  ChunkStore* const store_;

  mutable std::mutex mutex_;
  /// Idle cap; dynamic since the adaptive controller (guarded by mutex_).
  std::size_t max_resident_;
  std::vector<std::unique_ptr<ThreadExecutor>> idle_;
  std::uint64_t created_ = 0;
  std::uint64_t leases_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace adr
