// Inter-node messages.
//
// ADR nodes exchange three kinds of chunk-granular messages during query
// execution (paper sections 2.4 and 3): replicated accumulator chunks in
// the initialization phase, forwarded input chunks in the local reduction
// phase (DA strategy), and ghost accumulator chunks in the global combine
// phase (FRA/SRA).  `bytes` is the wire size used for network modelling;
// `payload` carries real data on the thread executor.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/chunk.hpp"

namespace adr {

enum class MsgTag : std::uint8_t {
  kGhostInit = 0,     // initialization: owner -> ghost holders
  kInputForward = 1,  // local reduction: input chunk -> accumulator owner (DA)
  kGhostCombine = 2,  // global combine: ghost holder -> owner (FRA/SRA)
  kUser = 16,         // first tag available to applications
};

struct Message {
  int src = -1;
  int dst = -1;
  MsgTag tag = MsgTag::kUser;
  /// Wire size in bytes (payload size + header); drives the network model.
  std::uint64_t bytes = 0;
  /// Which chunk this message is about.
  ChunkId chunk;
  /// Engine-defined extra word (chunk position within the query).
  std::uint32_t aux = 0;
  /// Tile the message belongs to (pipelined execution lets a sender run
  /// one tile ahead of a receiver; the receiver defers such messages).
  std::uint32_t tile = 0;
  /// Real data, when running with payloads.  Shared so fan-out sends of
  /// the same chunk do not copy it per destination.
  std::shared_ptr<const std::vector<std::byte>> payload;
};

/// Fixed per-message header overhead added to payload size on the wire.
inline constexpr std::uint64_t kMessageHeaderBytes = 64;

}  // namespace adr
