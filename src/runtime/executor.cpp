#include "runtime/executor.hpp"

// Executor is an interface; this TU anchors its vtable-adjacent pieces.
