// Adaptive runtime controller: closes the loop from the telemetry
// sampler's time series back onto the runtime's dynamic knobs.
//
// The serving tier's two throughput knobs were static at construction:
// the executor pool's resident cap (warm node-thread executors kept
// between submits) and the submission service's gang-formation window.
// The paper's runtime wins come from keeping disk, network and compute
// saturated *without* overcommitting — which depends on offered load,
// so the right values change minute to minute.  AdaptiveController is a
// small feedback controller that reads the sampler ring (obs/sampler.hpp)
// each tick and actuates:
//
//   * resident executors, inside a [min_resident, max_resident] band:
//     scale up on sustained scheduler queue depth or queue-wait
//     accumulation, decay back down when the queue is idle.  Streak
//     counters (scale_up_ticks / scale_down_ticks consecutive
//     observations) provide hysteresis so a noisy signal cannot flap
//     the band.
//   * the gang-formation window: opened only when the arrival rate says
//     near-simultaneous overlapping queries are likely (batching wins),
//     closed again under light load — and closed early when the batch.*
//     series show gangs are forming but not actually sharing (mean gang
//     size ~ 1) — so idle-period latency is never taxed by the wait.
//
// Decisions are a pure function of (signals, internal streak state):
// step() takes an explicit AdaptiveSignals and returns the decision, so
// tests drive the controller over synthetic time series without a
// sampler, a clock, or a running pool.  The background thread is a thin
// shell: extract signals from the two newest ring samples, step, apply
// through the injected actuators.
//
// Metrics: adaptive.ticks/scale_ups/scale_downs/window_opens/
// window_closes counters and adaptive.resident_target /
// adaptive.gang_window_us gauges (catalog: docs/observability.md).
// Policy walkthrough: docs/scheduling.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/sampler.hpp"

namespace adr {

/// Controller tuning.  Defaults are deliberately conservative: a burst
/// must persist for scale_up_ticks sampler intervals before the band
/// moves, and decay takes scale_down_ticks idle intervals.
struct AdaptiveOptions {
  /// Master switch (RuntimeConfig carries this struct; a disabled
  /// controller is never constructed).
  bool enabled = false;

  /// Resident-executor band the controller moves within.
  std::size_t min_resident = 1;
  std::size_t max_resident = 8;
  /// Scale up when queue depth >= depth_high_per_executor * resident
  /// target; eligible to decay when depth <= depth_low_per_executor *
  /// resident target and the executors are not all busy.
  double depth_high_per_executor = 2.0;
  double depth_low_per_executor = 0.5;
  /// Secondary pressure signal: queue-wait seconds accumulated per
  /// second of wall time (delta of the scheduler.queue_wait_s sum).
  /// Above wait_high the queue is hurting even if depth looks modest;
  /// below wait_low it corroborates idleness.
  double wait_high_s_per_s = 0.5;
  double wait_low_s_per_s = 0.05;
  /// Hysteresis: consecutive pressured / idle ticks required before the
  /// resident target moves one step.
  int scale_up_ticks = 2;
  int scale_down_ticks = 5;

  /// Gang window control: open at sustained arrival >= gang_open_qps,
  /// close at arrival <= gang_close_qps (close <= open for hysteresis).
  double gang_open_qps = 32.0;
  double gang_close_qps = 8.0;
  /// With the window open, a mean formed-gang size below this means
  /// batching is not paying for the wait — counts toward closing.
  double min_mean_gang = 1.2;
  /// The window handed to the submission service while open.
  std::chrono::microseconds gang_window{2000};

  /// Background thread poll period (decisions still advance at the
  /// sampler's cadence — a tick without a new ring sample is a no-op).
  std::chrono::milliseconds tick{200};
  /// Construct executors up to the new target on scale-up instead of
  /// waiting for demand to pay the thread-spawn latency.
  bool prewarm = true;
};

/// One tick's input, extracted from two adjacent sampler ring samples
/// (or synthesized directly in tests).
struct AdaptiveSignals {
  /// Interval between the two samples; <= 0 invalidates the rates.
  double interval_s = 1.0;
  /// scheduler.queue_depth / scheduler.in_flight gauges (newest sample).
  double queue_depth = 0.0;
  double in_flight = 0.0;
  /// scheduler.enqueued rate over the interval (accepted arrivals/s).
  double arrival_qps = 0.0;
  /// scheduler.completed rate over the interval.
  double completion_qps = 0.0;
  /// scheduler.queue_wait_s histogram *sum* delta per second: seconds of
  /// queue wait accumulated per second of wall time.
  double queue_wait_s_per_s = 0.0;
  /// batch.gangs / batch.members rates (the overlap signal).
  double gangs_per_s = 0.0;
  double gang_members_per_s = 0.0;
};

/// What one step decided.  resident/gang_window are the *current*
/// targets (post-decision); the booleans flag this step's transitions.
struct AdaptiveDecision {
  std::size_t resident = 0;
  std::chrono::microseconds gang_window{0};
  bool scaled_up = false;
  bool scaled_down = false;
  bool window_opened = false;
  bool window_closed = false;
};

class AdaptiveController {
 public:
  /// How decisions reach the runtime.  Injected so the controller never
  /// holds pool/scheduler locks itself (and so tests can record calls).
  struct Actuators {
    /// Apply a new resident-executor target (band already enforced).
    std::function<void(std::size_t)> set_resident;
    /// Apply a new gang-formation window (0 = closed).
    std::function<void(std::chrono::microseconds)> set_gang_window;
  };

  AdaptiveController(const AdaptiveOptions& options, Actuators actuators);
  ~AdaptiveController();

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  /// Applies the initial targets (min_resident, window closed) and
  /// spawns the tick thread.  No-op when already started.
  void start();
  /// Joins the tick thread.  Safe to call repeatedly / without start().
  void stop();

  /// One pure control step over explicit signals: updates streak state,
  /// moves the targets, returns the decision.  Does NOT actuate — the
  /// tick loop (or a test) applies the result.  Thread-safe.
  AdaptiveDecision step(const AdaptiveSignals& signals);

  /// One poll of the sampler ring: if a new sample landed since the
  /// last poll, extract signals, step, and actuate.  Returns true when
  /// a step ran.  Called by the tick thread; exposed for deterministic
  /// tests and benches driving obs::sampler().sample_now() themselves.
  bool tick_now();

  /// Extracts one tick's signals from two adjacent ring samples
  /// (reset-aware rates; see obs/exposition.hpp).
  static AdaptiveSignals signals_from(const obs::TelemetrySample& prev,
                                      const obs::TelemetrySample& cur);

  /// Current targets (what the last step decided).
  std::size_t resident() const;
  std::chrono::microseconds gang_window() const;

  const AdaptiveOptions& options() const { return options_; }

 private:
  void thread_main();
  void apply(const AdaptiveDecision& d);

  const AdaptiveOptions options_;
  const Actuators actuators_;

  mutable std::mutex mutex_;
  std::size_t resident_ = 1;
  bool window_open_ = false;
  int up_streak_ = 0;
  int down_streak_ = 0;
  int open_streak_ = 0;
  int close_streak_ = 0;
  /// mono_ms of the newest ring sample already consumed by tick_now().
  std::uint64_t last_sample_mono_ms_ = 0;

  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;
  bool thread_running_ = false;
  std::thread thread_;
};

}  // namespace adr
