#include "runtime/adaptive/controller.hpp"

#include <algorithm>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace adr {

namespace {

/// adaptive.* instruments, resolved once (registry lookups are mutexed).
struct AdaptiveMetrics {
  obs::Counter& ticks;
  obs::Counter& scale_ups;
  obs::Counter& scale_downs;
  obs::Counter& window_opens;
  obs::Counter& window_closes;
  obs::Gauge& resident_target;
  obs::Gauge& gang_window_us;
};

AdaptiveMetrics& adaptive_metrics() {
  static AdaptiveMetrics m{obs::metrics().counter("adaptive.ticks"),
                           obs::metrics().counter("adaptive.scale_ups"),
                           obs::metrics().counter("adaptive.scale_downs"),
                           obs::metrics().counter("adaptive.window_opens"),
                           obs::metrics().counter("adaptive.window_closes"),
                           obs::metrics().gauge("adaptive.resident_target"),
                           obs::metrics().gauge("adaptive.gang_window_us")};
  return m;
}

double counter_rate_for(const obs::TelemetrySample& prev,
                        const obs::TelemetrySample& cur,
                        const std::string& name, double dt_s) {
  const std::uint64_t* p = prev.snapshot.counter(name);
  const std::uint64_t* c = cur.snapshot.counter(name);
  if (p == nullptr || c == nullptr) return 0.0;
  return obs::counter_rate(*p, *c, dt_s);
}

}  // namespace

AdaptiveController::AdaptiveController(const AdaptiveOptions& options,
                                       Actuators actuators)
    : options_(options), actuators_(std::move(actuators)) {
  resident_ = std::clamp<std::size_t>(options_.min_resident, 1,
                                      std::max<std::size_t>(options_.max_resident, 1));
}

AdaptiveController::~AdaptiveController() { stop(); }

void AdaptiveController::start() {
  {
    std::lock_guard<std::mutex> lk(thread_mutex_);
    if (thread_running_) return;
    thread_running_ = true;
  }
  // Establish the starting point before any load arrives: band floor,
  // window closed.
  AdaptiveDecision d;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    d.resident = resident_;
    d.gang_window = window_open_ ? options_.gang_window
                                 : std::chrono::microseconds{0};
  }
  apply(d);
  thread_ = std::thread([this] { thread_main(); });
}

void AdaptiveController::stop() {
  {
    std::lock_guard<std::mutex> lk(thread_mutex_);
    if (!thread_running_) return;
    thread_running_ = false;
  }
  thread_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

AdaptiveDecision AdaptiveController::step(const AdaptiveSignals& signals) {
  std::lock_guard<std::mutex> lk(mutex_);
  AdaptiveDecision d;
  const auto lo = std::max<std::size_t>(options_.min_resident, 1);
  const auto hi = std::max<std::size_t>(options_.max_resident, lo);
  resident_ = std::clamp(resident_, lo, hi);

  // --- Resident-executor band -------------------------------------------
  const double r = static_cast<double>(resident_);
  const bool pressured =
      signals.queue_depth >= options_.depth_high_per_executor * r ||
      signals.queue_wait_s_per_s >= options_.wait_high_s_per_s;
  const bool idle =
      signals.queue_depth <= options_.depth_low_per_executor * r &&
      signals.in_flight < r &&
      signals.queue_wait_s_per_s <= options_.wait_low_s_per_s;

  if (pressured) {
    ++up_streak_;
    down_streak_ = 0;
  } else if (idle) {
    ++down_streak_;
    up_streak_ = 0;
  } else {
    // In the dead zone between the thresholds neither streak grows —
    // that's the hysteresis band keeping a borderline load from flapping.
    up_streak_ = 0;
    down_streak_ = 0;
  }

  if (up_streak_ >= options_.scale_up_ticks && resident_ < hi) {
    ++resident_;
    up_streak_ = 0;
    d.scaled_up = true;
  } else if (down_streak_ >= options_.scale_down_ticks && resident_ > lo) {
    --resident_;
    down_streak_ = 0;
    d.scaled_down = true;
  }

  // --- Gang-formation window --------------------------------------------
  const double mean_gang = signals.gangs_per_s > 0.0
                               ? signals.gang_members_per_s / signals.gangs_per_s
                               : 0.0;
  if (!window_open_) {
    if (signals.arrival_qps >= options_.gang_open_qps) {
      ++open_streak_;
    } else {
      open_streak_ = 0;
    }
    if (open_streak_ >= options_.scale_up_ticks) {
      window_open_ = true;
      open_streak_ = 0;
      d.window_opened = true;
    }
  } else {
    const bool quiet = signals.arrival_qps <= options_.gang_close_qps;
    // Gangs forming but averaging ~1 member: the window is pure latency
    // tax.  Only meaningful while gangs are actually being formed.
    const bool unproductive =
        signals.gangs_per_s > 0.0 && mean_gang < options_.min_mean_gang;
    if (quiet || unproductive) {
      ++close_streak_;
    } else {
      close_streak_ = 0;
    }
    if (close_streak_ >= options_.scale_down_ticks) {
      window_open_ = false;
      close_streak_ = 0;
      d.window_closed = true;
    }
  }

  d.resident = resident_;
  d.gang_window =
      window_open_ ? options_.gang_window : std::chrono::microseconds{0};
  return d;
}

bool AdaptiveController::tick_now() {
  auto history = obs::sampler().history(2);
  if (history.size() < 2) return false;
  const obs::TelemetrySample& prev = history[history.size() - 2];
  const obs::TelemetrySample& cur = history.back();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (cur.mono_ms <= last_sample_mono_ms_) return false;
    last_sample_mono_ms_ = cur.mono_ms;
  }
  const AdaptiveDecision d = step(signals_from(prev, cur));
  apply(d);
  return true;
}

AdaptiveSignals AdaptiveController::signals_from(
    const obs::TelemetrySample& prev, const obs::TelemetrySample& cur) {
  AdaptiveSignals s;
  s.interval_s =
      static_cast<double>(cur.mono_ms - prev.mono_ms) / 1000.0;
  if (s.interval_s <= 0.0) return s;

  if (const std::int64_t* g = cur.snapshot.gauge("scheduler.queue_depth")) {
    s.queue_depth = static_cast<double>(*g);
  }
  if (const std::int64_t* g = cur.snapshot.gauge("scheduler.in_flight")) {
    s.in_flight = static_cast<double>(*g);
  }
  s.arrival_qps =
      counter_rate_for(prev, cur, "scheduler.enqueued", s.interval_s);
  s.completion_qps =
      counter_rate_for(prev, cur, "scheduler.completed", s.interval_s);
  s.gangs_per_s = counter_rate_for(prev, cur, "batch.gangs", s.interval_s);
  s.gang_members_per_s =
      counter_rate_for(prev, cur, "batch.members", s.interval_s);

  // Histogram sum delta: seconds of queue wait accumulated per second of
  // wall time.  Resets (sum shrank) report as 0 rather than a negative
  // rate — the next interval recovers.
  const obs::HistogramSnapshot* hp =
      prev.snapshot.histogram("scheduler.queue_wait_s");
  const obs::HistogramSnapshot* hc =
      cur.snapshot.histogram("scheduler.queue_wait_s");
  if (hp != nullptr && hc != nullptr && hc->sum >= hp->sum) {
    s.queue_wait_s_per_s = (hc->sum - hp->sum) / s.interval_s;
  }
  return s;
}

std::size_t AdaptiveController::resident() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return resident_;
}

std::chrono::microseconds AdaptiveController::gang_window() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return window_open_ ? options_.gang_window : std::chrono::microseconds{0};
}

void AdaptiveController::thread_main() {
  std::unique_lock<std::mutex> lk(thread_mutex_);
  while (thread_running_) {
    thread_cv_.wait_for(lk, options_.tick, [this] { return !thread_running_; });
    if (!thread_running_) break;
    lk.unlock();
    tick_now();
    lk.lock();
  }
}

void AdaptiveController::apply(const AdaptiveDecision& d) {
  AdaptiveMetrics& m = adaptive_metrics();
  m.ticks.add();
  if (d.scaled_up) m.scale_ups.add();
  if (d.scaled_down) m.scale_downs.add();
  if (d.window_opened) m.window_opens.add();
  if (d.window_closed) m.window_closes.add();
  m.resident_target.set(static_cast<std::int64_t>(d.resident));
  m.gang_window_us.set(static_cast<std::int64_t>(d.gang_window.count()));
  if (actuators_.set_resident) actuators_.set_resident(d.resident);
  if (actuators_.set_gang_window) actuators_.set_gang_window(d.gang_window);
}

}  // namespace adr
