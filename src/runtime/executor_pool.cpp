#include "runtime/executor_pool.hpp"

#include <stdexcept>

#include "common/fault.hpp"
#include "obs/metrics.hpp"

namespace adr {
namespace {

// Cumulative, process-wide series (metric catalog: docs/observability.md).
struct PoolMetrics {
  obs::Counter& leases;
  obs::Counter& warm_leases;
  obs::Counter& cold_leases;
  obs::Gauge& resident;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{obs::metrics().counter("executor_pool.leases"),
                       obs::metrics().counter("executor_pool.warm_leases"),
                       obs::metrics().counter("executor_pool.cold_leases"),
                       obs::metrics().gauge("executor_pool.resident")};
  return m;
}

}  // namespace

ThreadExecutorPool::ThreadExecutorPool(int num_nodes, int disks_per_node,
                                       ChunkStore* store, std::size_t max_resident)
    : num_nodes_(num_nodes),
      disks_per_node_(disks_per_node),
      store_(store),
      max_resident_(max_resident) {
  if (num_nodes_ < 1 || disks_per_node_ < 1) {
    throw std::invalid_argument("ThreadExecutorPool: bad machine shape");
  }
  if (max_resident_ < 1) {
    throw std::invalid_argument("ThreadExecutorPool: max_resident must be >= 1");
  }
}

ThreadExecutorPool::~ThreadExecutorPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  pool_metrics().resident.add(-static_cast<std::int64_t>(idle_.size()));
}

ThreadExecutorPool::Lease ThreadExecutorPool::acquire() {
  // Injectable lease failure (arm with kBusy to emulate a saturated
  // farm): checked before any pool state mutates, so a refused lease
  // leaves counters and the idle list untouched.
  fault::faults().check("runtime.lease");
  std::unique_ptr<ThreadExecutor> executor;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++leases_;
    pool_metrics().leases.add();
    if (!idle_.empty()) {
      executor = std::move(idle_.back());
      idle_.pop_back();
      ++reuses_;
      pool_metrics().warm_leases.add();
      pool_metrics().resident.add(-1);
    } else {
      ++created_;
      pool_metrics().cold_leases.add();
    }
  }
  // Construction (thread spawn) happens outside the pool lock.
  if (executor == nullptr) {
    executor = std::make_unique<ThreadExecutor>(num_nodes_, disks_per_node_, store_);
  }
  return Lease(this, std::move(executor));
}

void ThreadExecutorPool::set_max_resident(std::size_t max_resident) {
  if (max_resident < 1) max_resident = 1;
  // Collect the excess under the lock, join their threads outside it.
  std::vector<std::unique_ptr<ThreadExecutor>> excess;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_resident_ = max_resident;
    while (idle_.size() > max_resident_) {
      excess.push_back(std::move(idle_.back()));
      idle_.pop_back();
      pool_metrics().resident.add(-1);
    }
  }
  excess.clear();
}

std::size_t ThreadExecutorPool::max_resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_resident_;
}

void ThreadExecutorPool::prewarm(std::size_t n) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (idle_.size() >= n || idle_.size() >= max_resident_) return;
    }
    // Thread spawn outside the lock; re-check before inserting in case
    // the cap moved or another prewarmer got there first.
    auto executor =
        std::make_unique<ThreadExecutor>(num_nodes_, disks_per_node_, store_);
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() >= n || idle_.size() >= max_resident_) return;
    ++created_;
    idle_.push_back(std::move(executor));
    pool_metrics().resident.add(1);
  }
}

void ThreadExecutorPool::release(std::unique_ptr<ThreadExecutor> executor) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < max_resident_) {
      idle_.push_back(std::move(executor));
      pool_metrics().resident.add(1);
      return;
    }
  }
  // Over the resident cap: destroy (joins node threads) outside the lock.
  executor.reset();
}

ThreadExecutorPool::Stats ThreadExecutorPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.created = created_;
  s.leases = leases_;
  s.reuses = reuses_;
  s.resident = idle_.size();
  s.max_resident = max_resident_;
  return s;
}

}  // namespace adr
