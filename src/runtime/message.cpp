#include "runtime/message.hpp"

// Message is a plain aggregate; this TU exists to anchor the header.
