// Thread-backed executor.
//
// One real thread per simulated back-end node, each draining a FIFO task
// queue; send() enqueues delivery on the destination node's queue, so the
// distributed-memory discipline (no shared state, message passing only)
// is preserved even though everything lives in one process.  Used to
// validate the engine and strategies with real payloads and real
// aggregation arithmetic.
//
// Lifecycle: the node threads are spawned once in the constructor and
// live until destruction.  run() may be called repeatedly on the same
// pool — per-run state (finish count, barrier waiters, sliding-window
// epochs, message handler) is reset at the start of each run, so a warm
// executor serves query after query without respawning threads (see
// runtime/executor_pool.hpp for the cross-submit pool).  Runs must not
// overlap: one run() at a time per executor — two queries interleaving
// one pool's barriers would deadlock.  Calls to set_message_handler()
// and run() are sequenced on the leasing thread; the completed-run
// handshake (done_mutex_) orders them against the previous run's node
// tasks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "runtime/executor.hpp"
#include "storage/disk_store.hpp"

namespace adr {

class ThreadExecutor : public Executor {
 public:
  /// `num_nodes` worker threads over a disk farm of `disks_per_node *
  /// num_nodes` disks stored in `store` (must be thread-safe; both
  /// provided stores are).
  ThreadExecutor(int num_nodes, int disks_per_node, ChunkStore* store);
  ~ThreadExecutor() override;

  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  int num_nodes() const override { return static_cast<int>(workers_.size()); }
  void post(int node, Task task) override;
  void read(int node, int global_disk, ChunkId id, std::uint64_t bytes,
            ReadCallback done) override;
  void write(int node, int global_disk, Chunk chunk, Task done) override;
  void send(Message msg) override;
  void set_message_handler(MessageHandler handler) override;
  void compute(int node, double cost_seconds, Task done) override;
  void barrier(int node, Task done) override;
  void window_sync(int node, int epoch, int lag, Task done) override;
  void finish(int node) override;
  double run(std::function<void(int)> entry) override;
  double now_seconds() const override;
  /// Summed node-thread CPU seconds for the last run() (per-thread CPU
  /// clocks read at the run boundaries; see obs/query_cost.hpp).
  double last_run_cpu_seconds() const override;

  int node_of_disk(int global_disk) const { return global_disk / disks_per_node_; }

  /// Rebinds the store reads and writes go through.  Only valid between
  /// runs (the completed-run handshake orders it against the previous
  /// run's node tasks): the batch path points a leased warm executor at
  /// its gang's shared-scan buffer, then restores the farm afterwards.
  void set_store(ChunkStore* store) { store_ = store; }
  ChunkStore* store() const { return store_; }

  /// Completed run() calls on this pool of threads (executor-reuse
  /// observability: threads are spawned once, runs accumulate).
  std::uint64_t completed_runs() const;

  /// Records a failure observed by a node task this run (storage fetch
  /// fault, injected reduction error).  First error wins; the engine
  /// keeps running to completion on degraded inputs (a faulted read
  /// delivers nullopt, exactly like a missing chunk) so barriers and
  /// sliding windows never wedge, and run() rethrows the recorded error
  /// once every node has finished — the query fails cleanly instead of
  /// returning silently partial results.  Thread-safe (node threads).
  void record_run_error(Status status);

 private:
  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
  };

  void worker_loop(int node);
  /// Sum of the worker threads' CPU clocks right now (0 if unreadable).
  double workers_cpu_seconds() const;

  int disks_per_node_;
  ChunkStore* store_;
  MessageHandler handler_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex barrier_mutex_;
  std::vector<std::pair<int, Task>> barrier_waiters_;

  struct WindowWaiter {
    int node;
    int epoch;
    int lag;
    Task task;
  };
  std::mutex window_mutex_;
  std::vector<int> epoch_completed_;
  std::vector<WindowWaiter> window_waiters_;

  mutable std::mutex done_mutex_;
  std::condition_variable done_cv_;
  int finished_ = 0;
  std::uint64_t completed_runs_ = 0;
  /// Per-worker CPU clock ids (pthread_getcpuclockid; empty entry == -1
  /// means unreadable) and the last run's summed CPU delta.  Written by
  /// run() on the leasing thread, read after run() returns — the same
  /// sequencing contract as set_message_handler().
  std::vector<long> worker_cpu_clocks_;
  double last_run_cpu_s_ = 0.0;

  /// First error recorded this run (guarded by error_mutex_; reset at
  /// the start of each run, thrown from run() after completion).
  mutable std::mutex error_mutex_;
  Status run_error_;

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace adr
