// Discrete-event-simulation executor.
//
// Runs the query engine in virtual time on a modelled cluster: reads queue
// on the owning disk's FCFS server, sends traverse the sender egress /
// switch latency / receiver ingress path, and compute occupies the node's
// CPU.  An optional ChunkStore supplies real payloads; without one the
// executor runs metadata-only (counts and times are still exact).
#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/executor.hpp"
#include "sim/cluster.hpp"
#include "storage/disk_store.hpp"

namespace adr {

class SimExecutor : public Executor {
 public:
  /// `store` may be null for metadata-only simulation.
  SimExecutor(sim::SimCluster* cluster, ChunkStore* store);

  int num_nodes() const override;
  void post(int node, Task task) override;
  void read(int node, int global_disk, ChunkId id, std::uint64_t bytes,
            ReadCallback done) override;
  void write(int node, int global_disk, Chunk chunk, Task done) override;
  void send(Message msg) override;
  void set_message_handler(MessageHandler handler) override;
  void compute(int node, double cost_seconds, Task done) override;
  void barrier(int node, Task done) override;
  void window_sync(int node, int epoch, int lag, Task done) override;
  void finish(int node) override;
  double run(std::function<void(int)> entry) override;
  double now_seconds() const override;

  sim::SimCluster& cluster() { return *cluster_; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  /// Per-node LRU buffer cache over (disk, chunk) keys, modelling the
  /// node's file-system cache.  Enabled by ClusterConfig::disk_cache_bytes.
  struct NodeCache {
    struct Entry {
      std::uint64_t key;
      std::uint64_t bytes;
    };
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t resident = 0;
  };
  static std::uint64_t cache_key(int global_disk, ChunkId id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(global_disk)) << 40) ^
           (static_cast<std::uint64_t>(id.dataset) << 32) ^ id.index;
  }
  bool cache_lookup(int node, std::uint64_t key);
  void cache_insert(int node, std::uint64_t key, std::uint64_t bytes);
  sim::SimCluster* cluster_;
  ChunkStore* store_;
  MessageHandler handler_;
  // Barrier state: callbacks parked until all nodes arrive.
  std::vector<Task> barrier_waiters_;
  // Sliding-window state: highest epoch completed per node, plus parked
  // callbacks waiting for the window to advance.
  struct WindowWaiter {
    int epoch;
    int lag;
    Task task;
  };
  std::vector<int> epoch_completed_;
  std::vector<WindowWaiter> window_waiters_;
  std::vector<NodeCache> caches_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  int finished_ = 0;
};

}  // namespace adr
