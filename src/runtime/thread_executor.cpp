#include "runtime/thread_executor.hpp"

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "common/fault.hpp"

namespace adr {

ThreadExecutor::ThreadExecutor(int num_nodes, int disks_per_node, ChunkStore* store)
    : disks_per_node_(disks_per_node), store_(store) {
  assert(num_nodes >= 1);
  assert(disks_per_node >= 1);
  if (store_ != nullptr && store_->num_disks() != num_nodes * disks_per_node) {
    throw std::invalid_argument("ThreadExecutor: store disk count mismatch");
  }
  epoch_ = std::chrono::steady_clock::now();
  workers_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int n = 0; n < num_nodes; ++n) {
    workers_[static_cast<size_t>(n)]->thread =
        std::thread([this, n]() { worker_loop(n); });
  }
  // Per-thread CPU clocks for the cost ledger's thread-CPU attribution:
  // readable from the leasing thread, so run() can difference them at
  // its boundaries without touching the workers' hot loops.
  worker_cpu_clocks_.assign(workers_.size(), -1);
  for (std::size_t n = 0; n < workers_.size(); ++n) {
    clockid_t clock;
    if (pthread_getcpuclockid(workers_[n]->thread.native_handle(), &clock) == 0) {
      worker_cpu_clocks_[n] = static_cast<long>(clock);
    }
  }
}

double ThreadExecutor::workers_cpu_seconds() const {
  double total = 0.0;
  for (const long clock : worker_cpu_clocks_) {
    if (clock == -1) continue;
    timespec ts{};
    if (clock_gettime(static_cast<clockid_t>(clock), &ts) == 0) {
      total += static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
  }
  return total;
}

double ThreadExecutor::last_run_cpu_seconds() const { return last_run_cpu_s_; }

ThreadExecutor::~ThreadExecutor() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mutex);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadExecutor::worker_loop(int node) {
  Worker& w = *workers_[static_cast<size_t>(node)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(w.mutex);
      w.cv.wait(lock, [&w]() { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) return;  // stop requested and drained
      task = std::move(w.queue.front());
      w.queue.pop_front();
    }
    task();
  }
}

void ThreadExecutor::post(int node, Task task) {
  assert(node >= 0 && node < num_nodes());
  Worker& w = *workers_[static_cast<size_t>(node)];
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  w.cv.notify_one();
}

void ThreadExecutor::read(int node, int global_disk, ChunkId id, std::uint64_t bytes,
                          ReadCallback done) {
  (void)bytes;
  assert(node_of_disk(global_disk) == node);
  ChunkStore* store = store_;
  // A throwing fetch (disk fault, injected error) must not unwind the
  // node thread — that would terminate the process.  Record the error
  // and deliver nullopt: the engine degrades exactly as for a missing
  // chunk, the run completes, and run() rethrows the recorded status.
  post(node, [this, store, global_disk, id, done = std::move(done)]() {
    std::optional<Chunk> chunk;
    if (store != nullptr) {
      try {
        chunk = store->get(global_disk, id);
      } catch (const StatusError& e) {
        record_run_error(e.to_status());
      } catch (const std::exception& e) {
        record_run_error(status_from_exception(e));
      }
    }
    done(std::move(chunk));
  });
}

void ThreadExecutor::write(int node, int global_disk, Chunk chunk, Task done) {
  assert(node_of_disk(global_disk) == node);
  (void)global_disk;
  ChunkStore* store = store_;
  post(node, [this, store, chunk = std::move(chunk),
              done = std::move(done)]() mutable {
    if (store != nullptr) {
      try {
        store->put(std::move(chunk));
      } catch (const StatusError& e) {
        record_run_error(e.to_status());
      } catch (const std::exception& e) {
        record_run_error(status_from_exception(e));
      }
    }
    done();  // the phase state machine must still advance past the write
  });
}

void ThreadExecutor::send(Message msg) {
  assert(handler_ != nullptr);
  const int dst = msg.dst;
  // Capture the handler by reference to the member: it is set once before
  // execution starts and never mutated afterwards.
  post(dst, [this, msg = std::move(msg)]() { handler_(msg); });
}

void ThreadExecutor::set_message_handler(MessageHandler handler) {
  handler_ = std::move(handler);
}

void ThreadExecutor::compute(int node, double cost_seconds, Task done) {
  (void)cost_seconds;  // real work costs real time on this executor
  post(node, [this, done = std::move(done)]() {
    // Injected per-tile reduction failure: record it (failing the run
    // after completion) but still run the continuation so the engine's
    // phase accounting stays balanced.
    const Status injected = fault::faults().evaluate("runtime.compute");
    if (!injected.ok()) record_run_error(injected);
    done();
  });
}

void ThreadExecutor::barrier(int node, Task done) {
  std::vector<std::pair<int, Task>> release;
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_waiters_.emplace_back(node, std::move(done));
    if (static_cast<int>(barrier_waiters_.size()) == num_nodes()) {
      release = std::move(barrier_waiters_);
      barrier_waiters_.clear();
    }
  }
  for (auto& [n, task] : release) post(n, std::move(task));
}

void ThreadExecutor::window_sync(int node, int epoch, int lag, Task done) {
  std::vector<WindowWaiter> ready;
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    if (epoch_completed_.empty()) {
      epoch_completed_.assign(static_cast<size_t>(num_nodes()), -1);
    }
    epoch_completed_[static_cast<size_t>(node)] =
        std::max(epoch_completed_[static_cast<size_t>(node)], epoch);
    window_waiters_.push_back(WindowWaiter{node, epoch, lag, std::move(done)});
    const int min_done =
        *std::min_element(epoch_completed_.begin(), epoch_completed_.end());
    std::erase_if(window_waiters_, [min_done, &ready](WindowWaiter& w) {
      if (w.epoch - w.lag <= min_done) {
        ready.push_back(std::move(w));
        return true;
      }
      return false;
    });
  }
  for (WindowWaiter& w : ready) post(w.node, std::move(w.task));
}

void ThreadExecutor::finish(int node) {
  (void)node;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    ++finished_;
  }
  done_cv_.notify_all();
}

double ThreadExecutor::run(std::function<void(int)> entry) {
  // Reset per-run state so one pool of node threads serves many runs.
  // A correctly finished run leaves the waiter lists empty (every
  // barrier releases, every window waiter fires before finish); the
  // clears keep a stale entry from a buggy engine from leaking into the
  // next query.
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    finished_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    run_error_ = Status::make_ok();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    assert(barrier_waiters_.empty());
    barrier_waiters_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    assert(window_waiters_.empty());
    window_waiters_.clear();
    epoch_completed_.clear();
  }
  const double cpu_before = workers_cpu_seconds();
  const auto start = std::chrono::steady_clock::now();
  for (int n = 0; n < num_nodes(); ++n) {
    post(n, [entry, n]() { entry(n); });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this]() { return finished_ == num_nodes(); });
    ++completed_runs_;
  }
  const auto end = std::chrono::steady_clock::now();
  last_run_cpu_s_ = std::max(0.0, workers_cpu_seconds() - cpu_before);
  // Surface the first node-task failure only after every node finished:
  // the pool is quiescent, so a leased warm executor returns to the pool
  // clean even when the query it ran failed.
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!run_error_.ok()) {
      throw StatusError(run_error_.code, run_error_.message);
    }
  }
  return std::chrono::duration<double>(end - start).count();
}

void ThreadExecutor::record_run_error(Status status) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (run_error_.ok()) run_error_ = std::move(status);
}

std::uint64_t ThreadExecutor::completed_runs() const {
  std::lock_guard<std::mutex> lock(done_mutex_);
  return completed_runs_;
}

double ThreadExecutor::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

}  // namespace adr
