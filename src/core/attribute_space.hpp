// Attribute space service.
//
// Manages the registration of multi-dimensional attribute spaces and of
// user-defined mapping functions between them (paper section 2.1).  A
// MapFunction projects regions of the input dataset's attribute space into
// the output dataset's space; the planner composes it with the output
// R-tree to obtain the chunk-level input->output mapping.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

/// A registered attribute space: a name, a dimensionality, and an extent.
struct AttributeSpace {
  std::string name;
  Rect domain;

  int dims() const { return domain.dims(); }
};

/// User-defined mapping function from an input attribute space to an
/// output attribute space (the paper's `Map`).  The planner only needs the
/// region form; item-level mapping happens inside the application's
/// Aggregate function, which sees both chunks' geometry.
class MapFunction {
 public:
  virtual ~MapFunction() = default;
  virtual std::string name() const = 0;

  /// Projects an input-space region to the output-space region it may
  /// contribute to.  Must be conservative (cover all actual targets).
  virtual Rect project(const Rect& input_region) const = 0;
};

/// Identity projection for equal spaces, optionally dropping trailing
/// dimensions (e.g. (lon, lat, time) -> (lon, lat)).
class IdentityMap : public MapFunction {
 public:
  explicit IdentityMap(int output_dims = 0) : output_dims_(output_dims) {}
  std::string name() const override { return "identity"; }
  Rect project(const Rect& input_region) const override;

 private:
  int output_dims_;  // 0 = keep all dims
};

/// Per-dimension affine projection out[i] = scale[i]*in[i] + offset[i],
/// keeping the first output_dims dimensions, then inflating each side by
/// spread[i] (models point-spread / resampling footprints).
class AffineMap : public MapFunction {
 public:
  AffineMap(std::vector<double> scale, std::vector<double> offset, int output_dims,
            std::vector<double> spread = {});
  std::string name() const override { return "affine"; }
  Rect project(const Rect& input_region) const override;

 private:
  std::vector<double> scale_;
  std::vector<double> offset_;
  int output_dims_;
  std::vector<double> spread_;
};

/// Registry for spaces and mapping functions.
class AttributeSpaceService {
 public:
  void register_space(AttributeSpace space);
  const AttributeSpace* find_space(const std::string& name) const;

  void register_map(std::shared_ptr<MapFunction> map);
  const MapFunction* find_map(const std::string& name) const;

  std::vector<std::string> space_names() const;

 private:
  std::unordered_map<std::string, AttributeSpace> spaces_;
  std::unordered_map<std::string, std::shared_ptr<MapFunction>> maps_;
};

}  // namespace adr
