// Range queries.
//
// A query names an input dataset, an output dataset, a bounding box in the
// input's attribute space, the registered aggregation operation, and the
// processing strategy to use (or kAuto to let the cost model choose).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

enum class StrategyKind {
  kFRA,     // fully replicated accumulator (paper 3.1)
  kSRA,     // sparsely replicated accumulator (paper 3.2)
  kDA,      // distributed accumulator (paper 3.3)
  kHybrid,  // graph-partitioning hybrid (paper future work, section 6)
  kAuto,    // pick by analytic cost model (paper future work, section 6)
};

std::string to_string(StrategyKind s);

/// How output chunks are ordered before being packed into tiles.
/// The paper uses Hilbert ordering; the others exist for the ablation.
enum class TilingOrder { kHilbert, kRowMajor, kRandom };

std::string to_string(TilingOrder o);

/// Where the final output chunks go (paper section 2.1: "output products
/// can be returned from the back-end nodes to the requesting client, or
/// stored in ADR").
enum class OutputDelivery {
  kWriteBack,        // write/update the output dataset on the disk farm
  kReturnToClient,   // hand finalized chunks back with the QueryResult
  kDiscard,          // compute only (benchmarks)
};

std::string to_string(OutputDelivery d);

struct Query {
  std::uint32_t input_dataset = 0;
  /// Further input datasets aggregated by the same reduction ("data
  /// items retrieved from one or more datasets"); must share the primary
  /// input's attribute space.
  std::vector<std::uint32_t> extra_input_datasets;
  std::uint32_t output_dataset = 0;
  /// Range in the input dataset's attribute space.
  Rect range;
  /// Registered mapping-function name ("" = identity onto output dims).
  std::string map_function;
  /// Registered aggregation-operation name.
  std::string aggregation;
  StrategyKind strategy = StrategyKind::kFRA;
  TilingOrder tiling_order = TilingOrder::kHilbert;
  OutputDelivery delivery = OutputDelivery::kWriteBack;
  /// Legacy switch: when false, behaves as kDiscard regardless of
  /// `delivery`.
  bool write_output = true;
  std::uint64_t seed = 1;  // for kRandom tiling order
};

}  // namespace adr
