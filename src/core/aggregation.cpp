#include "core/aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace adr {
namespace {

struct SumCountMax {
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::uint64_t max = 0;
};

SumCountMax* as_scm(std::vector<std::byte>& accum) {
  return reinterpret_cast<SumCountMax*>(accum.data());
}

const SumCountMax* as_scm(const std::vector<std::byte>& accum) {
  return reinterpret_cast<const SumCountMax*>(accum.data());
}

}  // namespace

std::vector<std::byte> SumCountMaxOp::initialize(const ChunkMeta& out_meta,
                                                 const Chunk* existing) const {
  (void)out_meta;
  (void)existing;
  std::vector<std::byte> accum(sizeof(SumCountMax));
  *as_scm(accum) = SumCountMax{};
  return accum;
}

void SumCountMaxOp::aggregate(const Chunk& input, const ChunkMeta& out_meta,
                              std::vector<std::byte>& accum) const {
  (void)out_meta;
  assert(accum.size() >= sizeof(SumCountMax));
  SumCountMax* a = as_scm(accum);
  const auto values = input.as<std::uint64_t>();
  const std::size_t n = values.size();
  // Four independent accumulator lanes: sums/maxes in separate registers
  // break the loop-carried dependency chain so the compiler can keep
  // four adds in flight (or vectorize outright).  u64 addition and max
  // are associative-commutative, so lane order cannot change the result
  // — wrapping on overflow included, mod-2^64 addition still commutes.
  std::uint64_t sum0 = 0, sum1 = 0, sum2 = 0, sum3 = 0;
  std::uint64_t max0 = 0, max1 = 0, max2 = 0, max3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    sum0 += values[i];
    sum1 += values[i + 1];
    sum2 += values[i + 2];
    sum3 += values[i + 3];
    max0 = std::max(max0, values[i]);
    max1 = std::max(max1, values[i + 1]);
    max2 = std::max(max2, values[i + 2]);
    max3 = std::max(max3, values[i + 3]);
  }
  for (; i < n; ++i) {
    sum0 += values[i];
    max0 = std::max(max0, values[i]);
  }
  a->sum += sum0 + sum1 + sum2 + sum3;
  a->count += n;
  a->max = std::max(a->max, std::max(std::max(max0, max1), std::max(max2, max3)));
}

void SumCountMaxOp::combine(std::vector<std::byte>& dst,
                            const std::vector<std::byte>& src) const {
  assert(dst.size() >= sizeof(SumCountMax) && src.size() >= sizeof(SumCountMax));
  SumCountMax* d = as_scm(dst);
  const SumCountMax* s = as_scm(src);
  d->sum += s->sum;
  d->count += s->count;
  d->max = std::max(d->max, s->max);
}

std::vector<std::byte> SumCountMaxOp::output(const ChunkMeta& out_meta,
                                             const std::vector<std::byte>& accum) const {
  (void)out_meta;
  // The final product is the accumulator triple itself.
  return accum;
}

std::vector<std::byte> CountOp::initialize(const ChunkMeta&, const Chunk*) const {
  return std::vector<std::byte>(sizeof(std::uint64_t), std::byte{0});
}

void CountOp::aggregate(const Chunk& input, const ChunkMeta&,
                        std::vector<std::byte>& accum) const {
  assert(accum.size() >= sizeof(std::uint64_t));
  *reinterpret_cast<std::uint64_t*>(accum.data()) += input.as<std::uint64_t>().size();
}

void CountOp::combine(std::vector<std::byte>& dst,
                      const std::vector<std::byte>& src) const {
  *reinterpret_cast<std::uint64_t*>(dst.data()) +=
      *reinterpret_cast<const std::uint64_t*>(src.data());
}

std::vector<std::byte> CountOp::output(const ChunkMeta&,
                                       const std::vector<std::byte>& accum) const {
  return accum;
}

HistogramOp::HistogramOp(int buckets, std::uint64_t lo, std::uint64_t hi)
    : buckets_(buckets), lo_(lo), hi_(hi) {
  assert(buckets_ >= 1);
  assert(hi_ > lo_);
}

int HistogramOp::bucket_of(std::uint64_t value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return buckets_ - 1;
  const std::uint64_t width = (hi_ - lo_ + buckets_ - 1) / buckets_;
  return std::min(buckets_ - 1, static_cast<int>((value - lo_) / width));
}

std::vector<std::byte> HistogramOp::initialize(const ChunkMeta&, const Chunk*) const {
  return std::vector<std::byte>(static_cast<size_t>(buckets_) * sizeof(std::uint64_t),
                                std::byte{0});
}

void HistogramOp::aggregate(const Chunk& input, const ChunkMeta&,
                            std::vector<std::byte>& accum) const {
  auto counts = std::span<std::uint64_t>(
      reinterpret_cast<std::uint64_t*>(accum.data()), accum.size() / sizeof(std::uint64_t));
  for (std::uint64_t v : input.as<std::uint64_t>()) {
    counts[static_cast<size_t>(bucket_of(v))] += 1;
  }
}

void HistogramOp::combine(std::vector<std::byte>& dst,
                          const std::vector<std::byte>& src) const {
  auto d = std::span<std::uint64_t>(reinterpret_cast<std::uint64_t*>(dst.data()),
                                    dst.size() / sizeof(std::uint64_t));
  auto s = std::span<const std::uint64_t>(
      reinterpret_cast<const std::uint64_t*>(src.data()),
      src.size() / sizeof(std::uint64_t));
  for (std::size_t i = 0; i < d.size() && i < s.size(); ++i) d[i] += s[i];
}

std::vector<std::byte> HistogramOp::output(const ChunkMeta&,
                                           const std::vector<std::byte>& accum) const {
  return accum;
}

AggregationService::AggregationService() {
  register_op(std::make_shared<SumCountMaxOp>());
  register_op(std::make_shared<CountOp>());
  register_op(std::make_shared<HistogramOp>(16, 0, 1000));
}

void AggregationService::register_op(std::shared_ptr<AggregationOp> op) {
  assert(op != nullptr);
  const std::string name = op->name();
  ops_[name] = std::move(op);
}

const AggregationOp* AggregationService::find(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : it->second.get();
}

std::shared_ptr<AggregationOp> AggregationService::find_shared(
    const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : it->second;
}

std::vector<std::string> AggregationService::op_names() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, op] : ops_) names.push_back(name);
  return names;
}

}  // namespace adr
