#include "core/attribute_space.hpp"

#include <cassert>
#include <stdexcept>

namespace adr {

Rect IdentityMap::project(const Rect& input_region) const {
  const int keep = output_dims_ > 0 ? output_dims_ : input_region.dims();
  assert(keep <= input_region.dims());
  Point lo(keep), hi(keep);
  for (int i = 0; i < keep; ++i) {
    lo[i] = input_region.lo()[i];
    hi[i] = input_region.hi()[i];
  }
  return Rect(lo, hi);
}

AffineMap::AffineMap(std::vector<double> scale, std::vector<double> offset,
                     int output_dims, std::vector<double> spread)
    : scale_(std::move(scale)),
      offset_(std::move(offset)),
      output_dims_(output_dims),
      spread_(std::move(spread)) {
  if (scale_.size() != offset_.size()) {
    throw std::invalid_argument("AffineMap: scale/offset size mismatch");
  }
  if (output_dims_ < 1 || output_dims_ > static_cast<int>(scale_.size())) {
    throw std::invalid_argument("AffineMap: bad output_dims");
  }
  if (!spread_.empty() && spread_.size() != static_cast<std::size_t>(output_dims_)) {
    throw std::invalid_argument("AffineMap: spread size mismatch");
  }
}

Rect AffineMap::project(const Rect& input_region) const {
  assert(input_region.dims() >= output_dims_);
  Point lo(output_dims_), hi(output_dims_);
  for (int i = 0; i < output_dims_; ++i) {
    const double a = scale_[static_cast<std::size_t>(i)] * input_region.lo()[i] +
                     offset_[static_cast<std::size_t>(i)];
    const double b = scale_[static_cast<std::size_t>(i)] * input_region.hi()[i] +
                     offset_[static_cast<std::size_t>(i)];
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  Rect out(lo, hi);
  if (!spread_.empty()) out = out.inflated(spread_);
  return out;
}

void AttributeSpaceService::register_space(AttributeSpace space) {
  const std::string name = space.name;
  spaces_[name] = std::move(space);
}

const AttributeSpace* AttributeSpaceService::find_space(const std::string& name) const {
  auto it = spaces_.find(name);
  return it == spaces_.end() ? nullptr : &it->second;
}

void AttributeSpaceService::register_map(std::shared_ptr<MapFunction> map) {
  assert(map != nullptr);
  const std::string name = map->name();
  maps_[name] = std::move(map);
}

const MapFunction* AttributeSpaceService::find_map(const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : it->second.get();
}

std::vector<std::string> AttributeSpaceService::space_names() const {
  std::vector<std::string> names;
  names.reserve(spaces_.size());
  for (const auto& [name, space] : spaces_) names.push_back(name);
  return names;
}

}  // namespace adr
