#include "core/runtime_config.hpp"

#include <string>

namespace adr {

namespace {
Status invalid(const std::string& what) {
  return Status::make(StatusCode::kInvalidArgument, "RuntimeConfig: " + what);
}
}  // namespace

Status RuntimeConfig::validate() const {
  if (executor_pool_size == 0) return invalid("executor_pool_size must be >= 1");
  if (scheduler_workers == 0) return invalid("scheduler_workers must be >= 1");
  if (max_pending == 0) return invalid("max_pending must be >= 1");
  if (max_connections == 0) return invalid("max_connections must be >= 1");
  if (gang.enabled && gang.max_gang < 2) {
    return invalid("gang.max_gang must be >= 2 when gang formation is enabled");
  }
  if (gang.window.count() < 0) return invalid("gang.window must be >= 0");
  if (telemetry.sample_capacity == 0) {
    return invalid("telemetry.sample_capacity must be >= 1");
  }
  if (telemetry.sample_period.count() <= 0) {
    return invalid("telemetry.sample_period must be positive");
  }

  const AdaptiveOptions& a = adaptive;
  if (a.min_resident == 0) return invalid("adaptive.min_resident must be >= 1");
  if (a.min_resident > a.max_resident) {
    return invalid("adaptive band is empty (min_resident > max_resident)");
  }
  if (a.depth_low_per_executor < 0.0 ||
      a.depth_high_per_executor <= a.depth_low_per_executor) {
    return invalid("adaptive depth thresholds must satisfy 0 <= low < high");
  }
  if (a.wait_low_s_per_s < 0.0 || a.wait_high_s_per_s <= a.wait_low_s_per_s) {
    return invalid("adaptive wait thresholds must satisfy 0 <= low < high");
  }
  if (a.scale_up_ticks < 1 || a.scale_down_ticks < 1) {
    return invalid("adaptive hysteresis tick counts must be >= 1");
  }
  if (a.gang_close_qps < 0.0 || a.gang_open_qps < a.gang_close_qps) {
    return invalid("adaptive gang qps thresholds must satisfy 0 <= close <= open");
  }
  if (a.gang_window.count() < 0) return invalid("adaptive.gang_window must be >= 0");
  if (a.tick.count() <= 0) return invalid("adaptive.tick must be positive");
  if (a.enabled && executor_pool_size > a.max_resident) {
    return invalid("executor_pool_size exceeds adaptive.max_resident");
  }
  return Status::make_ok();
}

void RuntimeConfig::check() const {
  const Status s = validate();
  if (!s.ok()) throw StatusError(s.code, s.message);
}

}  // namespace adr
