#include "core/planner/planner.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "common/logging.hpp"
#include "core/planner/mapping.hpp"
#include "core/planner/tiling.hpp"

namespace adr {
namespace {

bool hosts_replica(const QueryPlan& plan, int p, std::uint32_t o) {
  if (plan.owner_of_output[o] == p) return true;
  const auto& hosts = plan.ghost_hosts[o];
  return std::binary_search(hosts.begin(), hosts.end(), p);
}

}  // namespace

void populate_plan(QueryPlan& plan, const PlannerInput& in) {
  const ChunkMapping& mapping = *in.mapping;
  const std::size_t num_outputs = in.owner_of_output.size();
  const std::size_t num_inputs = in.owner_of_input.size();

  ensure_tiles(plan, plan.num_tiles);

  // Accumulator residency and combine/init message counts.
  for (std::uint32_t o = 0; o < num_outputs; ++o) {
    const int tile = plan.tile_of_output[o];
    const int owner = plan.owner_of_output[o];
    NodeTilePlan& owner_tp =
        plan.node_tiles[static_cast<size_t>(owner)][static_cast<size_t>(tile)];
    owner_tp.local_accum.push_back(o);
    owner_tp.expected_combines += static_cast<int>(plan.ghost_hosts[o].size());
    for (int host : plan.ghost_hosts[o]) {
      NodeTilePlan& host_tp =
          plan.node_tiles[static_cast<size_t>(host)][static_cast<size_t>(tile)];
      host_tp.ghost_accum.push_back(o);
      host_tp.expected_ghost_inits += 1;
    }
  }

  // Read lists: a node reads each of its local input chunks once per tile
  // in which the chunk has at least one target output chunk.
  std::unordered_set<int> tiles_needed;
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    const auto& outs = mapping.in_to_out[i];
    if (outs.empty()) continue;
    tiles_needed.clear();
    for (std::uint32_t o : outs) tiles_needed.insert(plan.tile_of_output[o]);
    const int node = in.owner_of_input[i];
    for (int t : tiles_needed) {
      plan.node_tiles[static_cast<size_t>(node)][static_cast<size_t>(t)].reads.push_back(i);
    }
  }
  // Deterministic read order (ascending input position).
  for (auto& node : plan.node_tiles) {
    for (auto& tile : node) std::sort(tile.reads.begin(), tile.reads.end());
  }

  // Forwarded-input message counts: for every edge whose source node does
  // not host the target replica, the input chunk travels to the owner —
  // one message per distinct (input, destination, tile).
  std::unordered_set<std::uint64_t> dests;  // packed (dst, tile)
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    const int src = in.owner_of_input[i];
    dests.clear();
    for (std::uint32_t o : mapping.in_to_out[i]) {
      if (hosts_replica(plan, src, o)) continue;
      const int dst = plan.owner_of_output[o];
      const int tile = plan.tile_of_output[o];
      dests.insert((static_cast<std::uint64_t>(dst) << 32) |
                   static_cast<std::uint32_t>(tile));
    }
    for (std::uint64_t key : dests) {
      const int dst = static_cast<int>(key >> 32);
      const int tile = static_cast<int>(key & 0xffffffffu);
      plan.node_tiles[static_cast<size_t>(dst)][static_cast<size_t>(tile)]
          .expected_inputs += 1;
    }
  }

  finalize_plan_stats(plan, in);
}

namespace {

/// [input, extra_inputs...] with the null/dimensionality validation both
/// phases rely on.
std::vector<const Dataset*> collect_inputs(const PlanRequest& request) {
  std::vector<const Dataset*> inputs;
  inputs.push_back(request.input);
  for (const Dataset* extra : request.extra_inputs) {
    if (extra == nullptr) throw std::invalid_argument("plan_query: null extra input");
    if (extra->domain().dims() != request.input->domain().dims()) {
      throw std::invalid_argument("plan_query: extra input dimensionality mismatch");
    }
    inputs.push_back(extra);
  }
  return inputs;
}

}  // namespace

QuerySelection select_query_chunks(const PlanRequest& request) {
  if (request.input == nullptr || request.output == nullptr) {
    throw std::invalid_argument("plan_query: missing dataset");
  }
  if (!request.range.valid()) {
    throw std::invalid_argument("plan_query: invalid query range");
  }

  QuerySelection result;

  // --- selection through the indexing service (all input datasets).
  const std::vector<const Dataset*> inputs = collect_inputs(request);
  for (std::size_t ordinal = 0; ordinal < inputs.size(); ++ordinal) {
    for (std::uint32_t c : inputs[ordinal]->find_chunks(request.range)) {
      result.selected_inputs.push_back(c);
      result.input_dataset_of.push_back(static_cast<std::uint16_t>(ordinal));
    }
  }

  // Output selection: chunks intersecting the projected query region.
  const int out_dims = request.output->domain().dims();
  IdentityMap identity(out_dims);
  const MapFunction* map = request.map != nullptr ? request.map : &identity;
  const Rect out_range = map->project(request.range);
  result.selected_outputs = request.output->find_chunks(out_range);
  if (result.selected_outputs.empty()) {
    throw std::invalid_argument("plan_query: query selects no output chunks");
  }

  // --- chunk-level mapping over the selections.
  std::vector<Rect> in_mbrs, out_mbrs;
  in_mbrs.reserve(result.selected_inputs.size());
  for (std::size_t pos = 0; pos < result.selected_inputs.size(); ++pos) {
    const Dataset* ds = inputs[result.input_dataset_of[pos]];
    in_mbrs.push_back(ds->chunk(result.selected_inputs[pos]).mbr);
  }
  out_mbrs.reserve(result.selected_outputs.size());
  for (std::uint32_t c : result.selected_outputs) {
    out_mbrs.push_back(request.output->chunk(c).mbr);
  }
  result.mapping = build_mapping(in_mbrs, out_mbrs, request.map);
  return result;
}

PlannedQuery plan_query(const PlanRequest& request, QuerySelection selection) {
  if (request.input == nullptr || request.output == nullptr) {
    throw std::invalid_argument("plan_query: missing dataset");
  }
  if (request.num_nodes < 1 || request.memory_per_node == 0) {
    throw std::invalid_argument("plan_query: bad machine description");
  }
  if (selection.selected_outputs.empty()) {
    throw std::invalid_argument("plan_query: query selects no output chunks");
  }
  if (selection.input_dataset_of.size() != selection.selected_inputs.size() ||
      selection.mapping.in_to_out.size() != selection.selected_inputs.size() ||
      selection.mapping.out_to_in.size() != selection.selected_outputs.size()) {
    throw std::invalid_argument("plan_query: inconsistent selection");
  }

  const std::vector<const Dataset*> inputs = collect_inputs(request);

  PlannedQuery result;
  result.selected_inputs = std::move(selection.selected_inputs);
  result.input_dataset_of = std::move(selection.input_dataset_of);
  result.selected_outputs = std::move(selection.selected_outputs);
  result.mapping = std::move(selection.mapping);

  std::vector<Rect> out_mbrs;
  out_mbrs.reserve(result.selected_outputs.size());
  for (std::uint32_t c : result.selected_outputs) {
    out_mbrs.push_back(request.output->chunk(c).mbr);
  }

  // --- planner input.
  PlannerInput in;
  in.num_nodes = request.num_nodes;
  in.memory_per_node = request.memory_per_node;
  in.mapping = &result.mapping;
  const double multiplier =
      request.op != nullptr ? request.op->layout().size_multiplier : 1.0;
  for (std::size_t pos = 0; pos < result.selected_inputs.size(); ++pos) {
    const Dataset* ds = inputs[result.input_dataset_of[pos]];
    const ChunkMeta& meta = ds->chunk(result.selected_inputs[pos]);
    in.owner_of_input.push_back(node_of_disk(meta.disk, request.disks_per_node));
    in.input_bytes.push_back(meta.bytes);
  }
  for (std::uint32_t c : result.selected_outputs) {
    const ChunkMeta& meta = request.output->chunk(c);
    in.owner_of_output.push_back(node_of_disk(meta.disk, request.disks_per_node));
    in.output_bytes.push_back(meta.bytes);
    in.accum_bytes.push_back(
        static_cast<std::uint64_t>(static_cast<double>(meta.bytes) * multiplier));
  }
  in.output_order =
      tiling_order(out_mbrs, request.output->domain(), request.order, request.seed);
  if (!in.valid()) throw std::invalid_argument("plan_query: inconsistent planner input");

  // --- strategy dispatch.
  StrategyKind chosen = request.strategy;
  if (chosen == StrategyKind::kAuto) {
    double best = std::numeric_limits<double>::infinity();
    for (StrategyKind s : {StrategyKind::kFRA, StrategyKind::kSRA, StrategyKind::kDA}) {
      QueryPlan candidate = s == StrategyKind::kFRA   ? plan_fra(in)
                            : s == StrategyKind::kSRA ? plan_sra(in)
                                                      : plan_da(in);
      const CostEstimate est =
          estimate_cost(candidate, in, request.costs, request.machine);
      result.estimates.emplace_back(s, est);
      ADR_INFO("auto-select: " << to_string(s) << " -> " << est.to_string());
      if (est.total_s < best) {
        best = est.total_s;
        chosen = s;
        result.plan = std::move(candidate);
      }
    }
  } else {
    switch (chosen) {
      case StrategyKind::kFRA:
        result.plan = plan_fra(in);
        break;
      case StrategyKind::kSRA:
        result.plan = plan_sra(in);
        break;
      case StrategyKind::kDA:
        result.plan = plan_da(in);
        break;
      case StrategyKind::kHybrid:
        result.plan = plan_hybrid(in, request.hybrid_threshold);
        break;
      case StrategyKind::kAuto:
        break;  // handled above
    }
  }
  result.chosen = result.plan.strategy;

  assert(validate_plan(result.plan, in));

  result.owner_of_input = std::move(in.owner_of_input);
  result.input_bytes = std::move(in.input_bytes);
  result.output_bytes = std::move(in.output_bytes);
  result.accum_bytes = std::move(in.accum_bytes);
  return result;
}

PlannedQuery plan_query(const PlanRequest& request) {
  return plan_query(request, select_query_chunks(request));
}

}  // namespace adr
