// Fully Replicated Accumulator strategy — a literal transcription of the
// paper's Figure 4.
//
//   1. Memory = min over processors of accumulator memory
//   2. Tile = 1; MemoryUsed = 0
//   3. while there is an unassigned output chunk:
//   4.   select an output chunk C (Hilbert order)
//   5.   ChunkSize = size of C's accumulator chunk
//   6.   if ChunkSize + MemoryUsed > Memory: Tile += 1; MemoryUsed = ChunkSize
//   else MemoryUsed += ChunkSize
//  11.   assign C to Tile; owner k gets the local accumulator chunk;
//  14.   C becomes a ghost chunk on all other processors;
//  15.   k's local input chunks that map to C are read in C's tile.
//
// Step 15's read sets (for every processor, not just the owner) and the
// expected message counts are derived uniformly by populate_plan().
#include "core/planner/strategy.hpp"

#include <cassert>

#include "common/logging.hpp"

namespace adr {

QueryPlan plan_fra(const PlannerInput& in) {
  assert(in.valid());
  const std::size_t num_outputs = in.owner_of_output.size();

  QueryPlan plan;
  plan.strategy = StrategyKind::kFRA;
  plan.num_nodes = in.num_nodes;
  plan.owner_of_output = in.owner_of_output;
  plan.tile_of_output.assign(num_outputs, 0);
  plan.ghost_hosts.assign(num_outputs, {});
  plan.node_tiles.assign(static_cast<size_t>(in.num_nodes), {});

  // All nodes have the same budget in our configurations; the paper takes
  // the minimum across processors.
  const std::uint64_t memory = in.memory_per_node;

  int tile = 0;
  std::uint64_t used = 0;
  for (std::uint32_t c : in.output_order) {
    const std::uint64_t size = in.accum_bytes[c];
    if (size > memory) {
      ADR_WARN("FRA: accumulator chunk " << c << " (" << size
                                         << " B) exceeds node memory; gets own tile");
    }
    if (used + size > memory && used > 0) {
      ++tile;
      used = size;
    } else {
      used += size;
    }
    plan.tile_of_output[c] = tile;
    // Ghost chunk on every processor other than the owner.
    const int owner = in.owner_of_output[c];
    auto& hosts = plan.ghost_hosts[c];
    hosts.reserve(static_cast<size_t>(in.num_nodes - 1));
    for (int p = 0; p < in.num_nodes; ++p) {
      if (p != owner) hosts.push_back(p);
    }
  }
  plan.num_tiles = num_outputs == 0 ? 0 : tile + 1;

  populate_plan(plan, in);
  return plan;
}

}  // namespace adr
