// Workload partitioning strategies (paper section 3).
//
// Each strategy decides (a) which tile each output chunk is processed in
// and (b) which nodes host a replica of each accumulator chunk:
//
//   FRA    - every node hosts every accumulator chunk of the tile,
//   SRA    - only nodes owning input chunks that project to it,
//   DA     - only the owner (remote inputs are forwarded instead),
//   Hybrid - nodes contributing at least a threshold fraction of the
//            input bytes host a ghost; the rest forward (paper section 6
//            sketches this as a graph-partitioning formulation).
//
// The execution engine applies one uniform rule afterwards: when a node
// holds a replica of a target accumulator chunk it aggregates locally,
// otherwise it forwards the input chunk to the owner.  populate_plan()
// derives reads and expected message counts from the replica sets, so the
// strategies only produce tile assignments and ghost-host sets.
#pragma once

#include "core/planner/plan.hpp"

namespace adr {

/// Fully Replicated Accumulator (paper Fig. 4).
QueryPlan plan_fra(const PlannerInput& in);

/// Sparsely Replicated Accumulator (paper Fig. 5).
QueryPlan plan_sra(const PlannerInput& in);

/// Distributed Accumulator (paper Fig. 6).
QueryPlan plan_da(const PlannerInput& in);

/// Hybrid replication with contribution threshold in (0, 1].
/// threshold -> 0 behaves like SRA; threshold > 1 behaves like DA.
QueryPlan plan_hybrid(const PlannerInput& in, double threshold = 0.25);

/// Fills node_tiles (local/ghost accumulator sets, read lists, expected
/// message counts) from strategy/tile_of_output/owner_of_output/
/// ghost_hosts, then finalizes plan statistics.  ghost_hosts[o] must be
/// sorted and exclude the owner.
void populate_plan(QueryPlan& plan, const PlannerInput& in);

}  // namespace adr
