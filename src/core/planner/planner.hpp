// Query planning service (driver).
//
// Turns a range query over catalogued datasets into an executable plan:
// selects the chunks intersecting the query box through the indexing
// service, builds the chunk-level mapping, orders output chunks for
// tiling, and dispatches to the requested strategy (or picks one with the
// analytic cost model when the query says kAuto).
#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregation.hpp"
#include "core/attribute_space.hpp"
#include "core/planner/cost_model.hpp"
#include "core/planner/plan.hpp"
#include "core/planner/strategy.hpp"
#include "core/query.hpp"
#include "storage/dataset.hpp"

namespace adr {

struct PlanRequest {
  const Dataset* input = nullptr;
  /// Further input datasets aggregated by the same query (the paper's
  /// "data items retrieved from one or more datasets"); they must share
  /// the primary input's attribute space.
  std::vector<const Dataset*> extra_inputs;
  const Dataset* output = nullptr;
  /// Range in the input attribute space.
  Rect range;
  /// May be null: identity onto the output dimensionality.
  const MapFunction* map = nullptr;
  /// Accumulator sizing; 1.0 multiplier when null.
  const AggregationOp* op = nullptr;

  int num_nodes = 1;
  int disks_per_node = 1;
  std::uint64_t memory_per_node = 0;

  StrategyKind strategy = StrategyKind::kFRA;
  double hybrid_threshold = 0.25;
  TilingOrder order = TilingOrder::kHilbert;
  std::uint64_t seed = 1;

  /// Machine/compute parameters for kAuto strategy selection.
  ComputeCosts costs;
  MachineParams machine;
};

/// Phase-one output: which chunks the query touches and how they map,
/// before any strategy decision.  Separated from plan_query so callers
/// (the marginal cache's consult step in Repository) can reduce the
/// selection — dropping output chunks already satisfied from cached
/// partials and the input chunks only they needed — and then plan the
/// remainder as if it were the whole query.
struct QuerySelection {
  /// Dataset chunk index per selected position.
  std::vector<std::uint32_t> selected_inputs;
  /// Which input dataset each selected position came from (ordinal into
  /// [input, extra_inputs...]).
  std::vector<std::uint16_t> input_dataset_of;
  std::vector<std::uint32_t> selected_outputs;
  ChunkMapping mapping;
};

/// A plan plus the selection context the execution service needs.
struct PlannedQuery {
  QueryPlan plan;
  ChunkMapping mapping;
  /// Dataset chunk index per selected position.
  std::vector<std::uint32_t> selected_inputs;
  /// Which input dataset each selected position came from (ordinal into
  /// [input, extra_inputs...]; empty means all positions are ordinal 0).
  std::vector<std::uint16_t> input_dataset_of;
  std::vector<std::uint32_t> selected_outputs;
  std::vector<int> owner_of_input;
  std::vector<std::uint64_t> input_bytes;
  std::vector<std::uint64_t> output_bytes;
  std::vector<std::uint64_t> accum_bytes;
  /// The strategy actually chosen (differs from request for kAuto).
  StrategyKind chosen = StrategyKind::kFRA;
  /// Cost estimates computed during kAuto selection (empty otherwise).
  std::vector<std::pair<StrategyKind, CostEstimate>> estimates;
};

/// Phase one: chunk selection through the indexing service plus the
/// chunk-level mapping.  Throws std::invalid_argument on malformed
/// requests (missing datasets, invalid range, no output chunks).
QuerySelection select_query_chunks(const PlanRequest& request);

/// Phase two: tiling order + strategy dispatch over a selection (from
/// select_query_chunks, possibly reduced by the caller).  The selection
/// must be non-empty and internally consistent with `request`.
PlannedQuery plan_query(const PlanRequest& request, QuerySelection selection);

/// Plans the query in one step (select + plan).  Throws
/// std::invalid_argument on malformed requests.
PlannedQuery plan_query(const PlanRequest& request);

/// Maps a global disk index to its node for a farm with `disks_per_node`.
inline int node_of_disk(int global_disk, int disks_per_node) {
  return global_disk / disks_per_node;
}

}  // namespace adr
