// Batch-aware query planning (the paper's planning service takes "a set
// of queries", not one at a time).
//
// A *gang* is a set of queries over the same input dataset(s) whose
// ranges overlap: their individual plans read many of the same input
// chunks, so executing them independently pays the cold storage fetch
// once per member.  plan_batch keeps every member's plan exactly what
// plan_query would produce for it alone — member execution, tiling and
// outputs are byte-identical to serial submission — and additionally
// computes a *shared tiling*: members step their tiles in lockstep, and
// for each lockstep tile the batch plan holds the union of the members'
// input-chunk I/O lists.  The gang executor (Repository::submit_batch)
// fetches each chunk in a tile's union once and fans it out to every
// member that needs it, using the per-chunk use counts derived here to
// know how long a fetched chunk must stay resident.
#pragma once

#include <cstdint>
#include <vector>

#include "core/planner/planner.hpp"
#include "storage/chunk.hpp"

namespace adr {

/// One distinct input chunk in a lockstep tile's union I/O list, plus
/// the members that read it during that tile.
struct BatchSharedRead {
  ChunkId id;
  int disk = 0;
  std::uint64_t bytes = 0;
  /// Member ordinals (into BatchPlan::members) reading this chunk in
  /// this lockstep tile; each member reads a chunk at most once per tile.
  std::vector<std::uint16_t> members;
};

/// Union I/O list for one lockstep tile step.
struct BatchTile {
  std::vector<BatchSharedRead> reads;
};

/// The shared-scan schedule for a gang: per-tile unions plus the
/// aggregate accounting the executor and the metrics need.
struct BatchSharedPlan {
  /// tiles[t] = union of member reads at lockstep tile t (t indexes up
  /// to the longest member's tile count; shorter members simply stop
  /// contributing).
  std::vector<BatchTile> tiles;

  /// Total chunk-read operations the members will issue (sum of member
  /// plan total_reads; includes FRA-style re-reads across tiles).
  std::uint64_t total_member_reads = 0;
  /// Distinct input chunks across the whole gang — the cold fetches a
  /// perfectly shared scan pays.
  std::uint64_t unique_chunks = 0;
  std::uint64_t unique_bytes = 0;

  /// Reads the shared scan saves versus independent execution.
  std::uint64_t saved_reads() const {
    return total_member_reads - unique_chunks;
  }
};

/// A planned gang: per-member plans (identical to serial planning) plus
/// the shared-scan schedule across them.
struct BatchPlan {
  std::vector<PlannedQuery> members;
  BatchSharedPlan shared;
};

/// Computes the shared-scan schedule for already-planned members.
/// `member_inputs[m]` lists member m's input datasets in the order its
/// plan's input ordinals refer to (as passed to execute_query).
BatchSharedPlan build_batch_shared_plan(
    const std::vector<const PlannedQuery*>& members,
    const std::vector<std::vector<const Dataset*>>& member_inputs);

/// Plans every request individually (exactly plan_query) and derives the
/// shared-scan schedule.  All requests should target the same input
/// dataset(s) for the union to be meaningful, but this is not enforced:
/// disjoint members simply share nothing.  Throws what plan_query throws
/// if any member is malformed.
BatchPlan plan_batch(const std::vector<PlanRequest>& requests);

}  // namespace adr
