// Output-chunk ordering for tiling.
//
// All three strategies select output chunks in the same order when packing
// tiles (paper section 3): the Hilbert index of each output chunk's MBR
// midpoint, whose locality keeps each tile spatially compact and thereby
// minimizes the number of input chunks crossing tile boundaries.
// Row-major and random orders are provided for the tiling ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "core/query.hpp"

namespace adr {

/// Returns output positions (0..n-1) in the order tiles should consume
/// them.  `domain` is the output attribute space extent.
std::vector<std::uint32_t> tiling_order(const std::vector<Rect>& output_mbrs,
                                        const Rect& domain, TilingOrder order,
                                        std::uint64_t seed = 1);

/// Measures tiling quality for a given assignment of outputs to tiles:
/// the total number of (input chunk, tile) incidences, i.e. how many chunk
/// reads a strategy that reads each needed input once per tile performs.
/// Lower is better; the minimum is the number of distinct inputs used.
std::uint64_t tile_read_incidences(const std::vector<std::vector<std::uint32_t>>& in_to_out,
                                   const std::vector<int>& tile_of_output);

}  // namespace adr
