// Sparsely Replicated Accumulator strategy — paper Figure 5.
//
// A ghost chunk for output chunk C is allocated only on processors owning
// at least one input chunk that projects to C (the set So).  Memory is
// tracked per processor; when admitting C would overflow any processor in
// So, a new tile starts and all budgets reset.
//
// The owner always hosts the real accumulator chunk, so its budget is
// charged even when it happens to own no contributing input (the paper's
// pseudo-code leaves this implicit).
#include "core/planner/strategy.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace adr {

QueryPlan plan_sra(const PlannerInput& in) {
  assert(in.valid());
  const std::size_t num_outputs = in.owner_of_output.size();
  const ChunkMapping& mapping = *in.mapping;

  QueryPlan plan;
  plan.strategy = StrategyKind::kSRA;
  plan.num_nodes = in.num_nodes;
  plan.owner_of_output = in.owner_of_output;
  plan.tile_of_output.assign(num_outputs, 0);
  plan.ghost_hosts.assign(num_outputs, {});
  plan.node_tiles.assign(static_cast<size_t>(in.num_nodes), {});

  // Memory(p): remaining accumulator budget per processor for the tile
  // being packed.
  std::vector<std::uint64_t> memory(static_cast<size_t>(in.num_nodes),
                                    in.memory_per_node);

  int tile = 0;
  bool tile_has_chunks = false;
  std::vector<int> hosts;  // So ∪ {owner} for the current chunk
  for (std::uint32_t c : in.output_order) {
    const std::uint64_t size = in.accum_bytes[c];
    const int owner = in.owner_of_output[c];

    // So: processors having at least one input chunk projecting to C.
    hosts.clear();
    for (std::uint32_t i : mapping.out_to_in[c]) hosts.push_back(in.owner_of_input[i]);
    hosts.push_back(owner);
    std::sort(hosts.begin(), hosts.end());
    hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());

    bool memory_full = false;
    for (int p : hosts) {
      if (memory[static_cast<size_t>(p)] < size) memory_full = true;
    }
    if (size > in.memory_per_node) {
      ADR_WARN("SRA: accumulator chunk " << c << " exceeds node memory; gets own tile");
    }
    if (memory_full && tile_has_chunks) {
      ++tile;
      std::fill(memory.begin(), memory.end(), in.memory_per_node);
      tile_has_chunks = false;
    }
    for (int p : hosts) {
      std::uint64_t& m = memory[static_cast<size_t>(p)];
      m = m >= size ? m - size : 0;
    }
    tile_has_chunks = true;

    plan.tile_of_output[c] = tile;
    auto& ghosts = plan.ghost_hosts[c];
    for (int p : hosts) {
      if (p != owner) ghosts.push_back(p);  // already sorted
    }
  }
  plan.num_tiles = num_outputs == 0 ? 0 : tile + 1;

  populate_plan(plan, in);
  return plan;
}

}  // namespace adr
