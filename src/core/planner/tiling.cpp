#include "core/planner/tiling.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/hilbert.hpp"
#include "common/random.hpp"

namespace adr {

std::vector<std::uint32_t> tiling_order(const std::vector<Rect>& output_mbrs,
                                        const Rect& domain, TilingOrder order,
                                        std::uint64_t seed) {
  std::vector<std::uint32_t> positions(output_mbrs.size());
  std::iota(positions.begin(), positions.end(), 0u);
  switch (order) {
    case TilingOrder::kHilbert: {
      std::vector<std::uint64_t> keys(output_mbrs.size());
      for (std::size_t i = 0; i < output_mbrs.size(); ++i) {
        keys[i] = hilbert_index_in_domain(output_mbrs[i].center(), domain, 16);
      }
      std::stable_sort(positions.begin(), positions.end(),
                       [&keys](std::uint32_t a, std::uint32_t b) {
                         return keys[a] < keys[b];
                       });
      break;
    }
    case TilingOrder::kRowMajor: {
      // Lexicographic by midpoint coordinates (last dim fastest).
      std::stable_sort(positions.begin(), positions.end(),
                       [&output_mbrs](std::uint32_t a, std::uint32_t b) {
                         const Rect& ra = output_mbrs[a];
                         const Rect& rb = output_mbrs[b];
                         for (int d = 0; d < ra.dims(); ++d) {
                           if (ra.center(d) != rb.center(d)) {
                             return ra.center(d) < rb.center(d);
                           }
                         }
                         return a < b;
                       });
      break;
    }
    case TilingOrder::kRandom: {
      Rng rng(seed);
      rng.shuffle(positions);
      break;
    }
  }
  return positions;
}

std::uint64_t tile_read_incidences(const std::vector<std::vector<std::uint32_t>>& in_to_out,
                                   const std::vector<int>& tile_of_output) {
  std::uint64_t incidences = 0;
  std::unordered_set<int> tiles;
  for (const auto& outs : in_to_out) {
    tiles.clear();
    for (std::uint32_t o : outs) tiles.insert(tile_of_output[o]);
    incidences += tiles.size();
  }
  return incidences;
}

}  // namespace adr
