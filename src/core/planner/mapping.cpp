#include "core/planner/mapping.hpp"

#include <algorithm>

#include "storage/rtree.hpp"

namespace adr {

ChunkMapping build_mapping(const std::vector<Rect>& input_mbrs,
                           const std::vector<Rect>& output_mbrs,
                           const MapFunction* map) {
  ChunkMapping m;
  m.in_to_out.resize(input_mbrs.size());
  m.out_to_in.resize(output_mbrs.size());

  RTree out_index;
  out_index.bulk_load(output_mbrs);

  const int out_dims = output_mbrs.empty() ? 0 : output_mbrs.front().dims();
  IdentityMap identity(out_dims);
  const MapFunction* fn = map != nullptr ? map : &identity;

  for (std::uint32_t i = 0; i < input_mbrs.size(); ++i) {
    const Rect projected = fn->project(input_mbrs[i]);
    std::vector<std::uint32_t> outs = out_index.query(projected);
    for (std::uint32_t o : outs) m.out_to_in[o].push_back(i);
    m.in_to_out[i] = std::move(outs);
  }
  // out_to_in filled in ascending i already; in_to_out sorted by query().
  return m;
}

}  // namespace adr
