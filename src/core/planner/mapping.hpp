// Chunk-level mapping construction.
//
// Composes the user Map function with the output dataset's chunk layout:
// input chunk i contributes to output chunk o iff Map(mbr(i)) intersects
// mbr(o).  An R-tree over the selected output chunk MBRs makes this
// O(N log M) instead of O(N*M) — the planner's analogue of the "efficient
// inverse mapping function or efficient search method" the paper requires
// for step 15 of Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "core/attribute_space.hpp"
#include "core/planner/plan.hpp"

namespace adr {

/// Builds the mapping over *selected* chunk MBRs.  `map` may be null
/// (identity onto the output dimensionality).
ChunkMapping build_mapping(const std::vector<Rect>& input_mbrs,
                           const std::vector<Rect>& output_mbrs,
                           const MapFunction* map);

}  // namespace adr
