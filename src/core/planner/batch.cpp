#include "core/planner/batch.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/dataset.hpp"

namespace adr {

BatchSharedPlan build_batch_shared_plan(
    const std::vector<const PlannedQuery*>& members,
    const std::vector<std::vector<const Dataset*>>& member_inputs) {
  BatchSharedPlan shared;
  int max_tiles = 0;
  for (const PlannedQuery* pq : members) {
    max_tiles = std::max(max_tiles, pq->plan.num_tiles);
    shared.total_member_reads += pq->plan.total_reads;
  }
  shared.tiles.resize(static_cast<std::size_t>(max_tiles));

  std::unordered_set<ChunkId, ChunkIdHash> seen_anywhere;
  for (int tile = 0; tile < max_tiles; ++tile) {
    BatchTile& bt = shared.tiles[static_cast<std::size_t>(tile)];
    std::unordered_map<ChunkId, std::size_t, ChunkIdHash> row_of;
    for (std::size_t m = 0; m < members.size(); ++m) {
      const PlannedQuery& pq = *members[m];
      if (tile >= pq.plan.num_tiles) continue;  // member already done
      const std::vector<const Dataset*>& inputs = member_inputs[m];
      auto meta_of = [&](std::uint32_t pos) -> const ChunkMeta& {
        const std::size_t ordinal =
            pq.input_dataset_of.empty() ? 0 : pq.input_dataset_of[pos];
        return inputs[ordinal]->chunk(pq.selected_inputs[pos]);
      };
      for (const auto& node_tiles : pq.plan.node_tiles) {
        const NodeTilePlan& tp = node_tiles[static_cast<std::size_t>(tile)];
        for (std::uint32_t pos : tp.reads) {
          const ChunkMeta& meta = meta_of(pos);
          auto [it, inserted] = row_of.try_emplace(meta.id, bt.reads.size());
          if (inserted) {
            bt.reads.push_back(BatchSharedRead{meta.id, meta.disk, meta.bytes, {}});
          }
          BatchSharedRead& row = bt.reads[it->second];
          // A member reads a chunk at most once per tile (reads are
          // local to the chunk's one disk), so the back-check suffices.
          const auto ordinal = static_cast<std::uint16_t>(m);
          if (row.members.empty() || row.members.back() != ordinal) {
            row.members.push_back(ordinal);
          }
          if (seen_anywhere.insert(meta.id).second) {
            ++shared.unique_chunks;
            shared.unique_bytes += meta.bytes;
          }
        }
      }
    }
  }
  return shared;
}

BatchPlan plan_batch(const std::vector<PlanRequest>& requests) {
  BatchPlan batch;
  batch.members.reserve(requests.size());
  std::vector<std::vector<const Dataset*>> member_inputs;
  member_inputs.reserve(requests.size());
  for (const PlanRequest& request : requests) {
    batch.members.push_back(plan_query(request));
    std::vector<const Dataset*> inputs = {request.input};
    inputs.insert(inputs.end(), request.extra_inputs.begin(),
                  request.extra_inputs.end());
    member_inputs.push_back(std::move(inputs));
  }
  std::vector<const PlannedQuery*> member_ptrs;
  member_ptrs.reserve(batch.members.size());
  for (const PlannedQuery& pq : batch.members) member_ptrs.push_back(&pq);
  batch.shared = build_batch_shared_plan(member_ptrs, member_inputs);
  return batch;
}

}  // namespace adr
