#include "core/planner/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

namespace adr {
namespace {

/// True when node p holds a replica (owner copy or ghost) of output o.
bool hosts_replica(const QueryPlan& plan, int p, std::uint32_t o) {
  if (plan.owner_of_output[o] == p) return true;
  const auto& hosts = plan.ghost_hosts[o];
  return std::binary_search(hosts.begin(), hosts.end(), p);
}

double disk_time(const MachineParams& m, std::uint64_t bytes, std::uint64_t chunks) {
  return static_cast<double>(chunks) * m.disk_seek_s +
         static_cast<double>(bytes) / m.disk_bw_bytes_per_s;
}

double net_time(const MachineParams& m, std::uint64_t bytes, std::uint64_t msgs) {
  return static_cast<double>(msgs) * m.net_latency_s +
         static_cast<double>(bytes) / m.net_bw_bytes_per_s;
}

double comm_cpu(const MachineParams& m, std::uint64_t bytes) {
  if (m.comm_cpu_bytes_per_s <= 0.0) return 0.0;
  return static_cast<double>(bytes) / m.comm_cpu_bytes_per_s;
}

struct NodePhase {
  double disk = 0.0;
  double cpu = 0.0;
  double net_in = 0.0;
  double net_out = 0.0;

  /// Pipelined phase: the bottleneck resource dominates.
  double bottleneck() const {
    return std::max({disk, cpu, net_in, net_out});
  }
};

}  // namespace

CostEstimate estimate_cost(const QueryPlan& plan, const PlannerInput& in,
                           const ComputeCosts& costs, const MachineParams& machine) {
  assert(in.mapping != nullptr);
  const ChunkMapping& mapping = *in.mapping;
  const int nodes = plan.num_nodes;
  const int tiles = plan.num_tiles;

  CostEstimate est;
  std::vector<NodePhase> init_p(static_cast<size_t>(nodes));
  std::vector<NodePhase> lr_p(static_cast<size_t>(nodes));
  std::vector<NodePhase> gc_p(static_cast<size_t>(nodes));
  std::vector<NodePhase> oh_p(static_cast<size_t>(nodes));

  for (int t = 0; t < tiles; ++t) {
    for (auto& v : {&init_p, &lr_p, &gc_p, &oh_p}) {
      std::fill(v->begin(), v->end(), NodePhase{});
    }

    for (int n = 0; n < nodes; ++n) {
      const NodeTilePlan& tp = plan.node_tiles[static_cast<size_t>(n)][static_cast<size_t>(t)];
      auto& ip = init_p[static_cast<size_t>(n)];
      auto& lp = lr_p[static_cast<size_t>(n)];
      auto& gp = gc_p[static_cast<size_t>(n)];
      auto& op = oh_p[static_cast<size_t>(n)];

      // ---- initialization: read own output chunks, init all replicas,
      // broadcast to ghost hosts.
      std::uint64_t out_bytes = 0, bcast_bytes = 0, bcast_msgs = 0, ghost_in_bytes = 0;
      for (std::uint32_t o : tp.local_accum) {
        out_bytes += in.output_bytes[o];
        bcast_bytes += in.output_bytes[o] * plan.ghost_hosts[o].size();
        bcast_msgs += plan.ghost_hosts[o].size();
      }
      for (std::uint32_t o : tp.ghost_accum) ghost_in_bytes += in.output_bytes[o];
      ip.disk = disk_time(machine, out_bytes, tp.local_accum.size()) /
                std::max(1, machine.disks_per_node);
      ip.cpu = costs.init *
                   static_cast<double>(tp.local_accum.size() + tp.ghost_accum.size()) +
               comm_cpu(machine, bcast_bytes + ghost_in_bytes);
      ip.net_out = net_time(machine, bcast_bytes, bcast_msgs);
      ip.net_in = net_time(machine, ghost_in_bytes, tp.ghost_accum.size());

      // ---- local reduction: read local inputs; aggregate pairs hosted
      // here; forward inputs for non-hosted targets; receive forwards.
      std::uint64_t read_bytes = 0;
      for (std::uint32_t i : tp.reads) read_bytes += in.input_bytes[i];
      lp.disk = disk_time(machine, read_bytes, tp.reads.size()) /
                std::max(1, machine.disks_per_node);

      std::uint64_t pairs_local = 0, fwd_bytes = 0, fwd_msgs = 0;
      for (std::uint32_t i : tp.reads) {
        std::vector<int> dests;
        for (std::uint32_t o : mapping.in_to_out[i]) {
          if (plan.tile_of_output[o] != t) continue;
          if (hosts_replica(plan, n, o)) {
            ++pairs_local;
          } else {
            dests.push_back(plan.owner_of_output[o]);
          }
        }
        std::sort(dests.begin(), dests.end());
        dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
        fwd_msgs += dests.size();
        fwd_bytes += in.input_bytes[i] * dests.size();
      }
      // Pairs this node aggregates as the receiver of forwarded inputs.
      std::uint64_t pairs_recv = 0, recv_bytes = 0;
      for (std::uint32_t o : tp.local_accum) {
        for (std::uint32_t i : mapping.out_to_in[o]) {
          const int src = in.owner_of_input[i];
          if (src != n && !hosts_replica(plan, src, o)) ++pairs_recv;
        }
      }
      // Received bytes: expected_inputs messages of mean input size.
      if (tp.expected_inputs > 0 && !in.input_bytes.empty()) {
        double mean_in = 0.0;
        for (std::uint64_t b : in.input_bytes) mean_in += static_cast<double>(b);
        mean_in /= static_cast<double>(in.input_bytes.size());
        recv_bytes = static_cast<std::uint64_t>(mean_in * tp.expected_inputs);
      }
      lp.cpu = costs.lr_pair * static_cast<double>(pairs_local + pairs_recv) +
               comm_cpu(machine, fwd_bytes + recv_bytes);
      lp.net_out = net_time(machine, fwd_bytes, fwd_msgs);
      lp.net_in = net_time(machine, recv_bytes,
                           static_cast<std::uint64_t>(tp.expected_inputs));

      // ---- global combine: send ghosts to owners; merge received.
      std::uint64_t ghost_out_bytes = 0;
      for (std::uint32_t o : tp.ghost_accum) ghost_out_bytes += in.accum_bytes[o];
      std::uint64_t combine_in_bytes = 0;
      for (std::uint32_t o : tp.local_accum) {
        combine_in_bytes += in.accum_bytes[o] * plan.ghost_hosts[o].size();
      }
      gp.net_out = net_time(machine, ghost_out_bytes, tp.ghost_accum.size());
      gp.net_in = net_time(machine, combine_in_bytes,
                           static_cast<std::uint64_t>(tp.expected_combines));
      gp.cpu = costs.gc * static_cast<double>(tp.expected_combines) +
               comm_cpu(machine, ghost_out_bytes + combine_in_bytes);

      // ---- output handling: finalize and write local outputs.
      op.cpu = costs.oh * static_cast<double>(tp.local_accum.size());
      op.disk = disk_time(machine, out_bytes, tp.local_accum.size()) /
                std::max(1, machine.disks_per_node);
    }

    auto phase_time = [&](const std::vector<NodePhase>& v) {
      double mx = 0.0;
      for (const NodePhase& p : v) mx = std::max(mx, p.bottleneck());
      return mx;
    };
    est.init_s += phase_time(init_p);
    est.lr_s += phase_time(lr_p);
    est.gc_s += phase_time(gc_p);
    est.oh_s += phase_time(oh_p);
  }
  est.total_s = est.init_s + est.lr_s + est.gc_s + est.oh_s;
  return est;
}

std::string CostEstimate::to_string() const {
  std::ostringstream os;
  os << "total=" << total_s << "s (init=" << init_s << " lr=" << lr_s << " gc=" << gc_s
     << " oh=" << oh_s << ")";
  return os.str();
}

}  // namespace adr
