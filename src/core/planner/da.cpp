// Distributed Accumulator strategy — paper Figure 6.
//
// Accumulator chunks are never replicated: each lives only on its owner,
// and tile counters advance per processor (a processor starts a new tile
// only when *its own* accumulator budget fills).  The global tile count is
// the maximum over processors; nodes step tiles in lockstep and processors
// whose chunks ran out simply have empty tiles at the tail.
//
// Remote input chunks are forwarded to the accumulator owner during local
// reduction — populate_plan() derives those message counts from the empty
// ghost-host sets.
#include "core/planner/strategy.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace adr {

QueryPlan plan_da(const PlannerInput& in) {
  assert(in.valid());
  const std::size_t num_outputs = in.owner_of_output.size();

  QueryPlan plan;
  plan.strategy = StrategyKind::kDA;
  plan.num_nodes = in.num_nodes;
  plan.owner_of_output = in.owner_of_output;
  plan.tile_of_output.assign(num_outputs, 0);
  plan.ghost_hosts.assign(num_outputs, {});  // DA: no ghosts anywhere
  plan.node_tiles.assign(static_cast<size_t>(in.num_nodes), {});

  std::vector<std::uint64_t> memory(static_cast<size_t>(in.num_nodes),
                                    in.memory_per_node);
  std::vector<int> tile(static_cast<size_t>(in.num_nodes), 0);
  std::vector<bool> tile_has_chunks(static_cast<size_t>(in.num_nodes), false);

  for (std::uint32_t c : in.output_order) {
    const int p = in.owner_of_output[c];
    const std::uint64_t size = in.accum_bytes[c];
    auto& m = memory[static_cast<size_t>(p)];
    if (size > in.memory_per_node) {
      ADR_WARN("DA: accumulator chunk " << c << " exceeds node memory; gets own tile");
    }
    if (m < size && tile_has_chunks[static_cast<size_t>(p)]) {
      ++tile[static_cast<size_t>(p)];
      m = in.memory_per_node >= size ? in.memory_per_node - size : 0;
    } else {
      m = m >= size ? m - size : 0;
    }
    tile_has_chunks[static_cast<size_t>(p)] = true;
    plan.tile_of_output[c] = tile[static_cast<size_t>(p)];
  }

  int max_tile = -1;
  for (std::size_t p = 0; p < tile.size(); ++p) {
    if (tile_has_chunks[p]) max_tile = std::max(max_tile, tile[p]);
  }
  plan.num_tiles = max_tile + 1;

  populate_plan(plan, in);
  return plan;
}

}  // namespace adr
