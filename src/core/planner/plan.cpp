#include "core/planner/plan.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace adr {

std::size_t ChunkMapping::edge_count() const {
  std::size_t edges = 0;
  for (const auto& outs : in_to_out) edges += outs.size();
  return edges;
}

double ChunkMapping::mean_fan_out() const {
  if (in_to_out.empty()) return 0.0;
  return static_cast<double>(edge_count()) / static_cast<double>(in_to_out.size());
}

double ChunkMapping::mean_fan_in() const {
  if (out_to_in.empty()) return 0.0;
  return static_cast<double>(edge_count()) / static_cast<double>(out_to_in.size());
}

bool PlannerInput::valid() const {
  if (num_nodes < 1 || mapping == nullptr) return false;
  if (owner_of_input.size() != mapping->num_inputs()) return false;
  if (owner_of_output.size() != mapping->num_outputs()) return false;
  if (input_bytes.size() != owner_of_input.size()) return false;
  if (output_bytes.size() != owner_of_output.size()) return false;
  if (accum_bytes.size() != owner_of_output.size()) return false;
  if (output_order.size() != owner_of_output.size()) return false;
  for (int o : owner_of_output) {
    if (o < 0 || o >= num_nodes) return false;
  }
  for (int i : owner_of_input) {
    if (i < 0 || i >= num_nodes) return false;
  }
  return memory_per_node > 0;
}

void ensure_tiles(QueryPlan& plan, int tiles) {
  for (auto& node : plan.node_tiles) {
    while (static_cast<int>(node.size()) < tiles) node.emplace_back();
  }
  plan.num_tiles = std::max(plan.num_tiles, tiles);
}

void finalize_plan_stats(QueryPlan& plan, const PlannerInput& in) {
  plan.total_ghost_chunks = 0;
  plan.total_reads = 0;
  plan.total_read_bytes = 0;
  for (const auto& node : plan.node_tiles) {
    for (const auto& tile : node) {
      plan.total_ghost_chunks += tile.ghost_accum.size();
      plan.total_reads += tile.reads.size();
      for (std::uint32_t i : tile.reads) {
        plan.total_read_bytes += in.input_bytes[i];
      }
    }
  }
}

bool validate_plan(const QueryPlan& plan, const PlannerInput& in) {
  const std::size_t num_outputs = in.owner_of_output.size();
  if (plan.tile_of_output.size() != num_outputs) return false;
  if (plan.owner_of_output.size() != num_outputs) return false;
  if (plan.ghost_hosts.size() != num_outputs) return false;
  if (static_cast<int>(plan.node_tiles.size()) != plan.num_nodes) return false;

  // Every output chunk appears exactly once as a local accumulator, on
  // its owner, in its assigned tile.
  std::vector<int> seen(num_outputs, 0);
  for (int n = 0; n < plan.num_nodes; ++n) {
    for (std::size_t t = 0; t < plan.node_tiles[static_cast<size_t>(n)].size(); ++t) {
      const NodeTilePlan& tp = plan.node_tiles[static_cast<size_t>(n)][t];
      for (std::uint32_t o : tp.local_accum) {
        if (o >= num_outputs) return false;
        if (plan.owner_of_output[o] != n) return false;
        if (plan.tile_of_output[o] != static_cast<int>(t)) return false;
        ++seen[o];
      }
      for (std::uint32_t o : tp.ghost_accum) {
        if (o >= num_outputs) return false;
        if (plan.owner_of_output[o] == n) return false;  // ghosts never on owner
        const auto& hosts = plan.ghost_hosts[o];
        if (std::find(hosts.begin(), hosts.end(), n) == hosts.end()) return false;
      }
      for (std::uint32_t i : tp.reads) {
        if (i >= in.owner_of_input.size()) return false;
        if (in.owner_of_input[i] != n) return false;  // only local reads
      }
    }
  }
  for (std::size_t o = 0; o < num_outputs; ++o) {
    if (seen[o] != 1) return false;
  }
  return true;
}

std::string QueryPlan::summary() const {
  std::ostringstream os;
  os << to_string(strategy) << ": nodes=" << num_nodes << " tiles=" << num_tiles
     << " ghosts=" << total_ghost_chunks << " reads=" << total_reads
     << " read_bytes=" << total_read_bytes;
  return os.str();
}

}  // namespace adr
