// Hybrid strategy (paper section 6, future work).
//
// The paper observes that FRA/SRA and DA are two extremes — reduce where
// the *input* lives vs. reduce where the *output* lives — and suggests a
// hybrid, formulated as partitioning the bipartite input/output chunk
// graph.  This implementation uses the natural greedy relaxation of that
// formulation: for each output chunk, a processor hosts a ghost replica
// only when it contributes at least `threshold` of the chunk's incoming
// input bytes (heavy contributors reduce locally and combine once);
// light contributors forward their few input chunks to the owner instead.
// threshold -> 0 degenerates to SRA, threshold > 1 to DA.
#include "core/planner/strategy.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace adr {

QueryPlan plan_hybrid(const PlannerInput& in, double threshold) {
  assert(in.valid());
  assert(threshold > 0.0);
  const std::size_t num_outputs = in.owner_of_output.size();
  const ChunkMapping& mapping = *in.mapping;

  QueryPlan plan;
  plan.strategy = StrategyKind::kHybrid;
  plan.num_nodes = in.num_nodes;
  plan.owner_of_output = in.owner_of_output;
  plan.tile_of_output.assign(num_outputs, 0);
  plan.ghost_hosts.assign(num_outputs, {});
  plan.node_tiles.assign(static_cast<size_t>(in.num_nodes), {});

  // Decide replica hosts per output chunk by contribution weight.
  std::vector<std::uint64_t> contrib(static_cast<size_t>(in.num_nodes));
  for (std::uint32_t c = 0; c < num_outputs; ++c) {
    std::fill(contrib.begin(), contrib.end(), 0);
    std::uint64_t total = 0;
    for (std::uint32_t i : mapping.out_to_in[c]) {
      contrib[static_cast<size_t>(in.owner_of_input[i])] += in.input_bytes[i];
      total += in.input_bytes[i];
    }
    if (total == 0) continue;
    const int owner = in.owner_of_output[c];
    auto& hosts = plan.ghost_hosts[c];
    for (int p = 0; p < in.num_nodes; ++p) {
      if (p == owner) continue;
      const double share = static_cast<double>(contrib[static_cast<size_t>(p)]) /
                           static_cast<double>(total);
      if (share >= threshold) hosts.push_back(p);
    }
  }

  // Tile packing: SRA-style per-processor budgets over replica hosts.
  std::vector<std::uint64_t> memory(static_cast<size_t>(in.num_nodes),
                                    in.memory_per_node);
  int tile = 0;
  bool tile_has_chunks = false;
  for (std::uint32_t c : in.output_order) {
    const std::uint64_t size = in.accum_bytes[c];
    const int owner = in.owner_of_output[c];
    bool memory_full = memory[static_cast<size_t>(owner)] < size;
    for (int p : plan.ghost_hosts[c]) {
      if (memory[static_cast<size_t>(p)] < size) memory_full = true;
    }
    if (memory_full && tile_has_chunks) {
      ++tile;
      std::fill(memory.begin(), memory.end(), in.memory_per_node);
    }
    auto charge = [&](int p) {
      std::uint64_t& m = memory[static_cast<size_t>(p)];
      m = m >= size ? m - size : 0;
    };
    charge(owner);
    for (int p : plan.ghost_hosts[c]) charge(p);
    tile_has_chunks = true;
    plan.tile_of_output[c] = tile;
  }
  plan.num_tiles = num_outputs == 0 ? 0 : tile + 1;

  populate_plan(plan, in);
  return plan;
}

}  // namespace adr
