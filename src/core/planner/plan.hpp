// Query plans (output of the query planning service).
//
// A plan specifies, per back-end node and per tile, which accumulator
// chunks are resident (owned or ghost), which local input chunks to read,
// and how many messages of each kind to expect — everything the query
// execution service needs to run the four phases without any further
// global coordination.
//
// Chunk indices inside a plan are *positions within the query's selected
// chunk sets* (0..N-1 for inputs, 0..M-1 for outputs); the execution
// context translates them back to dataset chunk ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.hpp"

namespace adr {

/// Chunk-level input->output mapping for one query.
struct ChunkMapping {
  /// in_to_out[i] = sorted output positions input i contributes to.
  std::vector<std::vector<std::uint32_t>> in_to_out;
  /// out_to_in[o] = sorted input positions contributing to output o.
  std::vector<std::vector<std::uint32_t>> out_to_in;

  std::size_t num_inputs() const { return in_to_out.size(); }
  std::size_t num_outputs() const { return out_to_in.size(); }

  std::size_t edge_count() const;
  double mean_fan_out() const;  // avg outputs per input
  double mean_fan_in() const;   // avg inputs per output
};

/// Everything the strategies need to partition work.
struct PlannerInput {
  int num_nodes = 1;
  /// Per-node memory budget for accumulator chunks, in bytes.
  std::uint64_t memory_per_node = 0;

  /// Owning node of each selected input / output chunk (from placement).
  std::vector<int> owner_of_input;
  std::vector<int> owner_of_output;

  /// Sizes in bytes.
  std::vector<std::uint64_t> input_bytes;
  std::vector<std::uint64_t> output_bytes;
  /// Accumulator chunk sizes (output_bytes x aggregation multiplier).
  std::vector<std::uint64_t> accum_bytes;

  const ChunkMapping* mapping = nullptr;

  /// Output positions in tiling order (Hilbert order of MBR midpoints).
  std::vector<std::uint32_t> output_order;

  bool valid() const;
};

/// Per-(node, tile) work description.
struct NodeTilePlan {
  /// Output positions whose accumulator lives here as the owner copy.
  std::vector<std::uint32_t> local_accum;
  /// Output positions replicated here as ghost chunks (FRA/SRA).
  std::vector<std::uint32_t> ghost_accum;
  /// Local input positions to read from disk in this tile.
  std::vector<std::uint32_t> reads;
  /// DA: number of forwarded input-chunk messages to expect.
  int expected_inputs = 0;
  /// Ghost-init messages to expect (ghosts hosted here), when the
  /// aggregation initializes from existing output.
  int expected_ghost_inits = 0;
  /// Ghost-combine messages to expect (as owner of local_accum chunks).
  int expected_combines = 0;
};

struct QueryPlan {
  StrategyKind strategy = StrategyKind::kFRA;
  int num_nodes = 1;
  /// Global number of tile steps (max over nodes for DA).
  int num_tiles = 0;

  /// Tile step in which each output chunk is processed.  Global for
  /// FRA/SRA; owner-local for DA (all nodes step tiles in lockstep).
  std::vector<int> tile_of_output;
  /// Owning node per output chunk (copied from PlannerInput).
  std::vector<int> owner_of_output;
  /// Ghost-hosting nodes per output chunk, excluding the owner.
  std::vector<std::vector<int>> ghost_hosts;

  /// node_tiles[node][tile].
  std::vector<std::vector<NodeTilePlan>> node_tiles;

  // ---- plan-level statistics (inputs to the cost model & benches) ----
  std::uint64_t total_ghost_chunks = 0;  // sum over tiles/nodes of ghosts
  std::uint64_t total_reads = 0;         // chunk reads incl. re-reads
  std::uint64_t total_read_bytes = 0;

  std::string summary() const;
};

/// Shared helper: appends tile plan rows so that node_tiles[n] has at
/// least `tiles` entries for every node.
void ensure_tiles(QueryPlan& plan, int tiles);

/// Recomputes the plan-level statistics from the node_tiles contents.
void finalize_plan_stats(QueryPlan& plan, const PlannerInput& in);

/// Validates structural invariants (every output in exactly one tile &
/// one owner's local set; reads only of local inputs; ghost sets
/// consistent with ghost_hosts).  Aborts via assert in debug builds,
/// returns false on violation in release builds.
bool validate_plan(const QueryPlan& plan, const PlannerInput& in);

}  // namespace adr
