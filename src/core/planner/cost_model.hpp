// Analytic cost model for strategy selection (paper section 6).
//
// The paper's stated long-term goal is "simple but reasonably accurate
// cost models to guide and automate the selection of an appropriate
// strategy".  This model walks a plan tile by tile and, per phase, takes
// the bottleneck over nodes of the overlapped resources (disk, CPU,
// network in/out), mirroring how the pipelined execution service hides
// whichever resource is not critical.  Its accuracy against the simulator
// is measured by bench/ablation_cost_model.
#pragma once

#include <string>
#include <vector>

#include "core/planner/plan.hpp"

namespace adr {

/// Per-chunk computation costs in seconds (the paper's Table 1 reports
/// them in milliseconds as I-LR-GC-OH).  lr is charged per intersecting
/// (input chunk, accumulator chunk) pair.
struct ComputeCosts {
  double init = 0.0;
  double lr_pair = 0.0;
  double gc = 0.0;
  double oh = 0.0;
};

/// Machine parameters mirroring sim::ClusterConfig.
struct MachineParams {
  double disk_seek_s = 0.010;
  double disk_bw_bytes_per_s = 10.0 * 1024 * 1024;
  double net_latency_s = 40e-6;
  double net_bw_bytes_per_s = 110.0 * 1024 * 1024;
  /// CPU cost of the messaging stack per sent/received byte (0 = free).
  double comm_cpu_bytes_per_s = 0.0;
  int disks_per_node = 1;
};

struct CostEstimate {
  double total_s = 0.0;
  double init_s = 0.0;
  double lr_s = 0.0;
  double gc_s = 0.0;
  double oh_s = 0.0;

  std::string to_string() const;
};

/// Estimates execution time for `plan` given the selection context.
CostEstimate estimate_cost(const QueryPlan& plan, const PlannerInput& in,
                           const ComputeCosts& costs, const MachineParams& machine);

}  // namespace adr
