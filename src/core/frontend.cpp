#include "core/frontend.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <stdexcept>

#include "common/logging.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"
#include "storage/catalog.hpp"
#include "storage/loader.hpp"

namespace adr {

Repository::Repository(const RepositoryConfig& config) : config_(config) {
  if (config_.num_nodes < 1 || config_.disks_per_node < 1) {
    throw std::invalid_argument("Repository: bad machine shape");
  }
  if (config_.storage_dir.empty()) {
    store_ = std::make_unique<MemoryChunkStore>(config_.total_disks());
  } else {
    store_ = std::make_unique<FileChunkStore>(
        config_.storage_dir, config_.total_disks(), config_.open_existing);
  }
}

std::uint32_t Repository::create_dataset(const std::string& name, const Rect& domain,
                                         std::vector<Chunk> chunks,
                                         DeclusterMethod method) {
  const std::uint32_t id = next_dataset_id_++;
  LoadOptions options;
  options.decluster.method = method;
  options.decluster.num_disks = config_.total_disks();
  options.store_payloads = config_.store_payloads;
  Dataset ds = load_dataset(id, name, domain, std::move(chunks), *store_, options);
  if (config_.index != "rtree") {
    ds.build_index(indices_.create(config_.index));
  }
  ADR_INFO("loaded dataset '" << name << "' id=" << id << " chunks=" << ds.num_chunks()
                              << " bytes=" << ds.total_bytes() << " index="
                              << ds.index()->name());
  datasets_.emplace(id, std::move(ds));
  return id;
}

const Dataset& Repository::dataset(std::uint32_t id) const {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) throw std::out_of_range("Repository: unknown dataset");
  return it->second;
}

const Dataset* Repository::find_dataset(const std::string& name) const {
  for (const auto& [id, ds] : datasets_) {
    if (ds.name() == name) return &ds;
  }
  return nullptr;
}

QueryResult Repository::submit(const Query& query, const ComputeCosts& costs,
                               const ExecOptions& exec_options) {
  const Dataset& input = dataset(query.input_dataset);
  const Dataset& output = dataset(query.output_dataset);
  std::vector<const Dataset*> all_inputs = {&input};
  for (std::uint32_t id : query.extra_input_datasets) {
    all_inputs.push_back(&dataset(id));
  }

  const MapFunction* map = nullptr;
  if (!query.map_function.empty()) {
    map = spaces_.find_map(query.map_function);
    if (map == nullptr) {
      throw std::invalid_argument("submit: unknown map function " + query.map_function);
    }
  }
  const AggregationOp* op = nullptr;
  if (!query.aggregation.empty()) {
    op = aggregations_.find(query.aggregation);
    if (op == nullptr) {
      throw std::invalid_argument("submit: unknown aggregation " + query.aggregation);
    }
  }

  PlanRequest request;
  request.input = &input;
  request.extra_inputs.assign(all_inputs.begin() + 1, all_inputs.end());
  request.output = &output;
  request.range = query.range;
  request.map = map;
  request.op = op;
  request.num_nodes = config_.num_nodes;
  request.disks_per_node = config_.disks_per_node;
  request.memory_per_node = config_.memory_per_node;
  request.strategy = query.strategy;
  request.order = query.tiling_order;
  request.seed = query.seed;
  request.costs = costs;
  request.machine.disk_seek_s = sim::to_seconds(config_.machine.disk.seek);
  request.machine.disk_bw_bytes_per_s = config_.machine.disk.bandwidth_bytes_per_sec;
  request.machine.net_latency_s = sim::to_seconds(config_.machine.link.latency);
  request.machine.net_bw_bytes_per_s = config_.machine.link.bandwidth_bytes_per_sec;
  request.machine.comm_cpu_bytes_per_s = config_.machine.link.cpu_overhead_bytes_per_sec;
  request.machine.disks_per_node = config_.disks_per_node;

  PlannedQuery planned = plan_query(request);

  ExecOptions options = exec_options;
  if (config_.backend == RepositoryConfig::Backend::kSimulated &&
      options.comm_cpu_bytes_per_sec == 0.0) {
    options.comm_cpu_bytes_per_sec = config_.machine.link.cpu_overhead_bytes_per_sec;
  }

  // Output delivery: write back, return to the client, or discard.
  std::mutex sink_mutex;
  std::vector<Chunk> delivered;
  const OutputDelivery delivery =
      query.write_output ? query.delivery : OutputDelivery::kDiscard;
  switch (delivery) {
    case OutputDelivery::kWriteBack:
      options.write_output = options.write_output && true;
      break;
    case OutputDelivery::kReturnToClient:
      options.write_output = false;
      options.output_sink = [&sink_mutex, &delivered](Chunk&& chunk) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        delivered.push_back(std::move(chunk));
      };
      break;
    case OutputDelivery::kDiscard:
      options.write_output = false;
      break;
  }

  QueryResult result;
  result.strategy = planned.chosen;
  result.tiles = planned.plan.num_tiles;
  result.ghost_chunks = planned.plan.total_ghost_chunks;
  result.chunk_reads = planned.plan.total_reads;
  result.estimates = planned.estimates;

  if (config_.backend == RepositoryConfig::Backend::kSimulated) {
    sim::ClusterConfig machine = config_.machine;
    machine.num_nodes = config_.num_nodes;
    machine.disks_per_node = config_.disks_per_node;
    machine.accumulator_memory_bytes = config_.memory_per_node;
    sim::SimCluster cluster(machine);
    SimExecutor executor(&cluster, config_.store_payloads ? store_.get() : nullptr);
    result.stats = execute_query(executor, planned, all_inputs, output, op, costs,
                                 config_.disks_per_node, options);
  } else {
    ThreadExecutor executor(config_.num_nodes, config_.disks_per_node, store_.get());
    result.stats = execute_query(executor, planned, all_inputs, output, op, costs,
                                 config_.disks_per_node, options);
  }

  if (!delivered.empty()) {
    std::sort(delivered.begin(), delivered.end(),
              [](const Chunk& a, const Chunk& b) { return a.meta().id < b.meta().id; });
    result.outputs = std::move(delivered);
  }
  return result;
}

std::vector<QueryResult> Repository::submit_all(const std::vector<Query>& queries,
                                                const ComputeCosts& costs,
                                                const ExecOptions& exec_options) {
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& q : queries) results.push_back(submit(q, costs, exec_options));
  return results;
}

std::uint64_t QuerySubmissionService::enqueue(Query query, ComputeCosts costs) {
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(Pending{ticket, std::move(query), costs});
  return ticket;
}

std::size_t QuerySubmissionService::process_all() {
  std::size_t ran = 0;
  for (Pending& p : queue_) {
    results_[p.ticket] = repository_->submit(p.query, p.costs);
    ++ran;
  }
  queue_.clear();
  return ran;
}

const QueryResult* QuerySubmissionService::result(std::uint64_t ticket) const {
  auto it = results_.find(ticket);
  return it == results_.end() ? nullptr : &it->second;
}

std::optional<Chunk> Repository::read_chunk(std::uint32_t dataset_id,
                                            std::uint32_t index) const {
  const Dataset& ds = dataset(dataset_id);
  const ChunkMeta& meta = ds.chunk(index);
  return store_->get(meta.disk, meta.id);
}

void Repository::save_catalog(const std::filesystem::path& path) const {
  std::vector<const Dataset*> all;
  all.reserve(datasets_.size());
  for (const auto& [id, ds] : datasets_) all.push_back(&ds);
  save_catalog_file(path, all);
}

std::size_t Repository::load_catalog(const std::filesystem::path& path) {
  std::vector<Dataset> loaded = load_catalog_file(path);
  std::size_t registered = 0;
  for (Dataset& ds : loaded) {
    for (const ChunkMeta& c : ds.chunks()) {
      if (c.disk < 0 || c.disk >= config_.total_disks()) {
        throw std::invalid_argument("load_catalog: dataset '" + ds.name() +
                                    "' was declustered over a different farm");
      }
    }
    const std::uint32_t id = ds.id();
    next_dataset_id_ = std::max(next_dataset_id_, id + 1);
    if (config_.index != "rtree") ds.build_index(indices_.create(config_.index));
    datasets_.insert_or_assign(id, std::move(ds));
    ++registered;
  }
  return registered;
}

}  // namespace adr
