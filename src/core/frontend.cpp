#include "core/frontend.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/query_cost.hpp"
#include "obs/trace.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"
#include "storage/catalog.hpp"
#include "storage/loader.hpp"

namespace adr {
namespace {

// Cumulative process-wide series (metric catalog: docs/observability.md).
// References are resolved once; recording is relaxed-atomic only.

struct SubmitMetrics {
  obs::Counter& count;
  obs::Counter& errors;
  obs::Histogram& latency;
  obs::Histogram& plan;
  /// End-to-end latency split by the strategy the planner chose
  /// (indexed by StrategyKind kFRA..kHybrid).
  std::array<obs::Histogram*, 4> by_strategy;
};

SubmitMetrics& submit_metrics() {
  static SubmitMetrics m{obs::metrics().counter("submit.count"),
                         obs::metrics().counter("submit.errors"),
                         obs::metrics().histogram("submit.latency_s"),
                         obs::metrics().histogram("submit.plan_s"),
                         {&obs::metrics().histogram("submit.latency_s.fra"),
                          &obs::metrics().histogram("submit.latency_s.sra"),
                          &obs::metrics().histogram("submit.latency_s.da"),
                          &obs::metrics().histogram("submit.latency_s.hybrid")}};
  return m;
}

struct SchedulerMetrics {
  obs::Counter& enqueued;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& shed;
  obs::Gauge& queue_depth;
  obs::Gauge& in_flight;
  obs::Histogram& queue_wait;
  obs::Counter& gangs_formed;
};

SchedulerMetrics& scheduler_metrics() {
  static SchedulerMetrics m{obs::metrics().counter("scheduler.enqueued"),
                            obs::metrics().counter("scheduler.rejected"),
                            obs::metrics().counter("scheduler.completed"),
                            obs::metrics().counter("scheduler.failed"),
                            obs::metrics().counter("scheduler.shed"),
                            obs::metrics().gauge("scheduler.queue_depth"),
                            obs::metrics().gauge("scheduler.in_flight"),
                            obs::metrics().histogram("scheduler.queue_wait_s"),
                            obs::metrics().counter("scheduler.gangs_formed")};
  return m;
}

// Batch / gang execution series (catalog: docs/batching.md).
struct BatchMetrics {
  obs::Counter& gangs;
  obs::Counter& members;
  obs::Counter& shared_hits;
  obs::Counter& cold_reads;
  obs::Counter& saved_reads;
  obs::Counter& cap_rejections;
  obs::Histogram& gang_size;
};

BatchMetrics& batch_metrics() {
  static BatchMetrics m{
      obs::metrics().counter("batch.gangs"),
      obs::metrics().counter("batch.members"),
      obs::metrics().counter("batch.shared_hits"),
      obs::metrics().counter("batch.cold_reads"),
      obs::metrics().counter("batch.saved_reads"),
      obs::metrics().counter("batch.cap_rejections"),
      obs::metrics().histogram("batch.gang_size",
                               {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0})};
  return m;
}

// Per-query cost ledger rollup (fields: obs/query_cost.hpp): each
// successful submit adds its itemized bill to these process-wide series,
// so aggregate spend by temperature stays queryable after individual
// results are gone.
struct CostMetrics {
  obs::Counter& queries;
  obs::Counter& cold_chunks;
  obs::Counter& cold_bytes;
  obs::Counter& cached_chunks;
  obs::Counter& cached_bytes;
  obs::Counter& marginal_chunks;
  obs::Counter& marginal_bytes_saved;
  obs::Counter& aggregate_pairs;
  obs::Histogram& queue_wait;
  obs::Histogram& exec_wall;
  obs::Histogram& thread_cpu;
};

CostMetrics& cost_metrics() {
  static CostMetrics m{obs::metrics().counter("query.cost.queries"),
                       obs::metrics().counter("query.cost.cold_chunks"),
                       obs::metrics().counter("query.cost.cold_bytes"),
                       obs::metrics().counter("query.cost.cached_chunks"),
                       obs::metrics().counter("query.cost.cached_bytes"),
                       obs::metrics().counter("query.cost.marginal_chunks"),
                       obs::metrics().counter("query.cost.marginal_bytes_saved"),
                       obs::metrics().counter("query.cost.aggregate_pairs"),
                       obs::metrics().histogram("query.cost.queue_wait_s"),
                       obs::metrics().histogram("query.cost.exec_wall_s"),
                       obs::metrics().histogram("query.cost.thread_cpu_s")};
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void record_submit_success(QueryResult& result, double elapsed_s) {
  SubmitMetrics& m = submit_metrics();
  m.count.add();
  m.latency.observe(elapsed_s);
  const int strategy = static_cast<int>(result.strategy);
  if (strategy >= 0 && strategy < static_cast<int>(m.by_strategy.size())) {
    m.by_strategy[static_cast<std::size_t>(strategy)]->observe(elapsed_s);
  }
  // Finalize the cost ledger: fold in the execution stats and the queue
  // wait the scheduler deposited thread-locally, then roll the bill into
  // the query.cost.* series.
  result.cost.aggregate_pairs = result.stats.total_lr_pairs();
  result.cost.exec_wall_s = result.stats.total_s;
  result.cost.thread_cpu_s = result.stats.thread_cpu_s;
  result.cost.gang_size = result.gang_size;
  result.cost.queue_wait_s = obs::cost_queue_wait();
  CostMetrics& c = cost_metrics();
  c.queries.add();
  c.cold_chunks.add(result.cost.cold_chunks);
  c.cold_bytes.add(result.cost.cold_bytes);
  c.cached_chunks.add(result.cost.cached_chunks);
  c.cached_bytes.add(result.cost.cached_bytes);
  c.marginal_chunks.add(result.cost.marginal_chunks);
  c.marginal_bytes_saved.add(result.cost.marginal_bytes_saved);
  c.aggregate_pairs.add(result.cost.aggregate_pairs);
  c.queue_wait.observe(result.cost.queue_wait_s);
  c.exec_wall.observe(result.cost.exec_wall_s);
  c.thread_cpu.observe(result.cost.thread_cpu_s);
}

}  // namespace

namespace {
RepositoryConfig merge_runtime(RepositoryConfig config, const RuntimeConfig& runtime) {
  runtime.check();
  config.executor_pool_size = runtime.executor_pool_size;
  return config;
}
}  // namespace

Repository::Repository(const RepositoryConfig& config, const RuntimeConfig& runtime)
    : Repository(merge_runtime(config, runtime)) {}

Repository::Repository(const RepositoryConfig& config) : config_(config) {
  if (config_.num_nodes < 1 || config_.disks_per_node < 1) {
    throw std::invalid_argument("Repository: bad machine shape");
  }
  executor_pool_limit_ = std::max<std::size_t>(1, config_.executor_pool_size);
  if (config_.storage_dir.empty()) {
    store_ = std::make_unique<MemoryChunkStore>(config_.total_disks());
  } else {
    store_ = std::make_unique<FileChunkStore>(
        config_.storage_dir, config_.total_disks(), config_.open_existing);
  }
  // The chunk cache serves the real (thread) backend: repeated queries
  // over warm regions and FRA tile-boundary re-reads stop paying storage
  // latency.  The simulated backend charges modelled I/O times that a
  // real cache must not short-circuit.
  if (config_.backend == RepositoryConfig::Backend::kThreads &&
      config_.chunk_cache_bytes_per_node > 0) {
    const std::uint64_t per_disk = std::max<std::uint64_t>(
        1, config_.chunk_cache_bytes_per_node /
               static_cast<std::uint64_t>(config_.disks_per_node));
    cache_ = std::make_unique<CachingChunkStore>(*store_, per_disk);
  }
  // The marginal cache reuses *aggregates* where the chunk cache reuses
  // bytes; it needs real payloads to have real partials, and like the
  // chunk cache it must not short-circuit the simulated backend's
  // modelled I/O.
  if (config_.backend == RepositoryConfig::Backend::kThreads &&
      config_.store_payloads && config_.marginal_cache_bytes > 0) {
    marginal_cache_ = std::make_unique<MarginalCache>(config_.marginal_cache_bytes);
    // Route every store write through the invalidating decorator so
    // out-of-band put/erase (repo.store() callers) bump data versions
    // just like query write-back does — no stale partial survives a
    // visible payload change.
    invalidating_store_ = std::make_unique<MarginalInvalidatingStore>(
        cache_ ? static_cast<ChunkStore&>(*cache_) : *store_, *marginal_cache_);
  }
}

ChunkCacheStats Repository::chunk_cache_stats() const {
  return cache_ ? cache_->stats() : ChunkCacheStats{};
}

MarginalCacheStats Repository::marginal_cache_stats() const {
  return marginal_cache_ ? marginal_cache_->stats() : MarginalCacheStats{};
}

ThreadExecutorPool& Repository::thread_pool() {
  std::lock_guard lock(executor_pool_mutex_);
  if (executor_pool_ == nullptr) {
    executor_pool_ = std::make_unique<ThreadExecutorPool>(
        config_.num_nodes, config_.disks_per_node, &active_store(),
        executor_pool_limit_);
  }
  return *executor_pool_;
}

ThreadExecutorPool::Stats Repository::executor_pool_stats() const {
  std::lock_guard lock(executor_pool_mutex_);
  return executor_pool_ ? executor_pool_->stats() : ThreadExecutorPool::Stats{};
}

void Repository::set_executor_pool_limit(std::size_t limit, bool warm) {
  if (limit < 1) limit = 1;
  ThreadExecutorPool* pool = nullptr;
  {
    std::lock_guard lock(executor_pool_mutex_);
    executor_pool_limit_ = limit;
    pool = executor_pool_.get();
  }
  // Pool calls happen outside executor_pool_mutex_: set_max_resident may
  // join executor threads and prewarm spawns them — neither belongs
  // under the lock concurrent submits take for every lease.
  if (pool != nullptr) {
    pool->set_max_resident(limit);
    if (warm) pool->prewarm(limit);
  }
}

std::uint32_t Repository::create_dataset(const std::string& name, const Rect& domain,
                                         std::vector<Chunk> chunks,
                                         DeclusterMethod method) {
  std::unique_lock lock(catalog_mutex_);
  const std::uint32_t id = next_dataset_id_++;
  LoadOptions options;
  options.decluster.method = method;
  options.decluster.num_disks = config_.total_disks();
  options.store_payloads = config_.store_payloads;
  Dataset ds = load_dataset(id, name, domain, std::move(chunks), active_store(), options);
  if (config_.index != "rtree") {
    ds.build_index(indices_.create(config_.index));
  }
  ADR_INFO("loaded dataset '" << name << "' id=" << id << " chunks=" << ds.num_chunks()
                              << " bytes=" << ds.total_bytes() << " index="
                              << ds.index()->name());
  datasets_.emplace(id, std::move(ds));
  return id;
}

const Dataset& Repository::dataset(std::uint32_t id) const {
  std::shared_lock lock(catalog_mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) throw std::out_of_range("Repository: unknown dataset");
  return it->second;
}

const Dataset* Repository::find_dataset(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  for (const auto& [id, ds] : datasets_) {
    if (ds.name() == name) return &ds;
  }
  return nullptr;
}

std::size_t Repository::num_datasets() const {
  std::shared_lock lock(catalog_mutex_);
  return datasets_.size();
}

QueryResult Repository::submit(const Query& query, const ComputeCosts& costs,
                               const ExecOptions& exec_options) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    QueryResult result;
    {
      // Shared lock for the whole plan+execute: concurrent submits proceed
      // in parallel while catalog mutations (create_dataset / load_catalog)
      // wait.
      std::shared_lock lock(catalog_mutex_);
      result = submit_locked(query, costs, exec_options);
    }
    record_submit_success(result, seconds_since(t0));
    return result;
  } catch (...) {
    submit_metrics().errors.add();
    throw;
  }
}

Repository::Prepared Repository::prepare_locked(const Query& query,
                                                const ComputeCosts& costs) const {
  auto lookup = [this](std::uint32_t id) -> const Dataset& {
    auto it = datasets_.find(id);
    if (it == datasets_.end()) throw std::out_of_range("Repository: unknown dataset");
    return it->second;
  };
  Prepared p;
  p.input = &lookup(query.input_dataset);
  p.output = &lookup(query.output_dataset);
  p.all_inputs = {p.input};
  for (std::uint32_t id : query.extra_input_datasets) {
    p.all_inputs.push_back(&lookup(id));
  }
  if (!query.range.valid()) {
    throw std::invalid_argument("submit: invalid query range");
  }

  if (!query.map_function.empty()) {
    p.map = spaces_.find_map(query.map_function);
    if (p.map == nullptr) {
      throw std::invalid_argument("submit: unknown map function " + query.map_function);
    }
  }
  if (!query.aggregation.empty()) {
    p.op = aggregations_.find(query.aggregation);
    if (p.op == nullptr) {
      throw std::invalid_argument("submit: unknown aggregation " + query.aggregation);
    }
  }

  PlanRequest& request = p.request;
  request.input = p.input;
  request.extra_inputs.assign(p.all_inputs.begin() + 1, p.all_inputs.end());
  request.output = p.output;
  request.range = query.range;
  request.map = p.map;
  request.op = p.op;
  request.num_nodes = config_.num_nodes;
  request.disks_per_node = config_.disks_per_node;
  request.memory_per_node = config_.memory_per_node;
  request.strategy = query.strategy;
  request.order = query.tiling_order;
  request.seed = query.seed;
  request.costs = costs;
  request.machine.disk_seek_s = sim::to_seconds(config_.machine.disk.seek);
  request.machine.disk_bw_bytes_per_s = config_.machine.disk.bandwidth_bytes_per_sec;
  request.machine.net_latency_s = sim::to_seconds(config_.machine.link.latency);
  request.machine.net_bw_bytes_per_s = config_.machine.link.bandwidth_bytes_per_sec;
  request.machine.comm_cpu_bytes_per_s = config_.machine.link.cpu_overhead_bytes_per_sec;
  request.machine.disks_per_node = config_.disks_per_node;
  return p;
}

PlannedQuery Repository::plan_prepared(const Prepared& prepared,
                                       QuerySelection* selection) const {
  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  const std::uint64_t qid = obs::trace_query();

  const auto plan_t0 = std::chrono::steady_clock::now();
  const std::uint64_t plan_ts_us = tracing ? tr.now_us() : 0;
  PlannedQuery planned;
  try {
    planned = selection != nullptr
                  ? plan_query(prepared.request, std::move(*selection))
                  : plan_query(prepared.request);
  } catch (const StatusError&) {
    throw;
  } catch (const std::exception& e) {
    // Argument-shaped problems were rejected in prepare_locked; what the
    // planning service itself refuses is a distinct failure class.
    throw StatusError(StatusCode::kPlanRejected, e.what());
  }
  submit_metrics().plan.observe(seconds_since(plan_t0));
  if (tracing) {
    tr.record({"planned", "serving", qid, plan_ts_us, tr.now_us() - plan_ts_us,
               static_cast<std::uint32_t>(qid), -1});
  }
  return planned;
}

Repository::MarginalConsult Repository::consult_marginals_locked(
    const Prepared& prepared) const {
  MarginalConsult mc;
  // Cacheability gate: a real aggregation whose accumulators depend only
  // on the contributing inputs.  An op that folds the *existing* output
  // chunk into initialize() has partials we cannot key (the output bytes
  // mutate outside the signature), so such queries bypass the cache.
  if (marginal_cache_ == nullptr || prepared.op == nullptr ||
      prepared.op->requires_existing_output()) {
    return mc;
  }

  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  const std::uint64_t qid = obs::trace_query();
  const std::uint64_t ts_us = tracing ? tr.now_us() : 0;

  try {
    mc.original = select_query_chunks(prepared.request);
  } catch (const std::exception& e) {
    // Same failure class plan_prepared would assign: the planning
    // service (selection is its first phase) refused the query.
    throw StatusError(StatusCode::kPlanRejected, e.what());
  }
  mc.active = true;

  // Signatures: aggregation + map names, output chunk identity under its
  // shape version, and the sorted contributing input set under each
  // input dataset's data version.  Sorting canonicalizes away selection
  // order, so any query inducing the same contributing set hits.
  const std::string map_name =
      prepared.map != nullptr ? prepared.map->name() : "identity";
  const MarginalVersions out_ver = marginal_cache_->versions(prepared.output->id());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> input_ver;
  input_ver.reserve(prepared.all_inputs.size());
  for (const Dataset* ds : prepared.all_inputs) {
    input_ver.emplace_back(ds->id(), marginal_cache_->versions(ds->id()).data);
  }

  const QuerySelection& sel = mc.original;
  const std::size_t num_outputs = sel.selected_outputs.size();
  mc.keys.reserve(num_outputs);
  std::vector<char> cached(num_outputs, 0);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> contrib;  // (ds<<32|chunk, ver)
  for (std::size_t o = 0; o < num_outputs; ++o) {
    MarginalSignature sig;
    sig.mix(prepared.op->name());
    sig.mix(map_name);
    sig.mix(prepared.output->id());
    sig.mix(out_ver.shape);
    sig.mix(sel.selected_outputs[o]);
    contrib.clear();
    for (std::uint32_t pos : sel.mapping.out_to_in[o]) {
      const auto& [ds_id, data_ver] = input_ver[sel.input_dataset_of[pos]];
      contrib.emplace_back((static_cast<std::uint64_t>(ds_id) << 32) |
                               sel.selected_inputs[pos],
                           data_ver);
    }
    std::sort(contrib.begin(), contrib.end());
    sig.mix(static_cast<std::uint64_t>(contrib.size()));
    for (const auto& [packed, data_ver] : contrib) {
      sig.mix(packed);
      sig.mix(data_ver);
    }
    mc.keys.push_back(sig.key());
    if (auto partial = marginal_cache_->lookup(mc.keys.back())) {
      cached[o] = 1;
      mc.hits.emplace_back(static_cast<std::uint32_t>(o), std::move(*partial));
    }
  }

  // Reduce the selection to the misses.  An input is dropped — and its
  // bytes counted as saved — when every output it feeds was served; an
  // input feeding nothing stays, matching the cold plan exactly.
  if (mc.hits.size() == num_outputs) {
    mc.fully_cached = true;
    for (std::size_t pos = 0; pos < sel.selected_inputs.size(); ++pos) {
      if (sel.mapping.in_to_out[pos].empty()) continue;
      const Dataset* ds = prepared.all_inputs[sel.input_dataset_of[pos]];
      mc.bytes_saved += ds->chunk(sel.selected_inputs[pos]).bytes;
    }
  } else if (mc.hits.empty()) {
    mc.reduced = mc.original;
    mc.executed_orig.resize(num_outputs);
    for (std::size_t o = 0; o < num_outputs; ++o) {
      mc.executed_orig[o] = static_cast<std::uint32_t>(o);
    }
  } else {
    std::vector<std::uint32_t> new_out(num_outputs, 0);  // orig -> reduced
    for (std::size_t o = 0; o < num_outputs; ++o) {
      if (cached[o]) continue;
      new_out[o] = static_cast<std::uint32_t>(mc.executed_orig.size());
      mc.executed_orig.push_back(static_cast<std::uint32_t>(o));
      mc.reduced.selected_outputs.push_back(sel.selected_outputs[o]);
    }
    std::vector<std::uint32_t> new_in(sel.selected_inputs.size(), 0);
    for (std::size_t pos = 0; pos < sel.selected_inputs.size(); ++pos) {
      const auto& outs = sel.mapping.in_to_out[pos];
      const bool needed =
          outs.empty() ||
          std::any_of(outs.begin(), outs.end(),
                      [&](std::uint32_t o) { return !cached[o]; });
      if (!needed) {
        const Dataset* ds = prepared.all_inputs[sel.input_dataset_of[pos]];
        mc.bytes_saved += ds->chunk(sel.selected_inputs[pos]).bytes;
        continue;
      }
      new_in[pos] = static_cast<std::uint32_t>(mc.reduced.selected_inputs.size());
      mc.reduced.selected_inputs.push_back(sel.selected_inputs[pos]);
      mc.reduced.input_dataset_of.push_back(sel.input_dataset_of[pos]);
      std::vector<std::uint32_t> kept;
      for (std::uint32_t o : outs) {
        if (!cached[o]) kept.push_back(new_out[o]);
      }
      mc.reduced.mapping.in_to_out.push_back(std::move(kept));
    }
    mc.reduced.mapping.out_to_in.reserve(mc.executed_orig.size());
    for (std::uint32_t orig : mc.executed_orig) {
      std::vector<std::uint32_t> ins;
      ins.reserve(sel.mapping.out_to_in[orig].size());
      for (std::uint32_t pos : sel.mapping.out_to_in[orig]) {
        ins.push_back(new_in[pos]);
      }
      mc.reduced.mapping.out_to_in.push_back(std::move(ins));
    }
  }

  if (tracing) {
    tr.record({"marginal", "serving", qid, ts_us, tr.now_us() - ts_us,
               static_cast<std::uint32_t>(qid), -1});
  }
  return mc;
}

QueryResult Repository::finalize_from_cache_locked(const Query& query,
                                                   const Prepared& prepared,
                                                   MarginalConsult& consult,
                                                   const ExecOptions& exec_options) {
  QueryResult result;
  // No plan ran; report the requested strategy (kAuto never chose one).
  result.strategy =
      query.strategy == StrategyKind::kAuto ? StrategyKind::kFRA : query.strategy;
  result.marginal_hits = consult.hits.size();
  result.cost.marginal_chunks = consult.hits.size();
  result.cost.marginal_bytes_saved = consult.bytes_saved;

  const OutputDelivery delivery =
      query.write_output ? query.delivery : OutputDelivery::kDiscard;
  bool wrote_back = false;
  for (auto& [orig, partial] : consult.hits) {
    const ChunkMeta& meta =
        prepared.output->chunk(consult.original.selected_outputs[orig]);
    std::vector<std::byte> payload = prepared.op->output(meta, partial);
    switch (delivery) {
      case OutputDelivery::kWriteBack:
        if (exec_options.write_output) {
          active_store().put(Chunk(meta, std::move(payload)));
          wrote_back = true;
        }
        break;
      case OutputDelivery::kReturnToClient:
        result.outputs.emplace_back(meta, std::move(payload));
        break;
      case OutputDelivery::kDiscard:
        break;
    }
  }
  if (!result.outputs.empty()) {
    std::sort(result.outputs.begin(), result.outputs.end(),
              [](const Chunk& a, const Chunk& b) { return a.meta().id < b.meta().id; });
  }
  if (wrote_back) marginal_cache_->invalidate_data(query.output_dataset);
  marginal_cache_->note_bytes_saved(consult.bytes_saved);
  return result;
}

QueryResult Repository::execute_planned_locked(const Query& query,
                                               const Prepared& prepared,
                                               PlannedQuery&& planned,
                                               const ComputeCosts& costs,
                                               const ExecOptions& exec_options,
                                               Executor* gang_executor,
                                               MarginalConsult* marginal) {
  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  const std::uint64_t qid = obs::trace_query();

  ExecOptions options = exec_options;
  if (config_.backend == RepositoryConfig::Backend::kSimulated &&
      options.comm_cpu_bytes_per_sec == 0.0) {
    options.comm_cpu_bytes_per_sec = config_.machine.link.cpu_overhead_bytes_per_sec;
  }

  // Output delivery: write back, return to the client, or discard.
  std::mutex sink_mutex;
  std::vector<Chunk> delivered;
  const OutputDelivery delivery =
      query.write_output ? query.delivery : OutputDelivery::kDiscard;
  switch (delivery) {
    case OutputDelivery::kWriteBack:
      options.write_output = options.write_output && true;
      break;
    case OutputDelivery::kReturnToClient:
      options.write_output = false;
      options.output_sink = [&sink_mutex, &delivered](Chunk&& chunk) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        delivered.push_back(std::move(chunk));
      };
      break;
    case OutputDelivery::kDiscard:
      options.write_output = false;
      break;
  }

  // A written-back output dataset has new payload bytes: partials that
  // aggregated *from* it are stale.  Scope guard, not a tail call — the
  // engine may have written chunks before a node error rethrows, and
  // those bytes must invalidate even when the query fails.
  struct WriteInvalidate {
    MarginalCache* cache = nullptr;
    std::uint32_t dataset = 0;
    ~WriteInvalidate() {
      if (cache != nullptr) cache->invalidate_data(dataset);
    }
  } write_invalidate;
  if (marginal_cache_ != nullptr && delivery == OutputDelivery::kWriteBack &&
      options.write_output) {
    write_invalidate.cache = marginal_cache_.get();
    write_invalidate.dataset = query.output_dataset;
  }

  // Marginal publish tap: capture each finalized post-combine
  // accumulator as the engine produces it.  Publishing waits until
  // execute_query returns cleanly — a faulted run rethrows before we
  // get there, so a failed query never publishes (PR 5 containment).
  const bool marginal_active = marginal != nullptr && marginal->active;
  std::mutex accum_mutex;
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> captured;
  if (marginal_active) {
    options.accum_sink = [&accum_mutex, &captured](
                             std::uint32_t pos, const std::vector<std::byte>& accum) {
      std::lock_guard<std::mutex> lock(accum_mutex);
      captured.emplace_back(pos, accum);
    };
  }

  QueryResult result;
  result.strategy = planned.chosen;
  result.tiles = planned.plan.num_tiles;
  result.ghost_chunks = planned.plan.total_ghost_chunks;
  result.chunk_reads = planned.plan.total_reads;
  result.estimates = std::move(planned.estimates);

  const std::uint64_t exec_ts_us = tracing ? tr.now_us() : 0;

  if (config_.backend == RepositoryConfig::Backend::kSimulated) {
    sim::ClusterConfig machine = config_.machine;
    machine.num_nodes = config_.num_nodes;
    machine.disks_per_node = config_.disks_per_node;
    machine.accumulator_memory_bytes = config_.memory_per_node;
    sim::SimCluster cluster(machine);
    SimExecutor executor(&cluster, config_.store_payloads ? store_.get() : nullptr);
    result.stats = execute_query(executor, planned, prepared.all_inputs, *prepared.output,
                                 prepared.op, costs, config_.disks_per_node, options);
    // The simulator's modelled I/O is never cached, so the ledger bills
    // every read cold.
    for (const NodeStats& n : result.stats.nodes) {
      result.cost.cold_chunks += n.chunks_read;
    }
    result.cost.cold_bytes = result.stats.total_bytes_read();
  } else {
    const ChunkCacheStats cache_before = cache_ ? cache_->stats() : ChunkCacheStats{};
    if (gang_executor != nullptr) {
      // Batch path: the gang's shared executor (bound to its shared-scan
      // buffer) serves every member in turn.
      result.stats = execute_query(*gang_executor, planned, prepared.all_inputs,
                                   *prepared.output, prepared.op, costs,
                                   config_.disks_per_node, options);
    } else if (config_.reuse_executor) {
      // Exclusive lease on a warm executor; released (kept resident)
      // when the lease leaves scope.
      ThreadExecutorPool::Lease lease = thread_pool().acquire();
      result.stats = execute_query(*lease, planned, prepared.all_inputs, *prepared.output,
                                   prepared.op, costs, config_.disks_per_node, options);
    } else {
      ThreadExecutor executor(config_.num_nodes, config_.disks_per_node,
                              &active_store());
      result.stats = execute_query(executor, planned, prepared.all_inputs, *prepared.output,
                                   prepared.op, costs, config_.disks_per_node, options);
    }
    if (cache_ != nullptr) {
      const ChunkCacheStats after = cache_->stats();
      result.stats.cache_hits = after.hits - cache_before.hits;
      result.stats.cache_misses = after.misses - cache_before.misses;
      result.stats.cache_evictions = after.evictions - cache_before.evictions;
      result.cache_hits = result.stats.cache_hits;
      result.cache_misses = result.stats.cache_misses;
      result.cache_evictions = result.stats.cache_evictions;
      // Cost ledger: the cache's hit/miss byte deltas split this query's
      // reads by temperature (same concurrent-submit attribution caveat
      // as cache_hits above).
      result.cost.cached_chunks = result.stats.cache_hits;
      result.cost.cached_bytes = after.hit_bytes - cache_before.hit_bytes;
      result.cost.cold_chunks = result.stats.cache_misses;
      result.cost.cold_bytes = after.miss_bytes - cache_before.miss_bytes;
    } else {
      // No cache below the engine: every chunk the nodes read was cold.
      for (const NodeStats& n : result.stats.nodes) {
        result.cost.cold_chunks += n.chunks_read;
      }
      result.cost.cold_bytes = result.stats.total_bytes_read();
    }
  }

  if (marginal_active) {
    // The run completed cleanly: the captured partials are trustworthy.
    for (auto& [pos, accum] : captured) {
      marginal_cache_->publish(marginal->keys[marginal->executed_orig[pos]],
                               std::move(accum));
    }
    result.marginal_hits = marginal->hits.size();
    result.marginal_misses = marginal->executed_orig.size();
    result.cost.marginal_chunks = marginal->hits.size();
    result.cost.marginal_bytes_saved = marginal->bytes_saved;
    marginal_cache_->note_bytes_saved(marginal->bytes_saved);
    // Merge served partials into this query's delivery alongside the
    // executed chunks.
    for (auto& [orig, partial] : marginal->hits) {
      const ChunkMeta& meta =
          prepared.output->chunk(marginal->original.selected_outputs[orig]);
      std::vector<std::byte> payload = prepared.op->output(meta, partial);
      switch (delivery) {
        case OutputDelivery::kWriteBack:
          if (options.write_output) {
            active_store().put(Chunk(meta, std::move(payload)));
          }
          break;
        case OutputDelivery::kReturnToClient: {
          std::lock_guard<std::mutex> lock(sink_mutex);
          delivered.push_back(Chunk(meta, std::move(payload)));
          break;
        }
        case OutputDelivery::kDiscard:
          break;
      }
    }
  }

  if (tracing) {
    tr.record({"execute", "serving", qid, exec_ts_us, tr.now_us() - exec_ts_us,
               static_cast<std::uint32_t>(qid), -1});
    // Re-base the engine's per-node phase timeline onto the tracer clock
    // (thread backend only: the simulated backend's spans are in virtual
    // seconds that do not line up with wall time).
    if (config_.backend == RepositoryConfig::Backend::kThreads) {
      for (const PhaseSpan& span : result.stats.trace) {
        obs::TraceEvent e;
        e.name = phase_name(span.phase);
        e.cat = "phase";
        e.query = qid;
        e.ts_us = exec_ts_us + static_cast<std::uint64_t>(span.start_s * 1e6);
        e.dur_us = static_cast<std::uint64_t>(span.duration_s() * 1e6);
        e.tid = static_cast<std::uint32_t>(span.node);
        e.tile = span.tile;
        tr.record(e);
      }
    }
  }

  if (!delivered.empty()) {
    std::sort(delivered.begin(), delivered.end(),
              [](const Chunk& a, const Chunk& b) { return a.meta().id < b.meta().id; });
    result.outputs = std::move(delivered);
  }
  return result;
}

QueryResult Repository::submit_locked(const Query& query, const ComputeCosts& costs,
                                      const ExecOptions& exec_options) {
  Prepared prepared = prepare_locked(query, costs);
  MarginalConsult consult = consult_marginals_locked(prepared);
  if (consult.fully_cached) {
    return finalize_from_cache_locked(query, prepared, consult, exec_options);
  }
  PlannedQuery planned =
      plan_prepared(prepared, consult.active ? &consult.reduced : nullptr);
  return execute_planned_locked(query, prepared, std::move(planned), costs, exec_options,
                                nullptr, consult.active ? &consult : nullptr);
}

std::vector<SubmitOutcome> Repository::submit_batch(
    const std::vector<SubmitRequest>& batch) {
  std::vector<SubmitOutcome> outcomes(batch.size());
  if (batch.empty()) return outcomes;
  std::shared_lock lock(catalog_mutex_);

  // Group members by input-dataset signature, preserving submission
  // order within each group.  Only same-input groups can share a scan.
  std::map<std::vector<std::uint32_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::uint32_t> key = {batch[i].query.input_dataset};
    key.insert(key.end(), batch[i].query.extra_input_datasets.begin(),
               batch[i].query.extra_input_datasets.end());
    groups[std::move(key)].push_back(i);
  }

  const bool can_gang = config_.backend == RepositoryConfig::Backend::kThreads &&
                        config_.batch_scan_bytes > 0;
  for (const auto& [key, indices] : groups) {
    if (can_gang && indices.size() >= 2) {
      run_gang_locked(batch, indices, outcomes);
    } else {
      for (std::size_t i : indices) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          outcomes[i].result =
              submit_locked(batch[i].query, batch[i].costs, batch[i].options);
          record_submit_success(outcomes[i].result, seconds_since(t0));
        } catch (const std::exception& e) {
          submit_metrics().errors.add();
          outcomes[i].status = status_from_exception(e);
        }
      }
    }
  }
  return outcomes;
}

void Repository::run_gang_locked(const std::vector<SubmitRequest>& batch,
                                 const std::vector<std::size_t>& indices,
                                 std::vector<SubmitOutcome>& outcomes) {
  struct Member {
    std::size_t index;  // into batch / outcomes
    Prepared prepared;
    MarginalConsult consult;
    PlannedQuery planned;
    std::chrono::steady_clock::time_point t0;
  };
  std::vector<Member> members;
  members.reserve(indices.size());
  for (std::size_t i : indices) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      Prepared prepared = prepare_locked(batch[i].query, batch[i].costs);
      MarginalConsult consult = consult_marginals_locked(prepared);
      if (consult.fully_cached) {
        // Served entirely from cached partials: finalize now and keep it
        // out of the gang's shared plan.
        outcomes[i].result =
            finalize_from_cache_locked(batch[i].query, prepared, consult,
                                       batch[i].options);
        record_submit_success(outcomes[i].result, seconds_since(t0));
        continue;
      }
      PlannedQuery planned =
          plan_prepared(prepared, consult.active ? &consult.reduced : nullptr);
      members.push_back(
          Member{i, std::move(prepared), std::move(consult), std::move(planned), t0});
    } catch (const std::exception& e) {
      // One member failing to plan does not sink its gang.
      submit_metrics().errors.add();
      outcomes[i].status = status_from_exception(e);
    }
  }
  if (members.empty()) return;

  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  const std::uint64_t qid = obs::trace_query();
  const std::uint64_t gang_ts_us = tracing ? tr.now_us() : 0;

  // Shared-scan schedule: per lockstep tile, the union of member reads.
  std::vector<const PlannedQuery*> ptrs;
  std::vector<std::vector<const Dataset*>> member_inputs;
  ptrs.reserve(members.size());
  member_inputs.reserve(members.size());
  for (const Member& m : members) {
    ptrs.push_back(&m.planned);
    member_inputs.push_back(m.prepared.all_inputs);
  }
  const BatchSharedPlan shared = build_batch_shared_plan(ptrs, member_inputs);

  SharedScanStore scan(active_store(), config_.batch_scan_bytes);
  for (const BatchTile& tile : shared.tiles) {
    for (const BatchSharedRead& read : tile.reads) {
      scan.add_planned_uses(read.id, static_cast<std::uint32_t>(read.members.size()));
    }
  }

  // Members execute sequentially (submission order) on one executor bound
  // to the shared-scan buffer: a chunk several members need is fetched
  // from the farm once and stays resident between its first and last
  // reader.  Per-member results are attributed individually.
  auto execute_members = [&](Executor& exec) {
    for (Member& m : members) {
      const SharedScanStats before = scan.stats();
      try {
        QueryResult r = execute_planned_locked(
            batch[m.index].query, m.prepared, std::move(m.planned),
            batch[m.index].costs, batch[m.index].options, &exec,
            m.consult.active ? &m.consult : nullptr);
        const SharedScanStats after = scan.stats();
        r.gang_size = static_cast<std::uint32_t>(members.size());
        r.gang_shared_hits = after.shared_hits - before.shared_hits;
        r.gang_cold_reads = after.cold_fetches - before.cold_fetches;
        record_submit_success(r, seconds_since(m.t0));
        outcomes[m.index].result = std::move(r);
      } catch (const std::exception& e) {
        submit_metrics().errors.add();
        outcomes[m.index].status = status_from_exception(e);
      }
    }
  };

  if (config_.reuse_executor) {
    ThreadExecutorPool::Lease lease = thread_pool().acquire();
    // Point the warm executor at the gang's scan buffer for the gang's
    // lifetime; restore the farm before the lease returns to the pool.
    struct StoreRestore {
      ThreadExecutor* exec;
      ChunkStore* farm;
      ~StoreRestore() { exec->set_store(farm); }
    } restore{&*lease, lease->store()};
    lease->set_store(&scan);
    execute_members(*lease);
  } else {
    ThreadExecutor executor(config_.num_nodes, config_.disks_per_node, &scan);
    execute_members(executor);
  }

  const SharedScanStats final_stats = scan.stats();
  BatchMetrics& bm = batch_metrics();
  bm.gangs.add();
  bm.members.add(members.size());
  bm.gang_size.observe(static_cast<double>(members.size()));
  bm.shared_hits.add(final_stats.shared_hits);
  bm.cold_reads.add(final_stats.cold_fetches);
  bm.saved_reads.add(shared.saved_reads());
  bm.cap_rejections.add(final_stats.cap_rejections);
  if (tracing) {
    tr.record({"gang", "serving", qid, gang_ts_us, tr.now_us() - gang_ts_us,
               static_cast<std::uint32_t>(qid), -1});
  }
}

std::vector<QueryResult> Repository::submit_all(const std::vector<Query>& queries,
                                                const ComputeCosts& costs,
                                                const ExecOptions& exec_options) {
  std::vector<SubmitRequest> batch;
  batch.reserve(queries.size());
  for (const Query& q : queries) batch.push_back(SubmitRequest{q, costs, exec_options});
  std::vector<SubmitOutcome> outcomes = submit_batch(batch);
  std::vector<QueryResult> results;
  results.reserve(outcomes.size());
  for (SubmitOutcome& o : outcomes) {
    if (!o.status.ok()) throw StatusError(o.status.code, o.status.message);
    results.push_back(std::move(o.result));
  }
  return results;
}

QuerySubmissionService::~QuerySubmissionService() {
  stop();
  // Queries accepted but never run (no pool started, no process_all)
  // would otherwise leave the process-wide depth gauge inflated.
  std::lock_guard lock(mutex_);
  scheduler_metrics().queue_depth.add(-static_cast<std::int64_t>(queue_.size()));
  queue_.clear();
}

void QuerySubmissionService::start(int n_workers) {
  std::lock_guard lock(mutex_);
  if (!workers_.empty()) return;
  stopping_ = false;
  workers_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

void QuerySubmissionService::stop() {
  {
    std::lock_guard lock(mutex_);
    if (workers_.empty()) return;
    stopping_ = true;  // workers finish the queue before exiting
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
  std::lock_guard lock(mutex_);
  workers_.clear();
  stopping_ = false;
}

QuerySubmissionService::QuerySubmissionService(Repository& repository,
                                               const RuntimeConfig& runtime)
    : QuerySubmissionService((runtime.check(), repository), runtime.max_pending) {
  gang_policy_ = runtime.gang;
}

void QuerySubmissionService::set_gang_policy(const GangPolicy& policy) {
  std::lock_guard lock(mutex_);
  gang_policy_ = policy;
}

void QuerySubmissionService::set_gang_window(std::chrono::microseconds window) {
  std::lock_guard lock(mutex_);
  gang_policy_.window = window;
}

QuerySubmissionService::GangPolicy QuerySubmissionService::gang_policy() const {
  std::lock_guard lock(mutex_);
  return gang_policy_;
}

void QuerySubmissionService::set_completion_callback(
    std::function<void(std::uint64_t)> cb) {
  completion_cb_ = std::move(cb);
}

std::uint64_t QuerySubmissionService::enqueue(Query query, ComputeCosts costs,
                                              std::uint64_t client_id,
                                              ExecOptions options) {
  std::unique_lock lock(mutex_);
  // Back-pressure: bound accepted-but-unfinished work while a pool runs.
  if (!workers_.empty()) {
    done_cv_.wait(lock, [this]() {
      return queue_.size() + in_flight_ < max_pending_;
    });
  }
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(Pending{ticket, client_id, std::move(query), costs, options,
                           std::chrono::steady_clock::now(),
                           obs::tracer().now_us()});
  scheduler_metrics().enqueued.add();
  scheduler_metrics().queue_depth.add(1);
  work_cv_.notify_one();
  return ticket;
}

std::uint64_t QuerySubmissionService::try_enqueue(Query query, ComputeCosts costs,
                                                  std::uint64_t client_id,
                                                  ExecOptions options) {
  std::lock_guard lock(mutex_);
  if (queue_.size() + in_flight_ >= max_pending_) {
    scheduler_metrics().rejected.add();
    return 0;
  }
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(Pending{ticket, client_id, std::move(query), costs, options,
                           std::chrono::steady_clock::now(),
                           obs::tracer().now_us()});
  scheduler_metrics().enqueued.add();
  scheduler_metrics().queue_depth.add(1);
  work_cv_.notify_one();
  return ticket;
}

bool QuerySubmissionService::ticket_pending_locked(std::uint64_t ticket) const {
  if (running_.contains(ticket)) return true;
  for (const Pending& p : queue_) {
    if (p.ticket == ticket) return true;
  }
  return false;
}

QuerySubmissionService::Outcome QuerySubmissionService::take(std::uint64_t ticket) {
  std::unique_lock lock(mutex_);
  Outcome out;
  if (ticket == 0 || ticket >= next_ticket_) {
    out.status = Status::make(StatusCode::kNotFound, "unknown ticket");
    return out;
  }
  // Wake on finish *or* on the ticket vanishing (another take() already
  // drained it) — waiting only on the outcome maps would block forever
  // for a ticket taken twice.
  done_cv_.wait(lock, [&]() {
    return results_.contains(ticket) || errors_.contains(ticket) ||
           !ticket_pending_locked(ticket);
  });
  if (auto it = results_.find(ticket); it != results_.end()) {
    out.result = std::move(it->second);
    results_.erase(it);
    // A second waiter on this ticket must wake and observe it gone.
    done_cv_.notify_all();
  } else if (auto eit = errors_.find(ticket); eit != errors_.end()) {
    out.status = std::move(eit->second);
    errors_.erase(eit);
    done_cv_.notify_all();
  } else {
    out.status = Status::make(StatusCode::kNotFound, "ticket already taken");
  }
  return out;
}

std::optional<QuerySubmissionService::Outcome> QuerySubmissionService::try_take(
    std::uint64_t ticket) {
  std::lock_guard lock(mutex_);
  Outcome out;
  if (ticket == 0 || ticket >= next_ticket_) {
    out.status = Status::make(StatusCode::kNotFound, "unknown ticket");
    return out;
  }
  if (auto it = results_.find(ticket); it != results_.end()) {
    out.result = std::move(it->second);
    results_.erase(it);
    return out;
  }
  if (auto it = errors_.find(ticket); it != errors_.end()) {
    out.status = std::move(it->second);
    errors_.erase(it);
    return out;
  }
  if (!ticket_pending_locked(ticket)) {
    out.status = Status::make(StatusCode::kNotFound, "ticket already taken");
    return out;
  }
  return std::nullopt;  // still queued or running
}

bool QuerySubmissionService::pop_runnable(Pending& out) {
  // Candidates are each idle lane's *head* (later queries of the same
  // client never overtake it); among those the highest Qos priority
  // wins, earliest accepted breaking ties.  All-default priorities
  // degenerate to the historical first-free-lane FIFO scan.
  auto best = queue_.end();
  std::unordered_set<std::uint64_t> seen;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!seen.insert(it->client).second) continue;  // not the lane head
    if (busy_clients_.contains(it->client)) continue;
    if (best == queue_.end() ||
        it->options.qos.priority > best->options.qos.priority) {
      best = it;
      // Nothing outranks interactive; the earliest one already wins.
      if (it->options.qos.priority == QosPriority::kInteractive) break;
    }
  }
  if (best == queue_.end()) return false;
  out = std::move(*best);
  queue_.erase(best);
  busy_clients_.insert(out.client);
  running_.insert(out.ticket);
  ++in_flight_;
  scheduler_metrics().queue_depth.add(-1);
  scheduler_metrics().in_flight.add(1);
  return true;
}

void QuerySubmissionService::form_gang_locked(std::vector<Pending>& gang) {
  // Copied, not referenced: push_back below may reallocate `gang`.
  const Query leader = gang.front().query;
  // Clients whose earliest remaining query was examined but not taken:
  // their later queries must not overtake it into the gang (lane FIFO).
  std::unordered_set<std::uint64_t> blocked;
  for (auto it = queue_.begin();
       it != queue_.end() && gang.size() < gang_policy_.max_gang;) {
    if (busy_clients_.contains(it->client) || blocked.contains(it->client)) {
      blocked.insert(it->client);
      ++it;
      continue;
    }
    const bool compatible =
        it->query.input_dataset == leader.input_dataset &&
        it->query.extra_input_datasets == leader.extra_input_datasets &&
        it->query.strategy == leader.strategy &&
        it->query.aggregation == leader.aggregation &&
        it->query.map_function == leader.map_function &&
        it->query.range.valid() && leader.range.valid() &&
        it->query.range.intersects(leader.range);
    if (!compatible) {
      blocked.insert(it->client);
      ++it;
      continue;
    }
    busy_clients_.insert(it->client);
    running_.insert(it->ticket);
    ++in_flight_;
    scheduler_metrics().queue_depth.add(-1);
    scheduler_metrics().in_flight.add(1);
    gang.push_back(std::move(*it));
    it = queue_.erase(it);
  }
}

void QuerySubmissionService::finish_locked(std::uint64_t ticket, std::uint64_t client,
                                           Outcome&& outcome) {
  if (outcome.ok()) {
    results_.emplace(ticket, std::move(outcome.result));
  } else {
    errors_.emplace(ticket, std::move(outcome.status));
  }
  busy_clients_.erase(client);
  running_.erase(ticket);
  --in_flight_;
  ++completed_;
}

namespace {

double load_ewma_s(const std::atomic<std::uint64_t>& bits) {
  return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

// alpha = 0.2: a few queries of history — reactive enough to track a
// load shift, smooth enough that one outlier doesn't trigger mass sheds.
void update_ewma_s(std::atomic<std::uint64_t>& bits, double sample) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double prev = std::bit_cast<double>(cur);
    const double next = prev <= 0.0 ? sample : 0.8 * prev + 0.2 * sample;
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

bool QuerySubmissionService::maybe_shed(Pending& p) {
  const Qos& qos = p.options.qos;
  if (!qos.drop_on_expiry || !qos.has_deadline()) return false;
  const auto now = std::chrono::steady_clock::now();
  bool shed = now >= qos.deadline;
  if (!shed) {
    // Predictive half: with `ewma` seconds of typical execution ahead,
    // a smaller remaining budget cannot make the deadline — shedding
    // now returns the slot to work that still can.
    const double ewma_s = load_ewma_s(exec_ewma_bits_);
    if (ewma_s > 0.0) {
      shed = std::chrono::duration<double>(qos.deadline - now).count() < ewma_s;
    }
  }
  if (!shed) return false;
  scheduler_metrics().queue_wait.observe(seconds_since(p.enqueued_at));
  scheduler_metrics().in_flight.add(-1);
  scheduler_metrics().shed.add();
  Outcome out;
  out.status = Status::make(StatusCode::kDeadlineExceeded,
                            "deadline exceeded before execution");
  {
    std::lock_guard lock(mutex_);
    finish_locked(p.ticket, p.client, std::move(out));
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (completion_cb_) completion_cb_(p.ticket);
  return true;
}

void QuerySubmissionService::run_one(Pending&& p) {
  if (maybe_shed(p)) return;
  // Dispatch latency: how long the accepted query sat in the queue.
  const double wait_s = seconds_since(p.enqueued_at);
  scheduler_metrics().queue_wait.observe(wait_s);
  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  if (tracing) {
    const std::uint64_t now = tr.now_us();
    const std::uint64_t ts = std::min(p.enqueued_ts_us, now);
    tr.record({"queued", "serving", p.ticket, ts, now - ts,
               static_cast<std::uint32_t>(p.ticket), -1});
  }
  Outcome out;
  // Spans recorded inside Repository::submit attach to this ticket; the
  // queue wait rides the same thread into the cost ledger (picked up by
  // record_submit_success on this thread, inside submit).
  obs::set_trace_query(p.ticket);
  obs::set_cost_queue_wait(wait_s);
  try {
    ExecOptions exec_options = p.options;
    // The per-tile phase timeline feeds the exported trace; recording it
    // costs a couple of timestamps per phase, paid only while tracing.
    exec_options.record_trace = exec_options.record_trace || tracing;
    const auto exec_start = std::chrono::steady_clock::now();
    out.result = repository_->submit(p.query, p.costs, exec_options);
    update_ewma_s(exec_ewma_bits_, seconds_since(exec_start));
  } catch (const std::exception& e) {
    out.status = status_from_exception(e);
    ADR_WARN("submission service: ticket " << p.ticket << " failed: " << e.what());
  }
  obs::set_trace_query(0);
  obs::set_cost_queue_wait(0.0);
  scheduler_metrics().in_flight.add(-1);
  (out.ok() ? scheduler_metrics().completed : scheduler_metrics().failed).add();
  {
    std::lock_guard lock(mutex_);
    finish_locked(p.ticket, p.client, std::move(out));
  }
  // A freed lane may unblock a queued query for the same client.
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (completion_cb_) completion_cb_(p.ticket);
}

void QuerySubmissionService::run_gang(std::vector<Pending>&& gang) {
  // Shed expired members before the gang commits to execution; a gang
  // reduced below two members falls back to the serial path.
  {
    std::vector<Pending> live;
    live.reserve(gang.size());
    for (Pending& p : gang) {
      if (!maybe_shed(p)) live.push_back(std::move(p));
    }
    if (live.empty()) return;
    if (live.size() == 1) {
      run_one(std::move(live.front()));
      return;
    }
    gang = std::move(live);
  }
  obs::QueryTracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  std::vector<SubmitRequest> requests;
  requests.reserve(gang.size());
  double wait_sum_s = 0.0;
  for (Pending& p : gang) {
    const double wait_s = seconds_since(p.enqueued_at);
    wait_sum_s += wait_s;
    scheduler_metrics().queue_wait.observe(wait_s);
    if (tracing) {
      const std::uint64_t now = tr.now_us();
      const std::uint64_t ts = std::min(p.enqueued_ts_us, now);
      tr.record({"queued", "serving", p.ticket, ts, now - ts,
                 static_cast<std::uint32_t>(p.ticket), -1});
    }
    SubmitRequest r;
    r.query = std::move(p.query);
    r.costs = p.costs;
    r.options = p.options;
    r.options.record_trace = r.options.record_trace || tracing;
    requests.push_back(std::move(r));
  }
  scheduler_metrics().gangs_formed.add();
  // Spans recorded inside submit_batch attach to the gang leader.  The
  // gang executes as one unit, so each member's ledger is billed the
  // mean member wait (a documented approximation — per-member waits are
  // indistinguishable once the gang runs).
  obs::set_trace_query(gang.front().ticket);
  obs::set_cost_queue_wait(gang.empty() ? 0.0
                                        : wait_sum_s / static_cast<double>(gang.size()));
  std::vector<SubmitOutcome> outs;
  bool whole_batch_failed = false;
  Status batch_status;
  try {
    const auto exec_start = std::chrono::steady_clock::now();
    outs = repository_->submit_batch(requests);
    // Per-member execution estimate: the gang runs as one unit, so each
    // member is billed an equal share of the batch wall time.
    update_ewma_s(exec_ewma_bits_,
                  seconds_since(exec_start) / static_cast<double>(requests.size()));
  } catch (const std::exception& e) {
    whole_batch_failed = true;
    batch_status = status_from_exception(e);
    ADR_WARN("submission service: gang of " << gang.size() << " failed: " << e.what());
  }
  obs::set_trace_query(0);
  obs::set_cost_queue_wait(0.0);

  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < gang.size(); ++i) {
      Outcome out;
      if (whole_batch_failed) {
        out.status = batch_status;
      } else if (i < outs.size()) {
        out.status = std::move(outs[i].status);
        out.result = std::move(outs[i].result);
      } else {
        out.status = Status::make(StatusCode::kInternal, "batch produced no outcome");
      }
      scheduler_metrics().in_flight.add(-1);
      (out.ok() ? scheduler_metrics().completed : scheduler_metrics().failed).add();
      if (!out.ok()) {
        ADR_WARN("submission service: ticket " << gang[i].ticket
                                               << " failed: " << out.status.to_string());
      }
      finish_locked(gang[i].ticket, gang[i].client, std::move(out));
    }
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (completion_cb_) {
    for (const Pending& p : gang) completion_cb_(p.ticket);
  }
}

void QuerySubmissionService::worker_loop() {
  for (;;) {
    std::vector<Pending> gang;
    {
      std::unique_lock lock(mutex_);
      Pending p{};
      work_cv_.wait(lock,
                    [&]() { return pop_runnable(p) || (stopping_ && queue_.empty()); });
      if (p.ticket == 0) return;  // stopping and nothing runnable
      gang.push_back(std::move(p));
      if (gang_policy_.enabled && gang_policy_.max_gang > 1) {
        form_gang_locked(gang);
        if (gang_policy_.window.count() > 0 && gang.size() < gang_policy_.max_gang &&
            !stopping_) {
          // Short formation window: wait for near-simultaneous arrivals
          // to join before dispatching.
          const auto deadline = std::chrono::steady_clock::now() + gang_policy_.window;
          while (gang.size() < gang_policy_.max_gang && !stopping_ &&
                 work_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
            form_gang_locked(gang);
          }
        }
      }
    }
    if (gang.size() == 1) {
      run_one(std::move(gang.front()));
    } else {
      run_gang(std::move(gang));
    }
  }
}

std::size_t QuerySubmissionService::process_all() {
  bool pooled = false;
  {
    std::lock_guard lock(mutex_);
    pooled = !workers_.empty();
  }
  if (pooled) return drain();
  // Serial mode: drain the queue on this thread in FIFO order.
  std::size_t ran = 0;
  for (;;) {
    Pending p{};
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) return ran;
      p = std::move(queue_.front());
      queue_.pop_front();
      busy_clients_.insert(p.client);
      running_.insert(p.ticket);
      ++in_flight_;
      scheduler_metrics().queue_depth.add(-1);
      scheduler_metrics().in_flight.add(1);
    }
    run_one(std::move(p));
    ++ran;
  }
}

const QueryResult* QuerySubmissionService::wait(std::uint64_t ticket) {
  std::unique_lock lock(mutex_);
  if (ticket == 0 || ticket >= next_ticket_) return nullptr;
  done_cv_.wait(lock, [&]() {
    return results_.contains(ticket) || errors_.contains(ticket) ||
           !ticket_pending_locked(ticket);  // e.g. drained by take()
  });
  auto it = results_.find(ticket);
  return it == results_.end() ? nullptr : &it->second;
}

std::size_t QuerySubmissionService::drain() {
  std::unique_lock lock(mutex_);
  const std::uint64_t before = completed_;
  done_cv_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
  return static_cast<std::size_t>(completed_ - before);
}

std::size_t QuerySubmissionService::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + in_flight_;
}

const QueryResult* QuerySubmissionService::result(std::uint64_t ticket) const {
  std::lock_guard lock(mutex_);
  auto it = results_.find(ticket);
  return it == results_.end() ? nullptr : &it->second;
}

const std::string* QuerySubmissionService::error(std::uint64_t ticket) const {
  std::lock_guard lock(mutex_);
  auto it = errors_.find(ticket);
  return it == errors_.end() ? nullptr : &it->second.message;
}

std::optional<Chunk> Repository::read_chunk(std::uint32_t dataset_id,
                                            std::uint32_t index) const {
  std::shared_lock lock(catalog_mutex_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) throw std::out_of_range("Repository: unknown dataset");
  const ChunkMeta& meta = it->second.chunk(index);
  return active_store().get(meta.disk, meta.id);
}

void Repository::save_catalog(const std::filesystem::path& path) const {
  std::shared_lock lock(catalog_mutex_);
  std::vector<const Dataset*> all;
  all.reserve(datasets_.size());
  for (const auto& [id, ds] : datasets_) all.push_back(&ds);
  save_catalog_file(path, all);
}

std::size_t Repository::load_catalog(const std::filesystem::path& path) {
  std::vector<Dataset> loaded = load_catalog_file(path);
  std::unique_lock lock(catalog_mutex_);
  std::size_t registered = 0;
  for (Dataset& ds : loaded) {
    for (const ChunkMeta& c : ds.chunks()) {
      if (c.disk < 0 || c.disk >= config_.total_disks()) {
        throw std::invalid_argument("load_catalog: dataset '" + ds.name() +
                                    "' was declustered over a different farm");
      }
    }
    const std::uint32_t id = ds.id();
    next_dataset_id_ = std::max(next_dataset_id_, id + 1);
    if (config_.index != "rtree") ds.build_index(indices_.create(config_.index));
    // Replacing a dataset changes both what its chunks contain and what
    // its chunk indices *mean*: kill partials keyed on it as input
    // (data version) and as output (shape version).
    if (marginal_cache_ != nullptr && datasets_.contains(id)) {
      marginal_cache_->invalidate_dataset(id);
    }
    datasets_.insert_or_assign(id, std::move(ds));
    ++registered;
  }
  return registered;
}

}  // namespace adr
