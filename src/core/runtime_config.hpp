// One validated configuration for the serving runtime.
//
// The serving tier grew its knobs one PR at a time: the executor pool
// cap on RepositoryConfig, GangPolicy on QuerySubmissionService,
// max_pending / worker counts as constructor arguments, TelemetryOptions
// on AdrServer, and now the adaptive controller's band.  RuntimeConfig
// consolidates them into a single struct that Repository,
// QuerySubmissionService and AdrServer all accept, with validate()
// catching inconsistent settings (empty bands, inverted thresholds)
// once, up front, instead of as scattered surprises at runtime.
//
//   adr::RuntimeConfig rt;
//   rt.executor_pool_size = 4;
//   rt.adaptive.enabled = true;
//   rt.adaptive.max_resident = 8;
//   rt.check();                       // throws kInvalidArgument on nonsense
//   adr::net::AdrServer server(repo, port, costs, rt);
//
// The pre-existing constructors survive as thin shims so older call
// sites keep compiling; new code should prefer the RuntimeConfig
// overloads.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.hpp"
#include "runtime/adaptive/controller.hpp"

namespace adr {

/// Gang formation policy for QuerySubmissionService (see
/// docs/batching.md).  window == 0 still gangs queries that are already
/// queued together; a positive window also waits for near-simultaneous
/// arrivals.  Under the adaptive controller the window field is a
/// starting point — the controller opens/closes it from arrival rates.
struct GangPolicy {
  bool enabled = true;
  std::size_t max_gang = 8;
  std::chrono::microseconds window{0};
};

/// Background telemetry sampling for a serving process (the sampler
/// ring behind /history, adr_top, and the adaptive controller).
struct TelemetryOptions {
  /// Run the process-wide TelemetrySampler while the server runs.
  bool sampler = true;
  std::chrono::milliseconds sample_period{1000};
  std::size_t sample_capacity = 300;
  /// Port for the plaintext metrics endpoint (-1 = disabled, 0 = any).
  int http_port = -1;
};

/// Every dynamic-runtime knob in one place.  Field defaults reproduce
/// the historical constructor defaults of the components they feed.
struct RuntimeConfig {
  /// Warm executors kept resident between submits (the adaptive
  /// controller moves the cap inside [adaptive.min_resident,
  /// adaptive.max_resident] when enabled; this is the starting value).
  std::size_t executor_pool_size = 2;
  /// Scheduler worker threads run by QuerySubmissionService/AdrServer.
  std::size_t scheduler_workers = 4;
  /// Accepted-but-unfinished query cap before enqueue blocks (or
  /// try_enqueue refuses with kBusy at the server boundary).
  std::size_t max_pending = 256;
  /// Concurrent connection cap for AdrServer.
  std::size_t max_connections = 64;

  GangPolicy gang;
  TelemetryOptions telemetry;
  AdaptiveOptions adaptive;

  /// Checks internal consistency; kInvalidArgument with a message
  /// naming the offending field on failure.
  Status validate() const;
  /// validate(), throwing StatusError{kInvalidArgument} on failure.
  void check() const;
};

}  // namespace adr
