// Per-query quality-of-service contract.
//
// A Qos rides with a query end-to-end: into ExecOptions, across the
// socket (wire v6 query frames carry it as deadline-remaining
// milliseconds plus priority and drop flags), through the submission
// service's queue, and into the client's retry loop.  Three knobs:
//
//   deadline       - absolute steady-clock point after which the result
//                    is worthless to the caller.  The scheduler sheds
//                    queued work that can no longer meet it (typed
//                    kDeadlineExceeded instead of silent queueing), the
//                    server refuses saturated submits whose retry hint
//                    already overshoots it, and AdrClient stops retrying
//                    past it.  Default: none.
//   priority       - coarse class used by the scheduler when picking the
//                    next runnable query; lanes stay FIFO per client.
//   drop_on_expiry - when false the deadline is advisory: the scheduler
//                    still runs the query late (only the client-side
//                    retry cut-off applies).  Default true.
//
// Deadlines are steady-clock on each host; the wire carries *remaining*
// time, so client and server clocks never need to agree.
// Semantics and shed policy: docs/scheduling.md.
#pragma once

#include <chrono>
#include <cstdint>

namespace adr {

/// Coarse scheduling class.  Higher value = dispatched first when
/// several clients' lanes are runnable; within one client, FIFO order
/// always wins (lanes never reorder).
enum class QosPriority : std::uint8_t {
  kBackground = 0,
  kNormal = 1,
  kInteractive = 2,
};

struct Qos {
  /// Absolute deadline; the default-constructed (epoch) time_point means
  /// "no deadline".
  std::chrono::steady_clock::time_point deadline{};
  QosPriority priority = QosPriority::kNormal;
  /// Shed the query once the deadline passes (vs. advisory deadline:
  /// run late, but stop client-side retries).
  bool drop_on_expiry = true;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  bool expired(std::chrono::steady_clock::time_point now =
                   std::chrono::steady_clock::now()) const {
    return has_deadline() && now >= deadline;
  }

  /// Time left until the deadline, clamped to >= 0.  Queries without a
  /// deadline report milliseconds::max().
  std::chrono::milliseconds remaining(std::chrono::steady_clock::time_point now =
                                          std::chrono::steady_clock::now()) const {
    if (!has_deadline()) return std::chrono::milliseconds::max();
    if (now >= deadline) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  }

  /// Convenience: a deadline `budget` from now.
  static Qos within(std::chrono::milliseconds budget,
                    QosPriority priority = QosPriority::kNormal,
                    bool drop_on_expiry = true) {
    Qos q;
    q.deadline = std::chrono::steady_clock::now() + budget;
    q.priority = priority;
    q.drop_on_expiry = drop_on_expiry;
    return q;
  }
};

}  // namespace adr
