#include "core/exec/exec_stats.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace adr {

const char* phase_name(int phase) {
  switch (phase) {
    case 0:
      return "Initialization";
    case 1:
      return "Local Reduction";
    case 2:
      return "Global Combine";
    case 3:
      return "Output Handling";
    default:
      return "?";
  }
}

std::uint64_t ExecStats::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const NodeStats& n : nodes) total += n.bytes_sent;
  return total;
}

std::uint64_t ExecStats::total_bytes_read() const {
  std::uint64_t total = 0;
  for (const NodeStats& n : nodes) total += n.bytes_read;
  return total;
}

std::uint64_t ExecStats::total_lr_pairs() const {
  std::uint64_t total = 0;
  for (const NodeStats& n : nodes) total += n.lr_pairs;
  return total;
}

Summary ExecStats::comm_volume() const {
  std::vector<double> v;
  v.reserve(nodes.size());
  for (const NodeStats& n : nodes) v.push_back(static_cast<double>(n.bytes_sent));
  return summarize(v);
}

Summary ExecStats::compute_time() const {
  std::vector<double> v;
  v.reserve(nodes.size());
  for (const NodeStats& n : nodes) v.push_back(n.compute_total_s());
  return summarize(v);
}

std::string render_gantt(const ExecStats& stats, int width) {
  if (stats.trace.empty() || stats.total_s <= 0.0 || width < 8) return "";
  static const char kGlyph[4] = {'I', 'L', 'G', 'O'};
  std::ostringstream os;
  os << "time 0 .. " << stats.total_s << " s  (I=init L=local-reduction "
     << "G=global-combine O=output, .=waiting)\n";
  const double scale = static_cast<double>(width) / stats.total_s;
  for (std::size_t n = 0; n < stats.nodes.size(); ++n) {
    std::string row(static_cast<size_t>(width), '.');
    for (const PhaseSpan& span : stats.trace) {
      if (static_cast<std::size_t>(span.node) != n) continue;
      int a = static_cast<int>(span.start_s * scale);
      int b = static_cast<int>(span.end_s * scale);
      a = std::clamp(a, 0, width - 1);
      b = std::clamp(b, a, width - 1);
      for (int c = a; c <= b; ++c) {
        row[static_cast<size_t>(c)] = kGlyph[span.phase & 3];
      }
    }
    os << "node " << (n < 10 ? " " : "") << n << " |" << row << "|\n";
  }
  return os.str();
}

void trace_to_csv(const ExecStats& stats, std::ostream& os) {
  os << "node,tile,phase,start_s,end_s\n";
  for (const PhaseSpan& span : stats.trace) {
    os << span.node << ',' << span.tile << ',' << phase_name(span.phase) << ','
       << span.start_s << ',' << span.end_s << '\n';
  }
}

std::string ExecStats::summary() const {
  std::ostringstream os;
  os << "total=" << total_s << "s tiles=" << tiles << " phases(init/lr/gc/oh)="
     << phase_init_s << '/' << phase_lr_s << '/' << phase_gc_s << '/' << phase_oh_s
     << " read=" << total_bytes_read() << "B sent=" << total_bytes_sent()
     << "B pairs=" << total_lr_pairs();
  if (cache_hits + cache_misses + cache_evictions > 0) {
    os << " cache(hit/miss/evict)=" << cache_hits << '/' << cache_misses << '/'
       << cache_evictions;
  }
  return os.str();
}

}  // namespace adr
