#include "core/exec/query_executor.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"

namespace adr {
namespace {

enum class Phase { kInit, kLocalReduction, kGlobalCombine, kOutput };

/// One query's execution state machine, shared by all node contexts.
/// Per-node state is only ever touched from that node's context (the
/// Executor serialization contract), so no locks are needed.
class Engine {
 public:
  Engine(Executor& executor, const PlannedQuery& pq,
         std::vector<const Dataset*> inputs, const Dataset& output,
         const AggregationOp* op, const ComputeCosts& costs, int disks_per_node,
         const ExecOptions& options)
      : exec_(executor),
        pq_(pq),
        plan_(pq.plan),
        inputs_(std::move(inputs)),
        output_(output),
        op_(op),
        costs_(costs),
        options_(options) {
    (void)disks_per_node;  // placement already encodes node-of-disk
    const int nodes = plan_.num_nodes;
    if (exec_.num_nodes() != nodes) {
      throw std::invalid_argument("execute_query: plan/executor node count mismatch");
    }
    if (inputs_.empty()) {
      throw std::invalid_argument("execute_query: no input datasets");
    }
    if (!pq_.input_dataset_of.empty() &&
        pq_.input_dataset_of.size() != pq_.selected_inputs.size()) {
      throw std::invalid_argument("execute_query: input ordinal table size mismatch");
    }
    states_.resize(static_cast<size_t>(nodes));
    stats_.nodes.resize(static_cast<size_t>(nodes));
    stats_.tiles = plan_.num_tiles;
  }

  ExecStats run() {
    exec_.set_message_handler([this](const Message& msg) { on_message(msg); });
    phase_start_ = 0.0;
    const double start = exec_.now_seconds();
    const double elapsed = exec_.run([this](int node) {
      if (node == 0) phase_start_ = exec_.now_seconds();  // node 0 owns this field
      start_tile(node);
    });
    stats_.total_s = elapsed;
    stats_.thread_cpu_s = exec_.last_run_cpu_seconds();
    if (options_.record_trace) {
      for (NodeState& st : states_) {
        for (PhaseSpan& span : st.spans) {
          span.start_s -= start;
          span.end_s -= start;
          stats_.trace.push_back(span);
        }
      }
    }
    return std::move(stats_);
  }

 private:
  struct NodeState {
    int tile = 0;
    Phase phase = Phase::kInit;
    /// False until this node's entry task has run start_tile(): messages
    /// from faster peers can arrive before the entry task and must wait.
    bool started = false;
    bool issued = false;
    int outstanding = 0;
    int ghost_inits_received = 0;
    int inputs_received = 0;
    int combines_received = 0;
    /// Accumulators hosted this tile, keyed by output position.
    std::unordered_map<std::uint32_t, std::vector<std::byte>> accums;
    std::uint64_t accum_resident = 0;
    /// Messages that arrived before this node entered their phase.  A
    /// sender released early from a barrier can race one phase ahead of
    /// a receiver still waiting on its own release callback, so arrivals
    /// may be (at most) one phase early; they are replayed on entry.
    std::vector<Message> deferred;
    /// Trace recording (when ExecOptions::record_trace).
    double phase_start_s = 0.0;
    std::vector<PhaseSpan> spans;
  };

  static Phase phase_of(MsgTag tag) {
    switch (tag) {
      case MsgTag::kGhostInit:
        return Phase::kInit;
      case MsgTag::kInputForward:
        return Phase::kLocalReduction;
      case MsgTag::kGhostCombine:
        return Phase::kGlobalCombine;
      default:
        return Phase::kOutput;
    }
  }

  const NodeTilePlan& tile_plan(int node, int tile) const {
    return plan_.node_tiles[static_cast<size_t>(node)][static_cast<size_t>(tile)];
  }

  NodeState& state(int node) { return states_[static_cast<size_t>(node)]; }
  NodeStats& nstats(int node) { return stats_.nodes[static_cast<size_t>(node)]; }

  const ChunkMeta& input_meta(std::uint32_t pos) const {
    const std::size_t ordinal =
        pq_.input_dataset_of.empty() ? 0 : pq_.input_dataset_of[pos];
    return inputs_[ordinal]->chunk(pq_.selected_inputs[pos]);
  }
  const ChunkMeta& output_meta(std::uint32_t pos) const {
    return output_.chunk(pq_.selected_outputs[pos]);
  }

  bool hosts_replica(int node, std::uint32_t o) const {
    if (plan_.owner_of_output[o] == node) return true;
    const auto& hosts = plan_.ghost_hosts[o];
    return std::binary_search(hosts.begin(), hosts.end(), node);
  }

  void track_accum_alloc(int node, std::uint32_t o) {
    NodeState& st = state(node);
    st.accum_resident += pq_.accum_bytes[o];
    nstats(node).peak_accum_bytes =
        std::max(nstats(node).peak_accum_bytes, st.accum_resident);
  }

  void track_accum_free(int node, std::uint32_t o) {
    state(node).accum_resident -= pq_.accum_bytes[o];
  }

  /// CPU time to pack or unpack `bytes` through the messaging stack.
  double comm_charge(std::uint64_t bytes) const {
    if (options_.comm_cpu_bytes_per_sec <= 0.0) return 0.0;
    return static_cast<double>(bytes) / options_.comm_cpu_bytes_per_sec;
  }

  // ------------------------------------------------------------------
  // Tile / phase sequencing.

  void start_tile(int node) {
    NodeState& st = state(node);
    st.started = true;
    st.phase = Phase::kInit;
    st.phase_start_s = exec_.now_seconds();
    st.issued = false;
    st.outstanding = 0;
    st.ghost_inits_received = 0;
    st.inputs_received = 0;
    st.combines_received = 0;
    begin_init(node);
    drain_deferred(node);
  }

  void advance_phase(int node) {
    NodeState& st = state(node);
    if (options_.pipeline_tiles) {
      if (st.phase == Phase::kOutput) {
        // Tile complete.  The sliding window (lag 1) lets this node run
        // one tile ahead of the slowest node, which is what overlaps one
        // node's global-combine burst with the others' next-tile reads.
        exec_.window_sync(node, st.tile, /*lag=*/1,
                          [this, node]() { transition(node); });
      } else {
        transition(node);
      }
    } else {
      exec_.barrier(node, [this, node]() { transition(node); });
    }
  }

  void transition(int node) {
    if (node == 0) record_phase_boundary();
    NodeState& st = state(node);
    st.issued = false;
    st.outstanding = 0;
    st.phase_start_s = exec_.now_seconds();
    switch (st.phase) {
      case Phase::kInit:
        st.phase = Phase::kLocalReduction;
        begin_local_reduction(node);
        drain_deferred(node);
        break;
      case Phase::kLocalReduction:
        st.phase = Phase::kGlobalCombine;
        begin_global_combine(node);
        drain_deferred(node);
        break;
      case Phase::kGlobalCombine:
        st.phase = Phase::kOutput;
        begin_output(node);
        drain_deferred(node);
        break;
      case Phase::kOutput:
        ++st.tile;
        if (st.tile < plan_.num_tiles) {
          start_tile(node);
        } else {
          exec_.finish(node);
        }
        break;
    }
  }

  void record_phase_boundary() {
    const double now = exec_.now_seconds();
    const double span = now - phase_start_;
    phase_start_ = now;
    switch (states_[0].phase) {
      case Phase::kInit:
        stats_.phase_init_s += span;
        break;
      case Phase::kLocalReduction:
        stats_.phase_lr_s += span;
        break;
      case Phase::kGlobalCombine:
        stats_.phase_gc_s += span;
        break;
      case Phase::kOutput:
        stats_.phase_oh_s += span;
        break;
    }
  }

  // ------------------------------------------------------------------
  // Phase 1: initialization.

  void begin_init(int node) {
    NodeState& st = state(node);
    const NodeTilePlan& tp = tile_plan(node, st.tile);

    for (std::uint32_t o : tp.local_accum) {
      ++st.outstanding;
      if (options_.init_from_output) {
        const ChunkMeta& meta = output_meta(o);
        exec_.read(node, meta.disk, meta.id, meta.bytes,
                   [this, node, o](std::optional<Chunk> chunk) {
                     on_output_chunk_read(node, o, std::move(chunk));
                   });
      } else {
        exec_.compute(node, costs_.init, [this, node, o]() {
          install_accumulator(node, o, /*existing=*/nullptr);
          op_done(node);
        });
        nstats(node).compute_init_s += costs_.init;
      }
    }
    if (!options_.init_from_output) {
      // Ghosts initialize locally; no communication happens.
      for (std::uint32_t o : tp.ghost_accum) {
        ++st.outstanding;
        exec_.compute(node, costs_.init, [this, node, o]() {
          install_accumulator(node, o, nullptr);
          op_done(node);
        });
        nstats(node).compute_init_s += costs_.init;
      }
    }
    st.issued = true;
    check_phase(node);
  }

  void on_output_chunk_read(int node, std::uint32_t o, std::optional<Chunk> chunk) {
    const ChunkMeta& meta = output_meta(o);
    NodeStats& ns = nstats(node);
    ++ns.chunks_read;
    ns.bytes_read += meta.bytes;

    // Initialize the owner's accumulator (paying the CPU cost of packing
    // the broadcast), then forward the existing output chunk to every
    // ghost host.
    const std::uint64_t msg_bytes = meta.bytes + kMessageHeaderBytes;
    const double pack = comm_charge(msg_bytes * plan_.ghost_hosts[o].size());
    ns.compute_init_s += costs_.init;
    ns.compute_comm_s += pack;

    auto existing = std::make_shared<std::optional<Chunk>>(std::move(chunk));
    exec_.compute(node, costs_.init + pack, [this, node, o, msg_bytes, existing]() {
      NodeStats& ns = nstats(node);
      std::shared_ptr<const std::vector<std::byte>> payload;
      if (existing->has_value() && (*existing)->has_payload()) {
        payload = std::make_shared<const std::vector<std::byte>>((*existing)->payload());
      }
      for (int host : plan_.ghost_hosts[o]) {
        Message msg;
        msg.src = node;
        msg.dst = host;
        msg.tag = MsgTag::kGhostInit;
        msg.bytes = msg_bytes;
        msg.chunk = output_meta(o).id;
        msg.aux = o;
        msg.tile = static_cast<std::uint32_t>(state(node).tile);
        msg.payload = payload;
        ++ns.msgs_sent;
        ns.bytes_sent += msg.bytes;
        exec_.send(std::move(msg));
      }
      install_accumulator(node, o, existing->has_value() ? &existing->value() : nullptr);
      op_done(node);
    });
  }

  void install_accumulator(int node, std::uint32_t o, const Chunk* existing) {
    NodeState& st = state(node);
    if (op_ != nullptr) {
      st.accums[o] = op_->initialize(output_meta(o), existing);
    } else {
      st.accums.emplace(o, std::vector<std::byte>{});
    }
    ++nstats(node).inits;
    track_accum_alloc(node, o);
  }

  void on_ghost_init(int node, const Message& msg) {
    NodeState& st = state(node);
    assert(st.phase == Phase::kInit);
    (void)st;
    const std::uint32_t o = msg.aux;
    // Rebuild the owner's output chunk view for Initialize.
    std::shared_ptr<Chunk> existing;
    if (msg.payload != nullptr) {
      existing = std::make_shared<Chunk>(output_meta(o), *msg.payload);
    }
    const double unpack = comm_charge(msg.bytes);
    nstats(node).compute_init_s += costs_.init;
    nstats(node).compute_comm_s += unpack;
    exec_.compute(node, costs_.init + unpack, [this, node, o, existing]() {
      install_accumulator(node, o, existing ? existing.get() : nullptr);
      NodeState& st = state(node);
      ++st.ghost_inits_received;
      check_phase(node);
    });
  }

  // ------------------------------------------------------------------
  // Phase 2: local reduction.

  void begin_local_reduction(int node) {
    NodeState& st = state(node);
    const NodeTilePlan& tp = tile_plan(node, st.tile);
    for (std::uint32_t i : tp.reads) {
      ++st.outstanding;
      const ChunkMeta& meta = input_meta(i);
      exec_.read(node, meta.disk, meta.id, meta.bytes,
                 [this, node, i](std::optional<Chunk> chunk) {
                   on_input_chunk_read(node, i, std::move(chunk));
                 });
    }
    st.issued = true;
    check_phase(node);
  }

  void on_input_chunk_read(int node, std::uint32_t i, std::optional<Chunk> chunk) {
    NodeState& st = state(node);
    const int tile = st.tile;
    const ChunkMeta& meta = input_meta(i);
    NodeStats& ns = nstats(node);
    ++ns.chunks_read;
    ns.bytes_read += meta.bytes;

    // Split this tile's targets into locally hosted replicas and remote
    // owners the chunk must be forwarded to.
    std::vector<std::uint32_t> local_targets;
    std::vector<int> remote_dests;
    for (std::uint32_t o : pq_.mapping.in_to_out[i]) {
      if (plan_.tile_of_output[o] != tile) continue;
      if (hosts_replica(node, o)) {
        local_targets.push_back(o);
      } else {
        remote_dests.push_back(plan_.owner_of_output[o]);
      }
    }
    std::sort(remote_dests.begin(), remote_dests.end());
    remote_dests.erase(std::unique(remote_dests.begin(), remote_dests.end()),
                       remote_dests.end());

    const std::uint64_t msg_bytes = meta.bytes + kMessageHeaderBytes;
    const double pack = comm_charge(msg_bytes * remote_dests.size());
    const double lr = costs_.lr_pair * static_cast<double>(local_targets.size());
    if (local_targets.empty() && remote_dests.empty()) {
      op_done(node);
      return;
    }
    ns.compute_lr_s += lr;
    ns.compute_comm_s += pack;
    auto held = std::make_shared<std::optional<Chunk>>(std::move(chunk));
    exec_.compute(node, lr + pack,
                  [this, node, i, msg_bytes, targets = std::move(local_targets),
                   dests = std::move(remote_dests), held]() {
                    NodeStats& ns = nstats(node);
                    std::shared_ptr<const std::vector<std::byte>> payload;
                    if (held->has_value() && (*held)->has_payload()) {
                      payload = std::make_shared<const std::vector<std::byte>>(
                          (*held)->payload());
                    }
                    for (int dst : dests) {
                      Message msg;
                      msg.src = node;
                      msg.dst = dst;
                      msg.tag = MsgTag::kInputForward;
                      msg.bytes = msg_bytes;
                      msg.chunk = input_meta(i).id;
                      msg.aux = i;
                      msg.tile = static_cast<std::uint32_t>(state(node).tile);
                      msg.payload = payload;
                      ++ns.msgs_sent;
                      ns.bytes_sent += msg.bytes;
                      exec_.send(std::move(msg));
                    }
                    aggregate_into(node, i, targets,
                                   held->has_value() ? &held->value() : nullptr);
                    op_done(node);
                  });
  }

  void aggregate_into(int node, std::uint32_t i,
                      const std::vector<std::uint32_t>& targets, const Chunk* chunk) {
    NodeState& st = state(node);
    NodeStats& ns = nstats(node);
    ns.lr_pairs += targets.size();
    if (op_ == nullptr || chunk == nullptr || !chunk->has_payload()) return;
    (void)i;
    for (std::uint32_t o : targets) {
      auto it = st.accums.find(o);
      assert(it != st.accums.end());
      op_->aggregate(*chunk, output_meta(o), it->second);
    }
  }

  void on_input_forward(int node, const Message& msg) {
    NodeState& st = state(node);
    assert(st.phase == Phase::kLocalReduction);
    const std::uint32_t i = msg.aux;
    const int tile = st.tile;

    // Exactly the edges the sender could not reduce locally: it forwarded
    // this chunk because it hosts no replica of these targets.
    std::vector<std::uint32_t> targets;
    for (std::uint32_t o : pq_.mapping.in_to_out[i]) {
      if (plan_.tile_of_output[o] != tile) continue;
      if (plan_.owner_of_output[o] == node && !hosts_replica(msg.src, o)) {
        targets.push_back(o);
      }
    }
    const double unpack = comm_charge(msg.bytes);
    const double cost = costs_.lr_pair * static_cast<double>(targets.size()) + unpack;
    nstats(node).compute_lr_s += cost - unpack;
    nstats(node).compute_comm_s += unpack;
    std::shared_ptr<Chunk> chunk;
    if (msg.payload != nullptr) {
      chunk = std::make_shared<Chunk>(input_meta(i), *msg.payload);
    }
    exec_.compute(node, cost, [this, node, i, targets = std::move(targets), chunk]() {
      aggregate_into(node, i, targets, chunk ? chunk.get() : nullptr);
      NodeState& st = state(node);
      ++st.inputs_received;
      check_phase(node);
    });
  }

  // ------------------------------------------------------------------
  // Phase 3: global combine.

  void begin_global_combine(int node) {
    NodeState& st = state(node);
    const NodeTilePlan& tp = tile_plan(node, st.tile);
    NodeStats& ns = nstats(node);
    if (!tp.ghost_accum.empty()) {
      std::uint64_t send_bytes = 0;
      for (std::uint32_t o : tp.ghost_accum) {
        send_bytes += pq_.accum_bytes[o] + kMessageHeaderBytes;
      }
      const double pack = comm_charge(send_bytes);
      ns.compute_comm_s += pack;
      ++st.outstanding;
      exec_.compute(node, pack, [this, node]() {
        NodeState& st = state(node);
        NodeStats& ns = nstats(node);
        const NodeTilePlan& tp = tile_plan(node, st.tile);
        for (std::uint32_t o : tp.ghost_accum) {
          Message msg;
          msg.src = node;
          msg.dst = plan_.owner_of_output[o];
          msg.tag = MsgTag::kGhostCombine;
          msg.bytes = pq_.accum_bytes[o] + kMessageHeaderBytes;
          msg.chunk = output_meta(o).id;
          msg.aux = o;
          msg.tile = static_cast<std::uint32_t>(st.tile);
          if (op_ != nullptr) {
            auto it = st.accums.find(o);
            assert(it != st.accums.end());
            msg.payload =
                std::make_shared<const std::vector<std::byte>>(std::move(it->second));
          }
          st.accums.erase(o);
          track_accum_free(node, o);
          ++ns.msgs_sent;
          ns.bytes_sent += msg.bytes;
          exec_.send(std::move(msg));
        }
        op_done(node);
      });
    }
    st.issued = true;
    check_phase(node);
  }

  void on_ghost_combine(int node, const Message& msg) {
    NodeState& st = state(node);
    assert(st.phase == Phase::kGlobalCombine);
    (void)st;
    const std::uint32_t o = msg.aux;
    const double unpack = comm_charge(msg.bytes);
    nstats(node).compute_gc_s += costs_.gc;
    nstats(node).compute_comm_s += unpack;
    auto payload = msg.payload;
    exec_.compute(node, costs_.gc + unpack, [this, node, o, payload]() {
      NodeState& st = state(node);
      if (op_ != nullptr && payload != nullptr) {
        auto it = st.accums.find(o);
        assert(it != st.accums.end());
        op_->combine(it->second, *payload);
      }
      ++nstats(node).combines;
      ++st.combines_received;
      check_phase(node);
    });
  }

  // ------------------------------------------------------------------
  // Phase 4: output handling.

  void begin_output(int node) {
    NodeState& st = state(node);
    const NodeTilePlan& tp = tile_plan(node, st.tile);
    const bool deliver = !options_.write_output && options_.output_sink != nullptr;
    for (std::uint32_t o : tp.local_accum) {
      ++st.outstanding;
      double cost = costs_.oh;
      if (deliver) {
        // Returning the chunk to the client costs message packing CPU.
        const double pack = comm_charge(output_meta(o).bytes + kMessageHeaderBytes);
        nstats(node).compute_comm_s += pack;
        cost += pack;
      }
      nstats(node).compute_oh_s += costs_.oh;
      exec_.compute(node, cost, [this, node, o]() { finalize_output(node, o); });
    }
    st.issued = true;
    check_phase(node);
  }

  void finalize_output(int node, std::uint32_t o) {
    NodeState& st = state(node);
    NodeStats& ns = nstats(node);
    ++ns.outputs;
    std::vector<std::byte> payload;
    if (op_ != nullptr) {
      auto it = st.accums.find(o);
      assert(it != st.accums.end());
      if (options_.accum_sink != nullptr) options_.accum_sink(o, it->second);
      payload = op_->output(output_meta(o), it->second);
    }
    st.accums.erase(o);
    track_accum_free(node, o);

    const ChunkMeta& meta = output_meta(o);
    if (!options_.write_output) {
      if (options_.output_sink != nullptr) {
        ++ns.msgs_sent;
        ns.bytes_sent += meta.bytes + kMessageHeaderBytes;
        options_.output_sink(Chunk(meta, std::move(payload)));
      }
      op_done(node);
      return;
    }
    ++ns.chunks_written;
    ns.bytes_written += meta.bytes;
    exec_.write(node, meta.disk, Chunk(meta, std::move(payload)),
                [this, node]() { op_done(node); });
  }

  // ------------------------------------------------------------------
  // Completion plumbing.

  void op_done(int node) {
    NodeState& st = state(node);
    assert(st.outstanding > 0);
    --st.outstanding;
    check_phase(node);
  }

  void check_phase(int node) {
    NodeState& st = state(node);
    ADR_DEBUG("node " << node << " check tile=" << st.tile << " phase="
                      << static_cast<int>(st.phase) << " issued=" << st.issued
                      << " outstanding=" << st.outstanding << " gi="
                      << st.ghost_inits_received << " in=" << st.inputs_received
                      << " cb=" << st.combines_received
                      << " deferred=" << st.deferred.size());
    if (!st.issued || st.outstanding > 0) return;
    const NodeTilePlan& tp = tile_plan(node, st.tile);
    switch (st.phase) {
      case Phase::kInit: {
        const int expected = options_.init_from_output ? tp.expected_ghost_inits : 0;
        if (st.ghost_inits_received < expected) return;
        break;
      }
      case Phase::kLocalReduction:
        if (st.inputs_received < tp.expected_inputs) return;
        break;
      case Phase::kGlobalCombine:
        if (st.combines_received < tp.expected_combines) return;
        break;
      case Phase::kOutput:
        break;
    }
    if (options_.record_trace) {
      st.spans.push_back(PhaseSpan{node, st.tile, static_cast<int>(st.phase),
                                   st.phase_start_s, exec_.now_seconds()});
    }
    st.issued = false;  // ensure a single barrier entry per phase
    advance_phase(node);
  }

  void on_message(const Message& msg) {
    NodeStats& ns = nstats(msg.dst);
    ++ns.msgs_received;
    ns.bytes_received += msg.bytes;
    NodeState& st = state(msg.dst);
    if (!st.started || msg.tile != static_cast<std::uint32_t>(st.tile) ||
        st.phase != phase_of(msg.tag)) {
      // The sender runs ahead of this node (at most one phase under
      // barriers, one tile under pipelining); stale messages are
      // impossible because phase completion counts them first.
      assert(!st.started || msg.tile > static_cast<std::uint32_t>(st.tile) ||
             (msg.tile == static_cast<std::uint32_t>(st.tile) &&
              static_cast<int>(phase_of(msg.tag)) > static_cast<int>(st.phase)));
      st.deferred.push_back(msg);
      return;
    }
    dispatch(msg);
  }

  void dispatch(const Message& msg) {
    switch (msg.tag) {
      case MsgTag::kGhostInit:
        on_ghost_init(msg.dst, msg);
        break;
      case MsgTag::kInputForward:
        on_input_forward(msg.dst, msg);
        break;
      case MsgTag::kGhostCombine:
        on_ghost_combine(msg.dst, msg);
        break;
      default:
        ADR_WARN("unexpected message tag");
        break;
    }
  }

  /// Replays deferred messages that now match the node's (tile, phase).
  /// The expected-count bookkeeping guarantees a phase cannot complete
  /// while a message belonging to it sits deferred.
  void drain_deferred(int node) {
    NodeState& st = state(node);
    if (st.deferred.empty()) return;
    std::vector<Message> ready;
    std::vector<Message> keep;
    for (Message& msg : st.deferred) {
      if (msg.tile == static_cast<std::uint32_t>(st.tile) &&
          phase_of(msg.tag) == st.phase) {
        ready.push_back(std::move(msg));
      } else {
        keep.push_back(std::move(msg));
      }
    }
    st.deferred = std::move(keep);
    for (const Message& msg : ready) dispatch(msg);
  }

  Executor& exec_;
  const PlannedQuery& pq_;
  const QueryPlan& plan_;
  std::vector<const Dataset*> inputs_;
  const Dataset& output_;
  const AggregationOp* op_;
  ComputeCosts costs_;
  ExecOptions options_;

  std::vector<NodeState> states_;
  ExecStats stats_;
  double phase_start_ = 0.0;
};

}  // namespace

ExecStats execute_query(Executor& executor, const PlannedQuery& pq,
                        const Dataset& input, const Dataset& output,
                        const AggregationOp* op, const ComputeCosts& costs,
                        int disks_per_node, const ExecOptions& options) {
  Engine engine(executor, pq, {&input}, output, op, costs, disks_per_node, options);
  return engine.run();
}

ExecStats execute_query(Executor& executor, const PlannedQuery& pq,
                        const std::vector<const Dataset*>& inputs,
                        const Dataset& output, const AggregationOp* op,
                        const ComputeCosts& costs, int disks_per_node,
                        const ExecOptions& options) {
  Engine engine(executor, pq, inputs, output, op, costs, disks_per_node, options);
  return engine.run();
}

}  // namespace adr
