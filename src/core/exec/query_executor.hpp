// Query execution service (paper section 2.4).
//
// Carries out a query plan on an Executor substrate.  Per tile, every node
// runs the four phases —
//
//   1. Initialization : read own output chunks, initialize accumulator
//      chunks, forward copies to ghost hosts;
//   2. Local Reduction: read local input chunks asynchronously (pipelined
//      through the disk queue), aggregate into locally hosted replicas,
//      forward chunks whose targets are not hosted here to their owners;
//   3. Global Combine : send ghost accumulator chunks to their owners and
//      merge arrivals;
//   4. Output Handling: finalize accumulators into output chunks and
//      write them back to the local disks
//
// — reacting to I/O, message and compute completions, exactly the
// operation-queue structure the paper describes.  Phases are separated by
// barriers; message counts expected by each phase come from the plan, so
// no additional coordination traffic is needed.
//
// The engine runs metadata-only (op == nullptr: costs and volumes are
// exact, payloads absent) or with real payloads and a real AggregationOp.
//
// Concurrency: execute_query keeps all per-query state (accumulators,
// phase counters, stats) on the stack of the call and inside the
// Executor instance it is handed; it never touches globals.  Concurrent
// calls are safe as long as each call gets its own Executor and the
// shared ChunkStore/Dataset arguments are used read-only or internally
// locked — which is how Repository::submit drives it.
#pragma once

#include <memory>

#include "core/aggregation.hpp"
#include "core/qos.hpp"
#include "core/exec/exec_stats.hpp"
#include "core/planner/cost_model.hpp"
#include "core/planner/planner.hpp"
#include "runtime/executor.hpp"
#include "storage/dataset.hpp"

namespace adr {

struct ExecOptions {
  /// Quality-of-service contract riding with the query: deadline,
  /// priority class, drop-on-expiry flag (core/qos.hpp).  The scheduler
  /// and server honor it; execution itself never aborts mid-query.
  Qos qos;
  /// Charge the initialization-phase output read + ghost broadcast
  /// (paper Fig. 7 "communication for replicated output blocks").
  bool init_from_output = true;
  /// Write final output chunks back to the disk farm.
  bool write_output = true;
  /// CPU throughput of the messaging software stack: every sent and
  /// received byte costs CPU time at this rate on its endpoint (the SP's
  /// message passing was CPU-mediated).  0 disables the charge.
  double comm_cpu_bytes_per_sec = 0.0;
  /// Tile-pipelined execution (the paper's "overlap disk operations,
  /// network operations and processing as much as possible"): each node
  /// advances through its phases independently, paced by expected message
  /// counts, and may run one tile ahead of the slowest node.  When false,
  /// every phase ends in a global barrier (the ablation baseline).
  bool pipeline_tiles = true;
  /// Record per-node phase spans into ExecStats::trace (see
  /// render_gantt / trace_to_csv).
  bool record_trace = false;
  /// When set and write_output is false, finalized output chunks are
  /// handed to this sink instead of being written to the disk farm (the
  /// paper's "output can also be returned to the client from the
  /// back-end nodes").  Called from node contexts: must be thread-safe
  /// under the thread executor.
  std::function<void(Chunk&&)> output_sink;
  /// When set (and op != nullptr), receives each finalized accumulator
  /// after global combine, just before op->output() consumes it: the
  /// output *position* in the plan (index into selected_outputs) and the
  /// complete merged partial.  This is the marginal cache's publish tap —
  /// by this point the accumulator's value is strategy-independent.
  /// Called from node contexts: must be thread-safe under the thread
  /// executor.
  std::function<void(std::uint32_t, const std::vector<std::byte>&)> accum_sink;
};

/// Executes `pq` on `executor`.  `op` may be null for metadata-only runs.
/// `costs` are the per-chunk compute costs charged on the simulated CPU
/// (ignored by the thread executor, which costs real time).
ExecStats execute_query(Executor& executor, const PlannedQuery& pq,
                        const Dataset& input, const Dataset& output,
                        const AggregationOp* op, const ComputeCosts& costs,
                        int disks_per_node, const ExecOptions& options = {});

/// Multi-input variant: `inputs` must list the datasets in the order the
/// plan's `input_dataset_of` ordinals refer to.
ExecStats execute_query(Executor& executor, const PlannedQuery& pq,
                        const std::vector<const Dataset*>& inputs,
                        const Dataset& output, const AggregationOp* op,
                        const ComputeCosts& costs, int disks_per_node,
                        const ExecOptions& options = {});

}  // namespace adr
