// Execution statistics.
//
// Collected per back-end node during query execution; these are exactly
// the quantities the paper's Figures 8 and 9 plot: total query execution
// time, per-processor communication volume, and per-processor computation
// time (split by phase).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats_util.hpp"

namespace adr {

/// One traced interval of a node actively working in a phase.  Gaps
/// between a node's spans are time spent waiting (for messages, the
/// sliding window, or a barrier).
struct PhaseSpan {
  int node = 0;
  int tile = 0;
  /// 0=Initialization 1=Local Reduction 2=Global Combine 3=Output.
  int phase = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  double duration_s() const { return end_s - start_s; }
};

const char* phase_name(int phase);

struct NodeStats {
  std::uint64_t chunks_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_received = 0;
  /// Aggregation (input chunk, accumulator chunk) pairs processed here.
  std::uint64_t lr_pairs = 0;
  /// Ghost merges performed here (global combine).
  std::uint64_t combines = 0;
  /// Accumulator chunks initialized here (local + ghost).
  std::uint64_t inits = 0;
  /// Output chunks finalized here.
  std::uint64_t outputs = 0;

  /// Cost-model compute seconds charged per phase.
  double compute_init_s = 0.0;
  double compute_lr_s = 0.0;
  double compute_gc_s = 0.0;
  double compute_oh_s = 0.0;
  /// CPU time spent packing/unpacking messages (software messaging is
  /// CPU-mediated on the modelled machine).
  double compute_comm_s = 0.0;

  double compute_total_s() const {
    return compute_init_s + compute_lr_s + compute_gc_s + compute_oh_s +
           compute_comm_s;
  }

  /// Peak accumulator bytes resident at once (tiling memory check).
  std::uint64_t peak_accum_bytes = 0;
};

struct ExecStats {
  std::vector<NodeStats> nodes;

  /// Elapsed seconds per phase, summed over tiles (executor clock).
  double phase_init_s = 0.0;
  double phase_lr_s = 0.0;
  double phase_gc_s = 0.0;
  double phase_oh_s = 0.0;
  /// End-to-end query execution time (executor clock).
  double total_s = 0.0;
  /// Summed node-thread CPU seconds for the run (thread backend; 0 on
  /// the simulator).  total_s is wall time — the gap between them is
  /// I/O and synchronization wait.
  double thread_cpu_s = 0.0;
  int tiles = 0;

  /// Cross-query chunk-cache traffic attributed to this query (thread
  /// backend with CachingChunkStore; all zero otherwise).  The cache sits
  /// below the engine, so chunks_read / bytes_read above are unchanged —
  /// these say how many of those reads were served from memory.  Under
  /// concurrent submits the attribution is approximate (counters are
  /// shared across in-flight queries).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// Per-node phase timeline (populated when ExecOptions::record_trace).
  std::vector<PhaseSpan> trace;

  std::uint64_t total_bytes_sent() const;
  std::uint64_t total_bytes_read() const;
  std::uint64_t total_lr_pairs() const;

  /// Per-node communication volume (bytes sent), as in paper Fig. 9(a-b).
  Summary comm_volume() const;
  /// Per-node compute time, as in paper Fig. 9(c-d).
  Summary compute_time() const;

  std::string summary() const;
};

/// Renders the trace as an ASCII Gantt chart, one row per node:
/// I/L/G/O mark the active phase, '.' marks waiting.  Empty string when
/// the stats carry no trace.
std::string render_gantt(const ExecStats& stats, int width = 96);

/// Dumps the trace as CSV (node,tile,phase,start_s,end_s).
void trace_to_csv(const ExecStats& stats, std::ostream& os);

}  // namespace adr
