#include "core/query.hpp"

namespace adr {

std::string to_string(StrategyKind s) {
  switch (s) {
    case StrategyKind::kFRA:
      return "FRA";
    case StrategyKind::kSRA:
      return "SRA";
    case StrategyKind::kDA:
      return "DA";
    case StrategyKind::kHybrid:
      return "Hybrid";
    case StrategyKind::kAuto:
      return "Auto";
  }
  return "?";
}

std::string to_string(OutputDelivery d) {
  switch (d) {
    case OutputDelivery::kWriteBack:
      return "write-back";
    case OutputDelivery::kReturnToClient:
      return "return-to-client";
    case OutputDelivery::kDiscard:
      return "discard";
  }
  return "?";
}

std::string to_string(TilingOrder o) {
  switch (o) {
    case TilingOrder::kHilbert:
      return "hilbert";
    case TilingOrder::kRowMajor:
      return "row-major";
    case TilingOrder::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace adr
