// Data aggregation service.
//
// Manages the user-provided Initialize / Aggregate / Output functions and
// the accumulator data type (paper section 2.1).  Aggregate must be
// associative and commutative (the distributive/algebraic class of Gray et
// al.), which is what lets the planner replicate accumulator chunks and
// merge them in any grouping: the Combine hook merges two partial
// accumulators and is the paper's global-combine step.
//
// Operations work on chunk payloads (raw bytes); the built-in operations
// use exact integer arithmetic so that every query strategy produces
// bit-identical results (floating-point sums are not associative).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/chunk.hpp"

namespace adr {

/// Describes accumulator sizing for planning: an accumulator chunk for an
/// output chunk of `b` bytes occupies `b * size_multiplier` bytes (e.g. a
/// running sum + count per pixel doubles the footprint).
struct AccumulatorLayout {
  double size_multiplier = 1.0;
};

class AggregationOp {
 public:
  virtual ~AggregationOp() = default;

  virtual std::string name() const = 0;

  virtual AccumulatorLayout layout() const { return {}; }

  /// True if Initialize needs the existing output chunk contents (forces
  /// the initialization-phase read + ghost broadcast of paper Fig. 7).
  virtual bool requires_existing_output() const { return false; }

  /// Creates the accumulator payload for one output chunk.  `existing` is
  /// the current output chunk when requires_existing_output(), else null.
  virtual std::vector<std::byte> initialize(const ChunkMeta& out_meta,
                                            const Chunk* existing) const = 0;

  /// Aggregates one input chunk into an accumulator (the reduction step).
  virtual void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                         std::vector<std::byte>& accum) const = 0;

  /// Merges a partial accumulator (ghost) into `dst` (global combine).
  virtual void combine(std::vector<std::byte>& dst,
                       const std::vector<std::byte>& src) const = 0;

  /// Produces the final output chunk payload from an accumulator.
  virtual std::vector<std::byte> output(const ChunkMeta& out_meta,
                                        const std::vector<std::byte>& accum) const = 0;
};

/// Built-in: treats input payloads as uint64 arrays and accumulates
/// [sum, count, max] triples.  Exact and fully order-independent.
class SumCountMaxOp : public AggregationOp {
 public:
  std::string name() const override { return "sum-count-max"; }
  AccumulatorLayout layout() const override { return {3.0}; }
  std::vector<std::byte> initialize(const ChunkMeta& out_meta,
                                    const Chunk* existing) const override;
  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override;
  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override;
  std::vector<std::byte> output(const ChunkMeta& out_meta,
                                const std::vector<std::byte>& accum) const override;
};

/// Built-in: counts items per output chunk (accumulator = one uint64).
class CountOp : public AggregationOp {
 public:
  std::string name() const override { return "count"; }
  AccumulatorLayout layout() const override { return {1.0}; }
  std::vector<std::byte> initialize(const ChunkMeta& out_meta,
                                    const Chunk* existing) const override;
  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override;
  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override;
  std::vector<std::byte> output(const ChunkMeta& out_meta,
                                const std::vector<std::byte>& accum) const override;
};

/// Built-in: an exact histogram of uint64 input values over fixed-width
/// buckets in [lo, hi); values outside clamp to the edge buckets.
/// Registered as "histogram" with 16 buckets over [0, 1000).
class HistogramOp : public AggregationOp {
 public:
  HistogramOp(int buckets, std::uint64_t lo, std::uint64_t hi);
  std::string name() const override { return "histogram"; }
  AccumulatorLayout layout() const override {
    return {static_cast<double>(buckets_)};
  }
  std::vector<std::byte> initialize(const ChunkMeta& out_meta,
                                    const Chunk* existing) const override;
  void aggregate(const Chunk& input, const ChunkMeta& out_meta,
                 std::vector<std::byte>& accum) const override;
  void combine(std::vector<std::byte>& dst,
               const std::vector<std::byte>& src) const override;
  std::vector<std::byte> output(const ChunkMeta& out_meta,
                                const std::vector<std::byte>& accum) const override;

  int buckets() const { return buckets_; }
  int bucket_of(std::uint64_t value) const;

 private:
  int buckets_;
  std::uint64_t lo_;
  std::uint64_t hi_;
};

/// Registry (the service facade).
class AggregationService {
 public:
  AggregationService();

  void register_op(std::shared_ptr<AggregationOp> op);
  const AggregationOp* find(const std::string& name) const;
  std::shared_ptr<AggregationOp> find_shared(const std::string& name) const;
  std::vector<std::string> op_names() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<AggregationOp>> ops_;
};

}  // namespace adr
