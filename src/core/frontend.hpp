// ADR front end: the public API tying the services together.
//
// Mirrors the paper's architecture (its Figure 2): a front-end process
// owns the attribute-space, dataset, indexing and aggregation services,
// accepts range queries through the query interface service, plans them
// with the query planning service and executes them on the parallel
// back-end — here either the simulated IBM SP (virtual time) or the
// thread-backed in-process cluster (real payloads).
//
// Typical use:
//
//   adr::RepositoryConfig cfg;
//   cfg.num_nodes = 8;
//   adr::Repository repo(cfg);
//   std::uint32_t in  = repo.create_dataset("sensors", domain, chunks);
//   std::uint32_t out = repo.create_dataset("image", out_domain, out_chunks);
//   adr::Query q;
//   q.input_dataset = in; q.output_dataset = out;
//   q.range = ...; q.aggregation = "sum-count-max";
//   q.strategy = adr::StrategyKind::kAuto;
//   adr::QueryResult r = repo.submit(q);
//
// Batch submission (the paper's planning service handles "a set of
// queries"): submit_batch plans and executes a whole set, forming gangs
// of queries over the same input dataset so shared input chunks are
// fetched once per gang instead of once per query (see docs/batching.md):
//
//   std::vector<adr::SubmitRequest> batch = {{q1}, {q2}, {q3}};
//   std::vector<adr::SubmitOutcome> outs = repo.submit_batch(batch);
//   if (outs[0].status.ok()) use(outs[0].result);
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/fair_shared_mutex.hpp"
#include "common/status.hpp"
#include "core/aggregation.hpp"
#include "core/runtime_config.hpp"
#include "core/attribute_space.hpp"
#include "core/exec/exec_stats.hpp"
#include "core/exec/query_executor.hpp"
#include "core/planner/batch.hpp"
#include "core/planner/planner.hpp"
#include "core/query.hpp"
#include "obs/query_cost.hpp"
#include "runtime/executor_pool.hpp"
#include "sim/cluster.hpp"
#include "storage/chunk_cache.hpp"
#include "storage/dataset.hpp"
#include "storage/decluster.hpp"
#include "storage/disk_store.hpp"
#include "storage/marginal_cache.hpp"
#include "storage/shared_scan.hpp"

namespace adr {

struct RepositoryConfig {
  enum class Backend {
    kSimulated,  // virtual time on the modelled cluster
    kThreads,    // real threads, wall time
  };
  Backend backend = Backend::kThreads;

  int num_nodes = 4;
  int disks_per_node = 1;
  /// Per-node memory budget for accumulator chunks (drives tiling).
  std::uint64_t memory_per_node = 32ull * 1024 * 1024;
  /// Hardware model for the simulated backend (nodes/disks fields are
  /// overridden by the values above).
  sim::ClusterConfig machine = sim::ibm_sp_profile(4);
  /// Keep chunk payloads in the store (false = metadata-only).
  bool store_payloads = true;
  /// Index built over each dataset's chunk MBRs ("rtree", "grid", or a
  /// name registered with Repository::indices()).
  std::string index = "rtree";
  /// Non-empty: back the disk farm with files under this directory
  /// (FileChunkStore) instead of memory.
  std::filesystem::path storage_dir;
  /// Reattach to an existing file-backed farm instead of truncating it
  /// (pair with load_catalog() to restore the dataset metadata).
  bool open_existing = false;
  /// Thread backend: serve submits from a persistent pool of warm node-
  /// thread executors instead of spawning num_nodes threads per query.
  bool reuse_executor = true;
  /// Warm executors kept resident between submits (extra concurrent
  /// submits still get fresh executors — acquisition never blocks).
  std::size_t executor_pool_size = 2;
  /// Per-node byte budget for the cross-query chunk cache wrapped around
  /// the store on the thread backend (split evenly over the node's
  /// disks).  0 disables the cache.  The simulated backend never caches:
  /// its I/O costs are modelled, not paid.
  std::uint64_t chunk_cache_bytes_per_node = 64ull * 1024 * 1024;
  /// Byte cap on the gang shared-scan buffer submit_batch retains input
  /// chunks in while fanning them out to gang members (thread backend;
  /// see docs/batching.md).  0 disables batch read sharing — gang
  /// members then execute like serial submits.
  std::uint64_t batch_scan_bytes = 256ull * 1024 * 1024;
  /// Byte budget for the marginal cache: finalized per-output-chunk
  /// aggregation partials reused across overlapping queries (thread
  /// backend with payloads only; see docs/caching.md).  A query whose
  /// output chunk has the same contributing input set as a cached
  /// partial skips that chunk's I/O *and* aggregation.  0 disables it.
  std::uint64_t marginal_cache_bytes = 32ull * 1024 * 1024;

  int total_disks() const { return num_nodes * disks_per_node; }
};

struct QueryResult {
  StrategyKind strategy = StrategyKind::kFRA;
  int tiles = 0;
  std::uint64_t ghost_chunks = 0;
  std::uint64_t chunk_reads = 0;
  /// Chunk-cache traffic attributed to this query (mirrors
  /// stats.cache_*; zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Batch execution attribution: the gang this query ran in (1 =
  /// executed alone), reads served from the gang's shared-scan buffer
  /// during this query's turn, and backing-store fetches it paid.
  std::uint32_t gang_size = 1;
  std::uint64_t gang_shared_hits = 0;
  std::uint64_t gang_cold_reads = 0;
  /// Marginal-cache attribution: output chunks of this query served
  /// from cached partials vs executed cold (zeros when the cache is
  /// disabled or the query is not cacheable; see docs/caching.md).
  std::uint64_t marginal_hits = 0;
  std::uint64_t marginal_misses = 0;
  /// Itemized resource bill for this query (bytes by temperature, queue
  /// wait, executor wall vs thread-CPU time; see obs/query_cost.hpp).
  /// Finalized on the submit success path and summarized into the
  /// query.cost.* metric family.
  obs::QueryCostLedger cost;
  ExecStats stats;
  /// Cost estimates per strategy when the query used kAuto.
  std::vector<std::pair<StrategyKind, CostEstimate>> estimates;
  /// Finalized output chunks, for OutputDelivery::kReturnToClient
  /// (sorted by chunk id).
  std::vector<Chunk> outputs;
};

/// One entry of a submit_batch call: a query plus its per-query compute
/// charges and execution options.
struct SubmitRequest {
  Query query;
  ComputeCosts costs;
  ExecOptions options;
};

/// Structured per-query outcome of a batch submission: a typed status
/// (never throws per member — one malformed query cannot sink its gang)
/// plus the result when status.ok().
struct SubmitOutcome {
  Status status;
  QueryResult result;
  bool ok() const { return status.ok(); }
};

/// Thread safety: Repository serves concurrent clients.  The dataset
/// catalog (datasets_ / next_dataset_id_) is guarded by a phase-fair
/// shared mutex (writers are never starved by a stream of submits):
/// submit() and the other readers hold it shared for their whole run, so
/// a dataset can never be replaced or destroyed mid-query; create_dataset()
/// and load_catalog() take it exclusive.  The chunk store / chunk cache
/// and the executor pool have their own internal locks.  Locking order
/// (never acquire in the other direction):
///
///   catalog_mutex_  ->  executor pool mutex  ->  chunk cache shard mutex
///                   ->  ChunkStore internal mutex  ->  executor internals
///                   ->  marginal cache version/shard mutexes (leaf)
///
/// Registries (attribute spaces, aggregations, indices) are expected to be
/// populated before concurrent serving starts; lookups are read-only.
/// Per-query planner/executor state is entirely stack-local; the leased
/// executor is exclusive to its query or gang.
class Repository {
 public:
  explicit Repository(const RepositoryConfig& config);

  /// RuntimeConfig overload: `runtime` is validated (throws
  /// StatusError{kInvalidArgument}) and its executor_pool_size overrides
  /// the RepositoryConfig field, so one struct carries every dynamic
  /// knob (see core/runtime_config.hpp).
  Repository(const RepositoryConfig& config, const RuntimeConfig& runtime);

  const RepositoryConfig& config() const { return config_; }

  AttributeSpaceService& attribute_spaces() { return spaces_; }
  AggregationService& aggregations() { return aggregations_; }
  IndexRegistry& indices() { return indices_; }
  /// The store every component reads and writes through: the caching
  /// decorator when the chunk cache is enabled, else the raw farm.
  ChunkStore& store() { return active_store(); }

  /// The chunk cache, or nullptr when disabled.
  const CachingChunkStore* chunk_cache() const { return cache_.get(); }
  /// Cache counters so far (zeros when the cache is disabled).
  ChunkCacheStats chunk_cache_stats() const;

  /// The marginal (aggregate-reuse) cache, or nullptr when disabled.
  const MarginalCache* marginal_cache() const { return marginal_cache_.get(); }
  /// Marginal-cache counters so far (zeros when disabled).
  MarginalCacheStats marginal_cache_stats() const;

  /// Executor-pool counters so far (zeros before the first thread-backend
  /// submit or when reuse_executor is off).
  ThreadExecutorPool::Stats executor_pool_stats() const;

  /// Moves the executor pool's resident cap at runtime (the adaptive
  /// controller's scale actuator; clamped to >= 1).  `warm` additionally
  /// constructs idle executors up to the new cap so the next burst does
  /// not pay thread-spawn latency.  Takes effect immediately on a live
  /// pool and seeds the lazily-created one otherwise.
  void set_executor_pool_limit(std::size_t limit, bool warm = false);

  /// Loads a dataset (paper's four-step load) and returns its id.
  std::uint32_t create_dataset(const std::string& name, const Rect& domain,
                               std::vector<Chunk> chunks,
                               DeclusterMethod method = DeclusterMethod::kHilbert);

  const Dataset& dataset(std::uint32_t id) const;
  const Dataset* find_dataset(const std::string& name) const;
  std::size_t num_datasets() const;

  /// Plans and executes a range query on the back-end.  Safe to call from
  /// many threads at once: each call plans and executes with stack-local
  /// state while holding the catalog's shared lock.  Throws on failure
  /// (StatusError carries the typed code; see common/status.hpp).
  /// `costs` are the per-chunk compute charges for the simulated backend.
  QueryResult submit(const Query& query, const ComputeCosts& costs = {},
                     const ExecOptions& exec_options = {});

  /// Plans and executes a set of queries (the paper's planning service
  /// handles "a set of queries").  Requests over the same input
  /// dataset(s) form a *gang*: each member keeps the exact plan, tiling
  /// and output bytes it would get alone, but the gang executes over a
  /// shared-scan buffer so an input chunk needed by several members is
  /// fetched from storage once (thread backend; the simulated backend
  /// and batch_scan_bytes == 0 execute members independently).  Member
  /// outcomes are individually attributed and individually fallible —
  /// outcomes[i] matches batch[i] in order.
  std::vector<SubmitOutcome> submit_batch(const std::vector<SubmitRequest>& batch);

  /// Convenience wrapper over submit_batch: shared costs/options, throws
  /// the first member failure (after the whole batch has been attempted)
  /// and otherwise returns results in submission order.
  std::vector<QueryResult> submit_all(const std::vector<Query>& queries,
                                      const ComputeCosts& costs = {},
                                      const ExecOptions& exec_options = {});

  /// Convenience: reads one chunk of a dataset back from the disk farm.
  std::optional<Chunk> read_chunk(std::uint32_t dataset_id, std::uint32_t index) const;

  /// Persists all dataset metadata to a catalog file (payloads live in
  /// the file-backed farm when storage_dir is set).
  void save_catalog(const std::filesystem::path& path) const;

  /// Restores datasets from a catalog written by save_catalog(); returns
  /// how many were registered.  Placements must fit this farm.
  std::size_t load_catalog(const std::filesystem::path& path);

 private:
  /// Everything submit needs after catalog resolution: the datasets, the
  /// resolved map/aggregation, and the plan request (caller holds the
  /// catalog lock shared; the pointers stay valid while it does).
  struct Prepared {
    const Dataset* input = nullptr;
    std::vector<const Dataset*> all_inputs;
    const Dataset* output = nullptr;
    const MapFunction* map = nullptr;
    const AggregationOp* op = nullptr;
    PlanRequest request;
  };

  /// Outcome of consulting the marginal cache for one prepared query
  /// (docs/caching.md): the chunk selection, per-output-chunk
  /// signatures, the partials served from cache, and the selection
  /// reduced to the misses.
  struct MarginalConsult {
    /// Cache consulted for this query (gates merge and publish).
    bool active = false;
    /// Every output chunk was served — skip planning and execution.
    bool fully_cached = false;
    /// Signature per original output position (publish keys).
    std::vector<MarginalKey> keys;
    /// Served partials: (original output position, accumulator bytes).
    std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> hits;
    /// Original output position per reduced-plan position.
    std::vector<std::uint32_t> executed_orig;
    /// The full selection, kept to finalize served chunks.
    QuerySelection original;
    /// Selection covering only the misses, ready for plan_query.
    QuerySelection reduced;
    /// Input payload bytes whose read and aggregation were skipped.
    std::uint64_t bytes_saved = 0;
  };

  Prepared prepare_locked(const Query& query, const ComputeCosts& costs) const;
  /// Selects the query's chunks and looks every output-chunk signature
  /// up in the marginal cache.  Inactive (and selection-free) when the
  /// cache is off or the query is not cacheable (no aggregation op, op
  /// reads existing output).
  MarginalConsult consult_marginals_locked(const Prepared& prepared) const;
  /// Finalizes a fully-cached query straight from served partials: no
  /// plan, no executor, only op->output per chunk plus delivery.
  QueryResult finalize_from_cache_locked(const Query& query, const Prepared& prepared,
                                         MarginalConsult& consult,
                                         const ExecOptions& exec_options);
  /// Runs the planning service on a prepared query (metrics + trace
  /// spans included); failures become StatusError{kPlanRejected}.
  /// `selection` non-null plans that (possibly reduced) selection
  /// instead of selecting from scratch; it is consumed.
  PlannedQuery plan_prepared(const Prepared& prepared,
                             QuerySelection* selection = nullptr) const;
  /// Executes a planned query.  `gang_executor` non-null routes
  /// execution through the gang's shared executor (batch path) instead
  /// of the pool; per-query attribution is unchanged.  `marginal`
  /// non-null (and active) merges served partials into the delivery,
  /// publishes the executed chunks' partials on success, and fills the
  /// marginal_hits/marginal_misses attribution.
  QueryResult execute_planned_locked(const Query& query, const Prepared& prepared,
                                     PlannedQuery&& planned, const ComputeCosts& costs,
                                     const ExecOptions& exec_options,
                                     Executor* gang_executor,
                                     MarginalConsult* marginal);
  QueryResult submit_locked(const Query& query, const ComputeCosts& costs,
                            const ExecOptions& exec_options);
  /// Executes one gang (>= 2 members, thread backend) over a shared-scan
  /// buffer; writes each member's outcome into outcomes[indices[m]].
  void run_gang_locked(const std::vector<SubmitRequest>& batch,
                       const std::vector<std::size_t>& indices,
                       std::vector<SubmitOutcome>& outcomes);
  ChunkStore& active_store() {
    if (invalidating_store_ != nullptr) return *invalidating_store_;
    return cache_ ? static_cast<ChunkStore&>(*cache_) : *store_;
  }
  const ChunkStore& active_store() const {
    if (invalidating_store_ != nullptr) return *invalidating_store_;
    return cache_ ? static_cast<const ChunkStore&>(*cache_) : *store_;
  }
  /// Lazily creates the shared executor pool (thread backend only).
  ThreadExecutorPool& thread_pool();

  RepositoryConfig config_;
  std::unique_ptr<ChunkStore> store_;
  /// Decorates store_ when chunk_cache_bytes_per_node > 0 (threads).
  std::unique_ptr<CachingChunkStore> cache_;
  /// Cross-query aggregate reuse when marginal_cache_bytes > 0
  /// (threads backend with payloads; see docs/caching.md).
  std::unique_ptr<MarginalCache> marginal_cache_;
  /// Outermost store decorator when the marginal cache is on: bumps
  /// data versions on put/erase so out-of-band writes invalidate.
  std::unique_ptr<MarginalInvalidatingStore> invalidating_store_;
  AttributeSpaceService spaces_;
  AggregationService aggregations_;
  IndexRegistry indices_;
  /// Guards datasets_ and next_dataset_id_ (see class comment).
  mutable FairSharedMutex catalog_mutex_;
  std::map<std::uint32_t, Dataset> datasets_;
  std::uint32_t next_dataset_id_ = 0;
  /// Lazily-created pool of warm thread executors shared by all submits.
  mutable std::mutex executor_pool_mutex_;
  std::unique_ptr<ThreadExecutorPool> executor_pool_;
  /// Resident cap for the pool; starts at config_.executor_pool_size and
  /// moves via set_executor_pool_limit() (guarded by executor_pool_mutex_
  /// so it never races the pool's lazy construction).
  std::size_t executor_pool_limit_ = 0;
};

/// Query submission service (paper Fig. 2): clients enqueue queries
/// through the front end and collect results by ticket.
///
/// Two modes share one queue:
///
///  - Serial (seed behaviour): enqueue() then process_all() runs every
///    pending query in FIFO order on the calling thread.
///  - Worker pool: start(n) spins up n scheduler workers that run
///    independent queries concurrently.  Queries sharing a client id are
///    a FIFO lane — at most one query per client is in flight and lanes
///    complete in submission order, so each client observes the same
///    serial semantics it would get from its own connection.  enqueue()
///    applies back-pressure: it blocks while `max_pending` accepted
///    queries are still queued or running.
///
/// Gang formation (worker pool only): a worker that pops a query scans
/// the queue for more queries over the same input dataset(s) with
/// overlapping ranges and a compatible strategy, optionally waiting a
/// short formation window for stragglers, and submits them as one batch
/// (Repository::submit_batch) so shared input chunks are fetched once.
/// Lanes stay FIFO: only the earliest runnable query of each client can
/// join a gang, and an examined-but-unsuitable query blocks its lane's
/// later queries from overtaking it.  See docs/batching.md.
///
/// Qos (core/qos.hpp): dispatch picks the highest-priority runnable
/// lane head (FIFO within each client lane is never reordered), and a
/// queued query whose deadline has expired — or whose remaining budget
/// is below the recent execution-time EWMA — is *shed* instead of run:
/// its ticket completes with kDeadlineExceeded and the scheduler.shed
/// counter ticks.  Deadlines with drop_on_expiry == false are advisory
/// and never shed.  See docs/scheduling.md.
///
/// take(ticket)/try_take(ticket) retrieve one result and release its
/// slot; drain() blocks until everything accepted so far has finished;
/// stop() drains and joins the workers.
class QuerySubmissionService {
 public:
  /// Gang formation policy (now adr::GangPolicy in core/runtime_config.hpp;
  /// this alias keeps the historical nested name compiling).
  using GangPolicy = adr::GangPolicy;

  explicit QuerySubmissionService(Repository& repository,
                                  std::size_t max_pending = 1024)
      : repository_(&repository), max_pending_(max_pending) {}

  /// RuntimeConfig overload: validates `runtime` (throws
  /// StatusError{kInvalidArgument}) and adopts its max_pending and gang
  /// policy.  start() still takes the worker count — the server decides
  /// when (and whether) to spin the pool up.
  QuerySubmissionService(Repository& repository, const RuntimeConfig& runtime);
  ~QuerySubmissionService();

  QuerySubmissionService(const QuerySubmissionService&) = delete;
  QuerySubmissionService& operator=(const QuerySubmissionService&) = delete;

  /// Starts `n_workers` scheduler threads (no-op if already started).
  void start(int n_workers);

  /// Drains accepted work and joins the workers (no-op when not started).
  void stop();

  /// Replaces the gang formation policy (call before start()).
  void set_gang_policy(const GangPolicy& policy);
  GangPolicy gang_policy() const;

  /// Replaces only the formation window, safely while workers run (the
  /// adaptive controller's batching actuator: 0 closes the window).
  void set_gang_window(std::chrono::microseconds window);

  /// Registers a hook invoked once per finished ticket, on the worker
  /// thread that finished it, after the outcome is retrievable via
  /// take()/try_take() and outside the service's lock.  The event-driven
  /// server uses it to wake its loop instead of blocking a thread in
  /// take().  Call before start(); the hook must not re-enter the
  /// service except through try_take().
  void set_completion_callback(std::function<void(std::uint64_t)> cb);

  /// Enqueues a query; the returned ticket retrieves its result later.
  /// Queries with the same `client_id` execute in FIFO order relative to
  /// each other.  Blocks for a free slot when the pool is saturated.
  /// `options` travel with the query to execution (output delivery,
  /// pipelining, tracing — see ExecOptions).
  std::uint64_t enqueue(Query query, ComputeCosts costs = {},
                        std::uint64_t client_id = 0, ExecOptions options = {});

  /// Non-blocking enqueue: returns 0 instead of waiting when max_pending
  /// accepted queries are already queued or running (the server turns
  /// this into a protocol-level "server busy" refusal).
  std::uint64_t try_enqueue(Query query, ComputeCosts costs = {},
                            std::uint64_t client_id = 0, ExecOptions options = {});

  /// A finished query's outcome, moved out of the service: a typed
  /// status plus the result when status.ok().
  struct Outcome {
    Status status;
    QueryResult result;  // valid when status.ok()
    bool ok() const { return status.ok(); }
  };

  /// Blocks until the ticket's query finishes, then removes its outcome
  /// from the service and returns it.  Unlike the deprecated
  /// wait()/result() accessors the service retains nothing afterwards,
  /// so a long-running server's results map cannot grow without bound.
  /// An unknown or already-taken ticket returns a kNotFound outcome
  /// immediately.  Note: a ticket accepted but never dispatched (no
  /// pool running and no process_all() in sight) blocks until someone
  /// runs it — use try_take() when polling.
  Outcome take(std::uint64_t ticket);

  /// Non-blocking take: nullopt while the ticket's query is still
  /// queued or running; otherwise exactly take().
  std::optional<Outcome> try_take(std::uint64_t ticket);

  /// Runs every pending query in FIFO order on this thread when no pool
  /// is running; with a pool, equivalent to drain().  Returns how many
  /// queries finished during this call.
  std::size_t process_all();

  /// Blocks until all accepted work has finished; returns how many
  /// queries finished during this call.
  std::size_t drain();

  /// Queued plus in-flight queries.
  std::size_t pending() const;

  /// Blocks until the ticket's query finishes; returns its result, or
  /// nullptr if the ticket is unknown or its query failed.
  /// Deprecated: results accumulate in the service for its lifetime —
  /// use take()/try_take(), which release the slot.
  [[deprecated("unbounded retention; use take()/try_take()")]]
  const QueryResult* wait(std::uint64_t ticket);

  /// Result for a ticket, or nullptr if unknown / not yet processed /
  /// failed.  The pointer stays valid for the service's lifetime.
  /// Deprecated: unbounded retention — use try_take().
  [[deprecated("unbounded retention; use take()/try_take()")]]
  const QueryResult* result(std::uint64_t ticket) const;

  /// Error text for a failed ticket, or nullptr.
  /// Deprecated: unbounded retention — use take()/try_take(), whose
  /// Outcome carries the typed Status.
  [[deprecated("unbounded retention; use take()/try_take()")]]
  const std::string* error(std::uint64_t ticket) const;

 private:
  struct Pending {
    std::uint64_t ticket;
    std::uint64_t client;
    Query query;
    ComputeCosts costs;
    ExecOptions options;
    /// Accept time, for the enqueue-to-dispatch wait histogram and the
    /// "queued" trace span.
    std::chrono::steady_clock::time_point enqueued_at{};
    std::uint64_t enqueued_ts_us = 0;  // tracer clock; 0 when not tracing
  };

  void worker_loop();
  void run_one(Pending&& p);
  void run_gang(std::vector<Pending>&& gang);
  // Deadline shed check at dispatch time: true (and the outcome is
  // recorded as kDeadlineExceeded) when the query's Qos says drop on
  // expiry and either the deadline has passed or the execution-latency
  // EWMA predicts it will pass before the result lands.  Called without
  // mutex_ held.  See docs/scheduling.md.
  bool maybe_shed(Pending& p);
  // Pops the best runnable queued query: among the head entry of each
  // idle client lane, the highest Qos priority wins, earliest accepted
  // breaking ties (all-default priorities reproduce plain FIFO).  Caller
  // holds mutex_; marks the winner's lane busy.
  bool pop_runnable(Pending& out);
  // Moves queued queries that can join `leader`'s gang out of the queue
  // (caller holds mutex_); marks their lanes busy.  Respects lane FIFO:
  // an examined-but-unsuitable query blocks its client's later queries.
  void form_gang_locked(std::vector<Pending>& gang);
  // Records one finished outcome and frees its lane (caller holds mutex_).
  void finish_locked(std::uint64_t ticket, std::uint64_t client, Outcome&& outcome);
  // True while the ticket is accepted but unfinished: queued or running
  // (caller holds mutex_).  Lets take()/try_take() distinguish "still in
  // flight" from "already taken" — a drained ticket is kNotFound, never
  // a wait that can't end.
  bool ticket_pending_locked(std::uint64_t ticket) const;

  Repository* repository_;
  const std::size_t max_pending_;
  /// Per-ticket completion hook (set before start(); never under mutex_).
  std::function<void(std::uint64_t)> completion_cb_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new work or stop
  std::condition_variable done_cv_;  // waiters: a query finished
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  GangPolicy gang_policy_;
  std::deque<Pending> queue_;
  std::unordered_set<std::uint64_t> busy_clients_;
  /// Tickets dispatched to a worker (or process_all) and not yet
  /// finished; paired with queue_ scans by ticket_pending_locked().
  std::unordered_set<std::uint64_t> running_;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint64_t, QueryResult> results_;
  std::map<std::uint64_t, Status> errors_;
  std::uint64_t next_ticket_ = 1;
  /// EWMA of recent per-query execution wall seconds (atomic double
  /// bits; updated outside mutex_ after each run).  Feeds the predictive
  /// half of maybe_shed(): a query whose remaining deadline budget is
  /// below the typical execution time cannot finish in time.
  std::atomic<std::uint64_t> exec_ewma_bits_{0};
};

}  // namespace adr
