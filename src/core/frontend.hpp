// ADR front end: the public API tying the services together.
//
// Mirrors the paper's architecture (its Figure 2): a front-end process
// owns the attribute-space, dataset, indexing and aggregation services,
// accepts range queries through the query interface service, plans them
// with the query planning service and executes them on the parallel
// back-end — here either the simulated IBM SP (virtual time) or the
// thread-backed in-process cluster (real payloads).
//
// Typical use:
//
//   adr::RepositoryConfig cfg;
//   cfg.num_nodes = 8;
//   adr::Repository repo(cfg);
//   std::uint32_t in  = repo.create_dataset("sensors", domain, chunks);
//   std::uint32_t out = repo.create_dataset("image", out_domain, out_chunks);
//   adr::Query q;
//   q.input_dataset = in; q.output_dataset = out;
//   q.range = ...; q.aggregation = "sum-count-max";
//   q.strategy = adr::StrategyKind::kAuto;
//   adr::QueryResult r = repo.submit(q);
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/attribute_space.hpp"
#include "core/exec/exec_stats.hpp"
#include "core/exec/query_executor.hpp"
#include "core/planner/planner.hpp"
#include "core/query.hpp"
#include "sim/cluster.hpp"
#include "storage/dataset.hpp"
#include "storage/decluster.hpp"
#include "storage/disk_store.hpp"

namespace adr {

struct RepositoryConfig {
  enum class Backend {
    kSimulated,  // virtual time on the modelled cluster
    kThreads,    // real threads, wall time
  };
  Backend backend = Backend::kThreads;

  int num_nodes = 4;
  int disks_per_node = 1;
  /// Per-node memory budget for accumulator chunks (drives tiling).
  std::uint64_t memory_per_node = 32ull * 1024 * 1024;
  /// Hardware model for the simulated backend (nodes/disks fields are
  /// overridden by the values above).
  sim::ClusterConfig machine = sim::ibm_sp_profile(4);
  /// Keep chunk payloads in the store (false = metadata-only).
  bool store_payloads = true;
  /// Index built over each dataset's chunk MBRs ("rtree", "grid", or a
  /// name registered with Repository::indices()).
  std::string index = "rtree";
  /// Non-empty: back the disk farm with files under this directory
  /// (FileChunkStore) instead of memory.
  std::filesystem::path storage_dir;
  /// Reattach to an existing file-backed farm instead of truncating it
  /// (pair with load_catalog() to restore the dataset metadata).
  bool open_existing = false;

  int total_disks() const { return num_nodes * disks_per_node; }
};

struct QueryResult {
  StrategyKind strategy = StrategyKind::kFRA;
  int tiles = 0;
  std::uint64_t ghost_chunks = 0;
  std::uint64_t chunk_reads = 0;
  ExecStats stats;
  /// Cost estimates per strategy when the query used kAuto.
  std::vector<std::pair<StrategyKind, CostEstimate>> estimates;
  /// Finalized output chunks, for OutputDelivery::kReturnToClient
  /// (sorted by chunk id).
  std::vector<Chunk> outputs;
};

class Repository {
 public:
  explicit Repository(const RepositoryConfig& config);

  const RepositoryConfig& config() const { return config_; }

  AttributeSpaceService& attribute_spaces() { return spaces_; }
  AggregationService& aggregations() { return aggregations_; }
  IndexRegistry& indices() { return indices_; }
  ChunkStore& store() { return *store_; }

  /// Loads a dataset (paper's four-step load) and returns its id.
  std::uint32_t create_dataset(const std::string& name, const Rect& domain,
                               std::vector<Chunk> chunks,
                               DeclusterMethod method = DeclusterMethod::kHilbert);

  const Dataset& dataset(std::uint32_t id) const;
  const Dataset* find_dataset(const std::string& name) const;
  std::size_t num_datasets() const { return datasets_.size(); }

  /// Plans and executes a range query on the back-end.
  /// `costs` are the per-chunk compute charges for the simulated backend.
  QueryResult submit(const Query& query, const ComputeCosts& costs = {},
                     const ExecOptions& exec_options = {});

  /// Plans and executes a batch of queries in submission order on the
  /// back-end (the paper's planning service handles "a set of queries").
  std::vector<QueryResult> submit_all(const std::vector<Query>& queries,
                                      const ComputeCosts& costs = {},
                                      const ExecOptions& exec_options = {});

  /// Convenience: reads one chunk of a dataset back from the disk farm.
  std::optional<Chunk> read_chunk(std::uint32_t dataset_id, std::uint32_t index) const;

  /// Persists all dataset metadata to a catalog file (payloads live in
  /// the file-backed farm when storage_dir is set).
  void save_catalog(const std::filesystem::path& path) const;

  /// Restores datasets from a catalog written by save_catalog(); returns
  /// how many were registered.  Placements must fit this farm.
  std::size_t load_catalog(const std::filesystem::path& path);

 private:
  RepositoryConfig config_;
  std::unique_ptr<ChunkStore> store_;
  AttributeSpaceService spaces_;
  AggregationService aggregations_;
  IndexRegistry indices_;
  std::map<std::uint32_t, Dataset> datasets_;
  std::uint32_t next_dataset_id_ = 0;
};

/// Query submission service (paper Fig. 2): clients enqueue queries
/// through the front end and collect results by ticket.  Queries are
/// executed in FIFO order when process_all() runs (one back-end, one
/// query at a time, matching ADR's single parallel back-end).
class QuerySubmissionService {
 public:
  explicit QuerySubmissionService(Repository& repository)
      : repository_(&repository) {}

  /// Enqueues a query; the returned ticket retrieves its result later.
  std::uint64_t enqueue(Query query, ComputeCosts costs = {});

  /// Runs every pending query in FIFO order; returns how many ran.
  std::size_t process_all();

  std::size_t pending() const { return queue_.size(); }

  /// Result for a ticket, or nullptr if unknown / not yet processed.
  const QueryResult* result(std::uint64_t ticket) const;

 private:
  struct Pending {
    std::uint64_t ticket;
    Query query;
    ComputeCosts costs;
  };
  Repository* repository_;
  std::vector<Pending> queue_;
  std::map<std::uint64_t, QueryResult> results_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace adr
