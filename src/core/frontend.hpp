// ADR front end: the public API tying the services together.
//
// Mirrors the paper's architecture (its Figure 2): a front-end process
// owns the attribute-space, dataset, indexing and aggregation services,
// accepts range queries through the query interface service, plans them
// with the query planning service and executes them on the parallel
// back-end — here either the simulated IBM SP (virtual time) or the
// thread-backed in-process cluster (real payloads).
//
// Typical use:
//
//   adr::RepositoryConfig cfg;
//   cfg.num_nodes = 8;
//   adr::Repository repo(cfg);
//   std::uint32_t in  = repo.create_dataset("sensors", domain, chunks);
//   std::uint32_t out = repo.create_dataset("image", out_domain, out_chunks);
//   adr::Query q;
//   q.input_dataset = in; q.output_dataset = out;
//   q.range = ...; q.aggregation = "sum-count-max";
//   q.strategy = adr::StrategyKind::kAuto;
//   adr::QueryResult r = repo.submit(q);
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/fair_shared_mutex.hpp"
#include "core/aggregation.hpp"
#include "core/attribute_space.hpp"
#include "core/exec/exec_stats.hpp"
#include "core/exec/query_executor.hpp"
#include "core/planner/planner.hpp"
#include "core/query.hpp"
#include "runtime/executor_pool.hpp"
#include "sim/cluster.hpp"
#include "storage/chunk_cache.hpp"
#include "storage/dataset.hpp"
#include "storage/decluster.hpp"
#include "storage/disk_store.hpp"

namespace adr {

struct RepositoryConfig {
  enum class Backend {
    kSimulated,  // virtual time on the modelled cluster
    kThreads,    // real threads, wall time
  };
  Backend backend = Backend::kThreads;

  int num_nodes = 4;
  int disks_per_node = 1;
  /// Per-node memory budget for accumulator chunks (drives tiling).
  std::uint64_t memory_per_node = 32ull * 1024 * 1024;
  /// Hardware model for the simulated backend (nodes/disks fields are
  /// overridden by the values above).
  sim::ClusterConfig machine = sim::ibm_sp_profile(4);
  /// Keep chunk payloads in the store (false = metadata-only).
  bool store_payloads = true;
  /// Index built over each dataset's chunk MBRs ("rtree", "grid", or a
  /// name registered with Repository::indices()).
  std::string index = "rtree";
  /// Non-empty: back the disk farm with files under this directory
  /// (FileChunkStore) instead of memory.
  std::filesystem::path storage_dir;
  /// Reattach to an existing file-backed farm instead of truncating it
  /// (pair with load_catalog() to restore the dataset metadata).
  bool open_existing = false;
  /// Thread backend: serve submits from a persistent pool of warm node-
  /// thread executors instead of spawning num_nodes threads per query.
  bool reuse_executor = true;
  /// Warm executors kept resident between submits (extra concurrent
  /// submits still get fresh executors — acquisition never blocks).
  std::size_t executor_pool_size = 2;
  /// Per-node byte budget for the cross-query chunk cache wrapped around
  /// the store on the thread backend (split evenly over the node's
  /// disks).  0 disables the cache.  The simulated backend never caches:
  /// its I/O costs are modelled, not paid.
  std::uint64_t chunk_cache_bytes_per_node = 64ull * 1024 * 1024;

  int total_disks() const { return num_nodes * disks_per_node; }
};

struct QueryResult {
  StrategyKind strategy = StrategyKind::kFRA;
  int tiles = 0;
  std::uint64_t ghost_chunks = 0;
  std::uint64_t chunk_reads = 0;
  /// Chunk-cache traffic attributed to this query (mirrors
  /// stats.cache_*; zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  ExecStats stats;
  /// Cost estimates per strategy when the query used kAuto.
  std::vector<std::pair<StrategyKind, CostEstimate>> estimates;
  /// Finalized output chunks, for OutputDelivery::kReturnToClient
  /// (sorted by chunk id).
  std::vector<Chunk> outputs;
};

/// Thread safety: Repository serves concurrent clients.  The dataset
/// catalog (datasets_ / next_dataset_id_) is guarded by a phase-fair
/// shared mutex (writers are never starved by a stream of submits):
/// submit() and the other readers hold it shared for their whole run, so
/// a dataset can never be replaced or destroyed mid-query; create_dataset()
/// and load_catalog() take it exclusive.  The chunk store / chunk cache
/// and the executor pool have their own internal locks.  Locking order
/// (never acquire in the other direction):
///
///   catalog_mutex_  ->  executor pool mutex  ->  chunk cache shard mutex
///                   ->  ChunkStore internal mutex  ->  executor internals
///
/// Registries (attribute spaces, aggregations, indices) are expected to be
/// populated before concurrent serving starts; lookups are read-only.
/// Per-query planner/executor state is entirely stack-local; the leased
/// executor is exclusive to its query.
class Repository {
 public:
  explicit Repository(const RepositoryConfig& config);

  const RepositoryConfig& config() const { return config_; }

  AttributeSpaceService& attribute_spaces() { return spaces_; }
  AggregationService& aggregations() { return aggregations_; }
  IndexRegistry& indices() { return indices_; }
  /// The store every component reads and writes through: the caching
  /// decorator when the chunk cache is enabled, else the raw farm.
  ChunkStore& store() { return active_store(); }

  /// The chunk cache, or nullptr when disabled.
  const CachingChunkStore* chunk_cache() const { return cache_.get(); }
  /// Cache counters so far (zeros when the cache is disabled).
  ChunkCacheStats chunk_cache_stats() const;

  /// Executor-pool counters so far (zeros before the first thread-backend
  /// submit or when reuse_executor is off).
  ThreadExecutorPool::Stats executor_pool_stats() const;

  /// Loads a dataset (paper's four-step load) and returns its id.
  std::uint32_t create_dataset(const std::string& name, const Rect& domain,
                               std::vector<Chunk> chunks,
                               DeclusterMethod method = DeclusterMethod::kHilbert);

  const Dataset& dataset(std::uint32_t id) const;
  const Dataset* find_dataset(const std::string& name) const;
  std::size_t num_datasets() const;

  /// Plans and executes a range query on the back-end.  Safe to call from
  /// many threads at once: each call plans and executes with stack-local
  /// state while holding the catalog's shared lock.
  /// `costs` are the per-chunk compute charges for the simulated backend.
  QueryResult submit(const Query& query, const ComputeCosts& costs = {},
                     const ExecOptions& exec_options = {});

  /// Plans and executes a batch of queries in submission order on the
  /// back-end (the paper's planning service handles "a set of queries").
  std::vector<QueryResult> submit_all(const std::vector<Query>& queries,
                                      const ComputeCosts& costs = {},
                                      const ExecOptions& exec_options = {});

  /// Convenience: reads one chunk of a dataset back from the disk farm.
  std::optional<Chunk> read_chunk(std::uint32_t dataset_id, std::uint32_t index) const;

  /// Persists all dataset metadata to a catalog file (payloads live in
  /// the file-backed farm when storage_dir is set).
  void save_catalog(const std::filesystem::path& path) const;

  /// Restores datasets from a catalog written by save_catalog(); returns
  /// how many were registered.  Placements must fit this farm.
  std::size_t load_catalog(const std::filesystem::path& path);

 private:
  QueryResult submit_locked(const Query& query, const ComputeCosts& costs,
                            const ExecOptions& exec_options);
  ChunkStore& active_store() { return cache_ ? *cache_ : *store_; }
  const ChunkStore& active_store() const { return cache_ ? *cache_ : *store_; }
  /// Lazily creates the shared executor pool (thread backend only).
  ThreadExecutorPool& thread_pool();

  RepositoryConfig config_;
  std::unique_ptr<ChunkStore> store_;
  /// Decorates store_ when chunk_cache_bytes_per_node > 0 (threads).
  std::unique_ptr<CachingChunkStore> cache_;
  AttributeSpaceService spaces_;
  AggregationService aggregations_;
  IndexRegistry indices_;
  /// Guards datasets_ and next_dataset_id_ (see class comment).
  mutable FairSharedMutex catalog_mutex_;
  std::map<std::uint32_t, Dataset> datasets_;
  std::uint32_t next_dataset_id_ = 0;
  /// Lazily-created pool of warm thread executors shared by all submits.
  mutable std::mutex executor_pool_mutex_;
  std::unique_ptr<ThreadExecutorPool> executor_pool_;
};

/// Query submission service (paper Fig. 2): clients enqueue queries
/// through the front end and collect results by ticket.
///
/// Two modes share one queue:
///
///  - Serial (seed behaviour): enqueue() then process_all() runs every
///    pending query in FIFO order on the calling thread.
///  - Worker pool: start(n) spins up n scheduler workers that run
///    independent queries concurrently.  Queries sharing a client id are
///    a FIFO lane — at most one query per client is in flight and lanes
///    complete in submission order, so each client observes the same
///    serial semantics it would get from its own connection.  enqueue()
///    applies back-pressure: it blocks while `max_pending` accepted
///    queries are still queued or running.
///
/// wait(ticket) blocks for one result; drain() blocks until everything
/// accepted so far has finished; stop() drains and joins the workers.
class QuerySubmissionService {
 public:
  explicit QuerySubmissionService(Repository& repository,
                                  std::size_t max_pending = 1024)
      : repository_(&repository), max_pending_(max_pending) {}
  ~QuerySubmissionService();

  QuerySubmissionService(const QuerySubmissionService&) = delete;
  QuerySubmissionService& operator=(const QuerySubmissionService&) = delete;

  /// Starts `n_workers` scheduler threads (no-op if already started).
  void start(int n_workers);

  /// Drains accepted work and joins the workers (no-op when not started).
  void stop();

  /// Enqueues a query; the returned ticket retrieves its result later.
  /// Queries with the same `client_id` execute in FIFO order relative to
  /// each other.  Blocks for a free slot when the pool is saturated.
  std::uint64_t enqueue(Query query, ComputeCosts costs = {},
                        std::uint64_t client_id = 0);

  /// Non-blocking enqueue: returns 0 instead of waiting when max_pending
  /// accepted queries are already queued or running (the server turns
  /// this into a protocol-level "server busy" refusal).
  std::uint64_t try_enqueue(Query query, ComputeCosts costs = {},
                            std::uint64_t client_id = 0);

  /// A finished query's outcome, moved out of the service.
  struct Outcome {
    bool ok = false;
    QueryResult result;  // valid when ok
    std::string error;   // set when !ok
  };

  /// Blocks until the ticket's query finishes, then removes its result
  /// (or error) from the service and returns it.  Unlike wait()/result(),
  /// the service retains nothing afterwards — the call long-running
  /// servers use so the results map cannot grow without bound.
  Outcome take(std::uint64_t ticket);

  /// Runs every pending query in FIFO order on this thread when no pool
  /// is running; with a pool, equivalent to drain().  Returns how many
  /// queries finished during this call.
  std::size_t process_all();

  /// Blocks until the ticket's query finishes; returns its result, or
  /// nullptr if the ticket is unknown or its query failed (see error()).
  const QueryResult* wait(std::uint64_t ticket);

  /// Blocks until all accepted work has finished; returns how many
  /// queries finished during this call.
  std::size_t drain();

  /// Queued plus in-flight queries.
  std::size_t pending() const;

  /// Result for a ticket, or nullptr if unknown / not yet processed /
  /// failed.  The pointer stays valid for the service's lifetime.
  const QueryResult* result(std::uint64_t ticket) const;

  /// Error text for a failed ticket, or nullptr.
  const std::string* error(std::uint64_t ticket) const;

 private:
  struct Pending {
    std::uint64_t ticket;
    std::uint64_t client;
    Query query;
    ComputeCosts costs;
    /// Accept time, for the enqueue-to-dispatch wait histogram and the
    /// "queued" trace span.
    std::chrono::steady_clock::time_point enqueued_at{};
    std::uint64_t enqueued_ts_us = 0;  // tracer clock; 0 when not tracing
  };

  void worker_loop();
  void run_one(Pending&& p);
  // Pops the earliest queued query whose client lane is idle (caller
  // holds mutex_); marks the lane busy.
  bool pop_runnable(Pending& out);

  Repository* repository_;
  const std::size_t max_pending_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new work or stop
  std::condition_variable done_cv_;  // waiters: a query finished
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::deque<Pending> queue_;
  std::unordered_set<std::uint64_t> busy_clients_;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint64_t, QueryResult> results_;
  std::map<std::uint64_t, std::string> errors_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace adr
