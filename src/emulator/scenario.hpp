// Paper experiment scenarios.
//
// Binds the emulators to the exact configurations of the paper's Table 1
// and provides run_experiment(), the single entry point every benchmark
// uses: build the scenario, load both datasets onto the simulated disk
// farm, plan with the requested strategy, and execute on the modelled
// IBM SP in virtual time.
#pragma once

#include <cstdint>
#include <string>

#include "core/exec/exec_stats.hpp"
#include "core/planner/planner.hpp"
#include "core/query.hpp"
#include "emulator/emulator.hpp"
#include "sim/cluster.hpp"
#include "storage/decluster.hpp"

namespace adr::emu {

enum class PaperApp { kSat, kWcs, kVm };

std::string to_string(PaperApp app);

/// Table 1 row for one application class.
struct PaperScenario {
  PaperApp app;
  /// Smallest input dataset (the fixed-size experiments).
  int base_chunks;
  std::uint64_t input_chunk_bytes;
  int output_chunks;  // informational; the emulators fix the grid shape
  std::uint64_t output_chunk_bytes;
  double accum_multiplier;
  ComputeCosts costs;
};

PaperScenario paper_scenario(PaperApp app);

/// Builds the emulated application for a scenario at a given input size.
EmulatedApp build_app(const PaperScenario& scenario, int num_input_chunks,
                      std::uint64_t seed, int payload_values = 0);

struct ExperimentConfig {
  PaperApp app = PaperApp::kSat;
  int nodes = 8;
  /// Disks attached to each node (the SP had 1; ADR supports farms).
  int disks_per_node = 1;
  /// Scaled experiments grow the input with the machine: chunks =
  /// base * nodes / 8 (the paper's right-hand columns of Fig. 8).
  bool scaled = false;
  /// Explicit chunk count override (0 = base, honoring `scaled`).
  int input_chunks = 0;
  StrategyKind strategy = StrategyKind::kFRA;
  TilingOrder tiling = TilingOrder::kHilbert;
  DeclusterMethod decluster = DeclusterMethod::kHilbert;
  double hybrid_threshold = 0.25;
  std::uint64_t memory_per_node = 32ull * 1024 * 1024;
  std::uint64_t seed = 42;
  /// Tile-pipelined execution (false = per-phase barriers ablation).
  bool pipeline_tiles = true;
  /// Record the per-node phase timeline into the result stats.
  bool record_trace = false;
  /// Fraction of each spatial dimension the range query covers (1.0 =
  /// whole domain, the paper's configuration).  Smaller values probe
  /// query selectivity; the time dimension is always fully covered.
  double query_fraction = 1.0;
  /// Per-node file-system buffer cache (0 = off, the paper flushed it).
  std::uint64_t disk_cache_bytes = 0;
};

struct ExperimentResult {
  ExecStats stats;
  int tiles = 0;
  std::uint64_t ghost_chunks = 0;
  std::uint64_t chunk_reads = 0;
  double fan_in = 0.0;
  double fan_out = 0.0;
  int input_chunks = 0;
  int output_chunks = 0;
  /// Chunks the indexing service actually selected for the range query
  /// (== the totals when the query covers the whole domain).
  int selected_inputs = 0;
  int selected_outputs = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Analytic cost-model prediction for the executed plan.
  CostEstimate predicted;

  /// Mean per-node communication volume in MB (paper Fig. 9 a-b).
  double comm_mb_per_node() const;
  /// Mean per-node computation time in seconds (paper Fig. 9 c-d).
  double compute_s_per_node() const;
};

/// Runs one paper experiment on the simulated cluster (metadata-only:
/// exact counts, volumes and virtual times; no payload processing).
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace adr::emu
