// Application emulators (paper section 4, methodology of reference [37]).
//
// The paper evaluates ADR with *application emulators*: parameterized
// models of the three motivating application classes, whose knobs scale
// the scenario while preserving its structure.  Each emulator generates
// the input/output chunk geometry (and optionally payloads) of one class:
//
//   SAT - satellite data processing (AVHRR-like): 3-D (lon, lat, time)
//         input with polar-orbit skew (chunks elongate near the poles and
//         oversample high latitudes), composited onto a 2-D image grid.
//   VM  - Virtual Microscope: dense regular image grid, each input chunk
//         falls inside exactly one output chunk (fan-out 1).
//   WCS - water contamination studies: hydrodynamics grid over time
//         mapped onto a chemical-transport grid; a fraction of input
//         chunks straddles an output chunk boundary (fan-out ~1.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "core/planner/cost_model.hpp"
#include "storage/chunk.hpp"

namespace adr::emu {

/// A generated application scenario: chunk geometry + processing costs.
struct EmulatedApp {
  std::string name;
  Rect input_domain;
  Rect output_domain;
  std::vector<Chunk> input_chunks;
  std::vector<Chunk> output_chunks;
  ComputeCosts costs;
  /// Accumulator bytes per output byte (drives tiling pressure).
  double accum_multiplier = 1.0;

  std::uint64_t input_bytes() const;
  std::uint64_t output_bytes() const;
};

/// Common knobs shared by the three emulators.
struct CommonParams {
  /// Number of input chunks to generate.
  int num_input_chunks = 1000;
  /// Nominal on-disk size per input chunk (drives I/O & network costs).
  std::uint64_t input_chunk_bytes = 128 * 1024;
  std::uint64_t output_chunk_bytes = 96 * 1024;
  /// When > 0, attach real payloads of this many uint64 values per input
  /// chunk (and zeroed output payloads) and use the payload size as the
  /// chunk size — for thread-executor runs and tests.
  int payload_values = 0;
  std::uint64_t seed = 42;
};

struct SatParams {
  CommonParams common;
  int out_grid_lon = 16;
  int out_grid_lat = 16;
  /// Orbit inclination: ground tracks oversample +/- this latitude.
  double inclination_deg = 80.0;
  /// Chunk footprint at the equator, in degrees.  The defaults are tuned
  /// so the chunk-level mapping reproduces Table 1's SAT fan-out of ~4.6
  /// (and thereby fan-in ~161 at 9K chunks) against the 16x16 output
  /// grid, after polar widening and edge clipping.
  double lon_extent_deg = 15.5;
  double lat_extent_deg = 12.5;
  double accum_multiplier = 8.0;
  ComputeCosts costs{0.001, 0.040, 0.020, 0.001};
};

struct VmParams {
  CommonParams common;
  int out_grid = 16;  // 16x16 = 256 output chunks
  double accum_multiplier = 2.0;
  ComputeCosts costs{0.001, 0.005, 0.001, 0.001};
};

struct WcsParams {
  CommonParams common;
  int out_grid_x = 15;
  int out_grid_y = 10;
  /// Input chunks per output chunk per spatial dimension.
  int input_per_output = 2;
  /// Fraction of input chunks straddling an output boundary in x.
  double straddle_fraction = 0.2;
  double accum_multiplier = 10.0;
  ComputeCosts costs{0.001, 0.020, 0.001, 0.001};
};

EmulatedApp make_sat(const SatParams& params);
EmulatedApp make_vm(const VmParams& params);
EmulatedApp make_wcs(const WcsParams& params);

// ---- shared helpers (used by the emulators; exposed for tests) ----

/// Cell [ix, iy) of an nx x ny grid over `domain`, shrunk by a relative
/// epsilon so adjacent cells do not touch (half-open semantics under the
/// closed-interval Rect::intersects).
Rect grid_cell(const Rect& domain, int nx, int ny, int ix, int iy);

/// Builds a regular grid of output chunks over `domain`.
std::vector<Chunk> make_output_grid(const Rect& domain, int nx, int ny,
                                    std::uint64_t chunk_bytes, int payload_values);

/// Deterministic payload for chunk `index`: values mix(index, j).
std::vector<std::byte> make_payload(std::uint64_t index, int values);

}  // namespace adr::emu
