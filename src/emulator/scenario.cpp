#include "emulator/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "core/exec/query_executor.hpp"
#include "runtime/sim_executor.hpp"
#include "storage/loader.hpp"

namespace adr::emu {
namespace {

/// Planning-only op conveying the scenario's accumulator multiplier.
class ScenarioOp : public AggregationOp {
 public:
  explicit ScenarioOp(double multiplier) : multiplier_(multiplier) {}
  std::string name() const override { return "scenario"; }
  AccumulatorLayout layout() const override { return {multiplier_}; }
  std::vector<std::byte> initialize(const ChunkMeta&, const Chunk*) const override {
    return {};
  }
  void aggregate(const Chunk&, const ChunkMeta&, std::vector<std::byte>&) const override {}
  void combine(std::vector<std::byte>&, const std::vector<std::byte>&) const override {}
  std::vector<std::byte> output(const ChunkMeta&,
                                const std::vector<std::byte>&) const override {
    return {};
  }

 private:
  double multiplier_;
};

std::vector<ChunkMeta> metas_of(const std::vector<Chunk>& chunks) {
  std::vector<ChunkMeta> metas;
  metas.reserve(chunks.size());
  for (const Chunk& c : chunks) metas.push_back(c.meta());
  return metas;
}

}  // namespace

std::string to_string(PaperApp app) {
  switch (app) {
    case PaperApp::kSat:
      return "SAT";
    case PaperApp::kWcs:
      return "WCS";
    case PaperApp::kVm:
      return "VM";
  }
  return "?";
}

PaperScenario paper_scenario(PaperApp app) {
  switch (app) {
    case PaperApp::kSat:
      // 9K chunks / 1.6 GB; 256 output chunks / 25 MB; I-LR-GC-OH =
      // 1-40-20-1 ms; fan-out ~4.6.
      return {PaperApp::kSat, 9000,    178 * 1024, 256,
              100 * 1024,     8.0,     {0.001, 0.040, 0.020, 0.001}};
    case PaperApp::kWcs:
      // 7.5K chunks / 1.7 GB; 150 output chunks / 17 MB; 1-20-1-1 ms.
      return {PaperApp::kWcs, 7500,    227 * 1024, 150,
              116 * 1024,     10.0,    {0.001, 0.020, 0.001, 0.001}};
    case PaperApp::kVm:
      // 4K chunks / 1.5 GB; 256 output chunks / 48 MB; 1-5-1-1 ms.
      return {PaperApp::kVm,  4096,    384 * 1024, 256,
              192 * 1024,     2.0,     {0.001, 0.005, 0.001, 0.001}};
  }
  throw std::invalid_argument("paper_scenario: bad app");
}

EmulatedApp build_app(const PaperScenario& scenario, int num_input_chunks,
                      std::uint64_t seed, int payload_values) {
  CommonParams common;
  common.num_input_chunks = num_input_chunks;
  common.input_chunk_bytes = scenario.input_chunk_bytes;
  common.output_chunk_bytes = scenario.output_chunk_bytes;
  common.payload_values = payload_values;
  common.seed = seed;
  switch (scenario.app) {
    case PaperApp::kSat: {
      SatParams p;
      p.common = common;
      p.accum_multiplier = scenario.accum_multiplier;
      p.costs = scenario.costs;
      return make_sat(p);
    }
    case PaperApp::kWcs: {
      WcsParams p;
      p.common = common;
      p.accum_multiplier = scenario.accum_multiplier;
      p.costs = scenario.costs;
      return make_wcs(p);
    }
    case PaperApp::kVm: {
      VmParams p;
      p.common = common;
      p.accum_multiplier = scenario.accum_multiplier;
      p.costs = scenario.costs;
      return make_vm(p);
    }
  }
  throw std::invalid_argument("build_app: bad app");
}

double ExperimentResult::comm_mb_per_node() const {
  if (stats.nodes.empty()) return 0.0;
  return stats.comm_volume().mean / (1024.0 * 1024.0);
}

double ExperimentResult::compute_s_per_node() const {
  return stats.compute_time().mean;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const PaperScenario scenario = paper_scenario(config.app);
  int chunks = config.input_chunks;
  if (chunks == 0) {
    chunks = scenario.base_chunks;
    if (config.scaled) chunks = chunks * config.nodes / 8;
  }

  EmulatedApp app = build_app(scenario, chunks, config.seed);

  // Load metadata onto the simulated disk farm.
  sim::ClusterConfig machine = sim::ibm_sp_profile(config.nodes);
  machine.disks_per_node = config.disks_per_node;
  machine.accumulator_memory_bytes = config.memory_per_node;
  machine.disk_cache_bytes = config.disk_cache_bytes;

  DeclusterOptions dopts;
  dopts.method = config.decluster;
  dopts.num_disks = machine.total_disks();
  dopts.seed = config.seed;
  Dataset input = load_dataset_meta(0, "input", app.input_domain,
                                    metas_of(app.input_chunks), dopts);
  Dataset output = load_dataset_meta(1, "output", app.output_domain,
                                     metas_of(app.output_chunks), dopts);

  // Plan.  The range query covers query_fraction of each spatial
  // dimension (centred), and the whole time extent.
  Rect range = app.input_domain;
  if (config.query_fraction < 1.0) {
    Point lo = range.lo(), hi = range.hi();
    for (int d = 0; d < 2 && d < range.dims(); ++d) {
      const double margin = range.extent(d) * (1.0 - config.query_fraction) / 2.0;
      lo[d] += margin;
      hi[d] -= margin;
    }
    range = Rect(lo, hi);
  }
  ScenarioOp op(app.accum_multiplier);
  PlanRequest request;
  request.input = &input;
  request.output = &output;
  request.range = range;
  request.op = &op;
  request.num_nodes = config.nodes;
  request.disks_per_node = machine.disks_per_node;
  request.memory_per_node = config.memory_per_node;
  request.strategy = config.strategy;
  request.hybrid_threshold = config.hybrid_threshold;
  request.order = config.tiling;
  request.seed = config.seed;
  request.costs = app.costs;
  request.machine.disk_seek_s = sim::to_seconds(machine.disk.seek);
  request.machine.disk_bw_bytes_per_s = machine.disk.bandwidth_bytes_per_sec;
  request.machine.net_latency_s = sim::to_seconds(machine.link.latency);
  request.machine.net_bw_bytes_per_s = machine.link.bandwidth_bytes_per_sec;
  request.machine.comm_cpu_bytes_per_s = machine.link.cpu_overhead_bytes_per_sec;
  request.machine.disks_per_node = machine.disks_per_node;
  PlannedQuery planned = plan_query(request);

  ExperimentResult result;
  result.tiles = planned.plan.num_tiles;
  result.ghost_chunks = planned.plan.total_ghost_chunks;
  result.chunk_reads = planned.plan.total_reads;
  result.fan_in = planned.mapping.mean_fan_in();
  result.fan_out = planned.mapping.mean_fan_out();
  result.input_chunks = static_cast<int>(input.num_chunks());
  result.output_chunks = static_cast<int>(output.num_chunks());
  result.selected_inputs = static_cast<int>(planned.selected_inputs.size());
  result.selected_outputs = static_cast<int>(planned.selected_outputs.size());
  result.input_bytes = input.total_bytes();
  result.output_bytes = output.total_bytes();

  // Cost-model prediction, for the ablation bench.
  {
    PlannerInput in;
    in.num_nodes = config.nodes;
    in.memory_per_node = config.memory_per_node;
    in.mapping = &planned.mapping;
    in.owner_of_input = planned.owner_of_input;
    in.owner_of_output = planned.plan.owner_of_output;
    in.input_bytes = planned.input_bytes;
    in.output_bytes = planned.output_bytes;
    in.accum_bytes = planned.accum_bytes;
    in.output_order.resize(planned.selected_outputs.size());
    result.predicted = estimate_cost(planned.plan, in, app.costs, request.machine);
  }

  // Execute in virtual time (metadata-only).
  sim::SimCluster cluster(machine);
  SimExecutor executor(&cluster, nullptr);
  ExecOptions exec_options;
  exec_options.comm_cpu_bytes_per_sec = machine.link.cpu_overhead_bytes_per_sec;
  exec_options.pipeline_tiles = config.pipeline_tiles;
  exec_options.record_trace = config.record_trace;
  result.stats = execute_query(executor, planned, input, output, /*op=*/nullptr,
                               app.costs, machine.disks_per_node, exec_options);
  return result;
}

}  // namespace adr::emu
