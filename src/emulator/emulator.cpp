#include "emulator/emulator.hpp"

#include <cassert>
#include <cstring>

#include "common/random.hpp"

namespace adr::emu {

std::uint64_t EmulatedApp::input_bytes() const {
  std::uint64_t total = 0;
  for (const Chunk& c : input_chunks) total += c.meta().bytes;
  return total;
}

std::uint64_t EmulatedApp::output_bytes() const {
  std::uint64_t total = 0;
  for (const Chunk& c : output_chunks) total += c.meta().bytes;
  return total;
}

Rect grid_cell(const Rect& domain, int nx, int ny, int ix, int iy) {
  assert(domain.dims() >= 2);
  assert(ix >= 0 && ix < nx && iy >= 0 && iy < ny);
  const double dx = domain.extent(0) / nx;
  const double dy = domain.extent(1) / ny;
  // Shrink so adjacent cells do not share a face (closed-interval
  // intersection would otherwise make every aligned neighbour a target).
  const double ex = dx * 1e-9;
  const double ey = dy * 1e-9;
  Point lo(2), hi(2);
  lo[0] = domain.lo()[0] + ix * dx + ex;
  hi[0] = domain.lo()[0] + (ix + 1) * dx - ex;
  lo[1] = domain.lo()[1] + iy * dy + ey;
  hi[1] = domain.lo()[1] + (iy + 1) * dy - ey;
  return Rect(lo, hi);
}

std::vector<std::byte> make_payload(std::uint64_t index, int values) {
  std::vector<std::uint64_t> data(static_cast<size_t>(values));
  for (int j = 0; j < values; ++j) {
    // Small values so integer sums cannot overflow even in huge scenarios.
    data[static_cast<size_t>(j)] =
        mix_seed(index, static_cast<std::uint64_t>(j)) % 1000;
  }
  std::vector<std::byte> bytes(data.size() * sizeof(std::uint64_t));
  std::memcpy(bytes.data(), data.data(), bytes.size());
  return bytes;
}

std::vector<Chunk> make_output_grid(const Rect& domain, int nx, int ny,
                                    std::uint64_t chunk_bytes, int payload_values) {
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<size_t>(nx) * static_cast<size_t>(ny));
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      ChunkMeta meta;
      meta.mbr = grid_cell(domain, nx, ny, ix, iy);
      Chunk chunk;
      if (payload_values > 0) {
        // Zero-initialized existing output contents.
        std::vector<std::byte> payload(
            static_cast<size_t>(payload_values) * sizeof(std::uint64_t), std::byte{0});
        meta.bytes = payload.size();
        chunk = Chunk(meta, std::move(payload));
      } else {
        meta.bytes = chunk_bytes;
        chunk = Chunk(meta);
      }
      chunks.push_back(std::move(chunk));
    }
  }
  return chunks;
}

}  // namespace adr::emu
