// VM emulator: the Virtual Microscope.
//
// A digitized slide is a dense regular 2-D image (optionally several
// focal planes; the spatial structure dominates, so we model one plane).
// Input chunks partition the slide into an (16k x 16k) grid so that every
// input chunk falls inside exactly one output chunk of the 16x16 display
// grid: fan-out 1.0 and fan-in = N/256, matching the paper's Table 1
// (fan-in 16 at 4K chunks).  The requested chunk count is rounded to the
// nearest realizable grid.
#include <algorithm>
#include <cmath>

#include "emulator/emulator.hpp"

namespace adr::emu {

EmulatedApp make_vm(const VmParams& params) {
  EmulatedApp app;
  app.name = "VM";
  app.costs = params.costs;
  app.accum_multiplier = params.accum_multiplier;

  const int out = params.out_grid;
  // Input grid side must be a multiple of the output grid side so chunks
  // nest exactly (fan-out 1).
  const double target = std::sqrt(static_cast<double>(params.common.num_input_chunks));
  const int k = std::max(1, static_cast<int>(std::lround(target / out)));
  const int side = out * k;

  const double extent = 65536.0;  // pixels
  app.input_domain = Rect(Point{0.0, 0.0}, Point{extent, extent});
  app.output_domain = app.input_domain;

  app.output_chunks =
      make_output_grid(app.output_domain, out, out, params.common.output_chunk_bytes,
                       params.common.payload_values);

  app.input_chunks.reserve(static_cast<size_t>(side) * static_cast<size_t>(side));
  std::uint64_t index = 0;
  for (int iy = 0; iy < side; ++iy) {
    for (int ix = 0; ix < side; ++ix) {
      ChunkMeta meta;
      meta.mbr = grid_cell(app.input_domain, side, side, ix, iy);
      Chunk chunk;
      if (params.common.payload_values > 0) {
        auto payload = make_payload(index, params.common.payload_values);
        meta.bytes = payload.size();
        chunk = Chunk(meta, std::move(payload));
      } else {
        meta.bytes = params.common.input_chunk_bytes;
        chunk = Chunk(meta);
      }
      app.input_chunks.push_back(std::move(chunk));
      ++index;
    }
  }
  return app;
}

}  // namespace adr::emu
