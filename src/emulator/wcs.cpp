// WCS emulator: water contamination studies.
//
// A hydrodynamics simulation produces a regular spatial grid of flow data
// per time step; a chemical-transport code consumes it on a coarser grid,
// averaging over the queried time period.  Input chunks form an
// (input_per_output x out_grid) spatial grid replicated across time
// steps; a configurable fraction of chunks straddles an output-chunk
// boundary in x (hydro elements crossing chem cells), which sets the
// chunk-level fan-out: 0.2 straddlers -> fan-out 1.2, edges/outputs = 60
// at 7.5K chunks — the paper's Table 1 values for WCS.
#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "emulator/emulator.hpp"

namespace adr::emu {

EmulatedApp make_wcs(const WcsParams& params) {
  EmulatedApp app;
  app.name = "WCS";
  app.costs = params.costs;
  app.accum_multiplier = params.accum_multiplier;

  const int nx = params.out_grid_x * params.input_per_output;
  const int ny = params.out_grid_y * params.input_per_output;
  const int per_step = nx * ny;
  const int n = params.common.num_input_chunks;
  const int steps = (n + per_step - 1) / per_step;

  const double width = 1000.0, height = 600.0;  // simulation domain (km)
  app.input_domain =
      Rect(Point{0.0, 0.0, 0.0}, Point{width, height, static_cast<double>(steps)});
  app.output_domain = Rect(Point{0.0, 0.0}, Point{width, height});

  app.output_chunks =
      make_output_grid(app.output_domain, params.out_grid_x, params.out_grid_y,
                       params.common.output_chunk_bytes, params.common.payload_values);

  Rng rng(params.common.seed);
  const double out_w = width / params.out_grid_x;

  app.input_chunks.reserve(static_cast<size_t>(n));
  int produced = 0;
  for (int t = 0; t < steps && produced < n; ++t) {
    for (int iy = 0; iy < ny && produced < n; ++iy) {
      for (int ix = 0; ix < nx && produced < n; ++ix) {
        Rect cell2d = grid_cell(app.output_domain, nx, ny, ix, iy);
        double x_lo = cell2d.lo()[0];
        double x_hi = cell2d.hi()[0];
        // A straddling hydro element extends into the next chem cell.
        // 0.6 of an output width guarantees exactly one boundary is
        // crossed from either half of the source cell.
        if (rng.chance(params.straddle_fraction)) {
          const double reach = 0.6 * out_w;
          if (x_hi + reach < width) {
            x_hi += reach;
          } else if (x_lo - reach > 0.0) {
            x_lo -= reach;
          }
        }
        Point lo(3), hi(3);
        lo[0] = x_lo;
        hi[0] = x_hi;
        lo[1] = cell2d.lo()[1];
        hi[1] = cell2d.hi()[1];
        lo[2] = static_cast<double>(t);
        hi[2] = static_cast<double>(t) + 0.999;

        ChunkMeta meta;
        meta.mbr = Rect(lo, hi);
        Chunk chunk;
        if (params.common.payload_values > 0) {
          auto payload = make_payload(static_cast<std::uint64_t>(produced),
                                      params.common.payload_values);
          meta.bytes = payload.size();
          chunk = Chunk(meta, std::move(payload));
        } else {
          meta.bytes = params.common.input_chunk_bytes;
          chunk = Chunk(meta);
        }
        app.input_chunks.push_back(std::move(chunk));
        ++produced;
      }
    }
  }
  return app;
}

}  // namespace adr::emu
