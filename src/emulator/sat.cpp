// SAT emulator: satellite data processing (AVHRR-like).
//
// Input chunks model blocks of sensor readings along a polar orbit in a
// 3-D (longitude, latitude, time) attribute space:
//
//  * the ground track's latitude follows incl * sin(phase), so sampling
//    density peaks near +/- the orbit inclination — the paper's "more
//    overlapping chunks near poles";
//  * a chunk's longitude footprint widens as 1/cos(lat) — the paper's
//    "data chunks near the poles are more elongated on the surface";
//  * chunks arrive in time order; scaling the dataset extends the time
//    period while the composited output image stays fixed.
//
// The output is a 2-D image grid; the mapping drops the time dimension.
// With the default footprints the chunk-level fan-out averages ~4.6 and
// the fan-in at 9K chunks is ~161 — the paper's Table 1 values for SAT.
#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "emulator/emulator.hpp"

namespace adr::emu {

EmulatedApp make_sat(const SatParams& params) {
  EmulatedApp app;
  app.name = "SAT";
  app.costs = params.costs;
  app.accum_multiplier = params.accum_multiplier;

  const int n = params.common.num_input_chunks;
  // ~450 chunks of sensor data per simulated day.
  const double days = std::max(1.0, static_cast<double>(n) / 450.0);

  app.input_domain =
      Rect(Point{-180.0, -90.0, 0.0}, Point{180.0, 90.0, days});
  app.output_domain = Rect(Point{-180.0, -90.0}, Point{180.0, 90.0});

  app.output_chunks =
      make_output_grid(app.output_domain, params.out_grid_lon, params.out_grid_lat,
                       params.common.output_chunk_bytes, params.common.payload_values);

  Rng rng(params.common.seed);
  const double incl = params.inclination_deg;
  app.input_chunks.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Ground-track latitude: uniform orbit phase concentrates samples
    // near the turning points at +/- inclination.
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double lat_center = incl * std::sin(phase);
    // Longitude drifts westward orbit over orbit; model as uniform.
    const double lon_center = rng.uniform(-180.0, 180.0);

    const double lat_rad = lat_center * M_PI / 180.0;
    // Footprints widen toward the poles, capped: GAC-style resampling
    // bounds the per-chunk longitude span.
    const double widen = std::min(2.5, 1.0 / std::max(0.05, std::cos(lat_rad)));
    const double lon_ext = std::min(90.0, params.lon_extent_deg * widen);
    const double lat_ext = params.lat_extent_deg;

    Point lo(3), hi(3);
    lo[0] = std::max(-180.0, lon_center - lon_ext / 2.0);
    hi[0] = std::min(180.0, lon_center + lon_ext / 2.0);
    lo[1] = std::max(-90.0, lat_center - lat_ext / 2.0);
    hi[1] = std::min(90.0, lat_center + lat_ext / 2.0);
    const double t = days * static_cast<double>(i) / static_cast<double>(n);
    lo[2] = t;
    hi[2] = std::min(days, t + days / static_cast<double>(n));

    ChunkMeta meta;
    meta.mbr = Rect(lo, hi);
    Chunk chunk;
    if (params.common.payload_values > 0) {
      auto payload = make_payload(static_cast<std::uint64_t>(i),
                                  params.common.payload_values);
      meta.bytes = payload.size();
      chunk = Chunk(meta, std::move(payload));
    } else {
      meta.bytes = params.common.input_chunk_bytes;
      chunk = Chunk(meta);
    }
    app.input_chunks.push_back(std::move(chunk));
  }
  return app;
}

}  // namespace adr::emu
