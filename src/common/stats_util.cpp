#include "common/stats_util.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace adr {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.total = std::accumulate(values.begin(), values.end(), 0.0);
  s.mean = s.total / static_cast<double>(values.size());
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  s.min = *mn;
  s.max = *mx;
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double imbalance(std::span<const double> values) {
  const Summary s = summarize(values);
  if (s.count == 0 || s.mean == 0.0) return 0.0;
  return s.max / s.mean;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " max=" << max << " mean=" << mean
     << " stddev=" << stddev << " total=" << total;
  return os.str();
}

}  // namespace adr
