#include "common/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace adr {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

/// Placement of vnode `v` of `node`: a second mix decorrelates the
/// vnode streams of numerically adjacent node ids (ports are
/// consecutive in practice).
std::uint64_t vnode_point(std::uint64_t node, int v) {
  return mix64(mix64(node) + static_cast<std::uint64_t>(v));
}

}  // namespace

HashRing::HashRing(int vnodes_per_node) : vnodes_per_node_(vnodes_per_node) {
  if (vnodes_per_node < 1) {
    throw std::invalid_argument("HashRing: vnodes_per_node must be >= 1");
  }
}

void HashRing::add_node(std::uint64_t node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) return;
  nodes_.insert(it, node);
  for (int v = 0; v < vnodes_per_node_; ++v) {
    ring_.push_back(VNode{vnode_point(node, v), node});
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.node < b.node;
  });
}

bool HashRing::remove_node(std::uint64_t node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return false;
  nodes_.erase(it);
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const VNode& v) { return v.node == node; }),
              ring_.end());
  return true;
}

bool HashRing::contains(std::uint64_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::size_t HashRing::successor(std::uint64_t point) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& v, std::uint64_t p) { return v.point < p; });
  // Wrap: a key past the last vnode belongs to the first one.
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::uint64_t HashRing::lookup(std::uint64_t key) const {
  if (ring_.empty()) throw std::logic_error("HashRing: lookup on empty ring");
  return ring_[successor(mix64(key))].node;
}

std::vector<std::uint64_t> HashRing::replicas(std::uint64_t key,
                                              std::size_t n) const {
  std::vector<std::uint64_t> out;
  if (ring_.empty() || n == 0) return out;
  const std::size_t want = std::min(n, nodes_.size());
  out.reserve(want);
  std::size_t i = successor(mix64(key));
  for (std::size_t seen = 0; seen < ring_.size() && out.size() < want; ++seen) {
    const std::uint64_t node = ring_[(i + seen) % ring_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace adr
