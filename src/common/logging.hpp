// Minimal leveled logger.
//
// The library is silent by default (benches and tests own stdout); set
// ADR_LOG=debug|info|warn in the environment, or call set_log_level, to see
// planner and executor traces.
//
// Thread safety: set_log_level / log_level are an atomic pair, safe to
// call from any thread at any time (connection threads log while tests
// flip the level).  log_line composes the full line first and emits it
// with one write under a mutex, so concurrent lines never interleave
// mid-line — even when another writer shares the sink stream.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace adr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output (default: stderr).  Pass nullptr to restore
/// stderr; returns the previous sink.  Test hook — the caller keeps the
/// stream alive until the sink is reset.
std::ostream* set_log_sink(std::ostream* sink);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace adr

#define ADR_LOG(level, expr)                                      \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::adr::log_level())) { \
      std::ostringstream adr_log_os;                              \
      adr_log_os << expr;                                         \
      ::adr::detail::log_line(level, adr_log_os.str());           \
    }                                                             \
  } while (0)

#define ADR_DEBUG(expr) ADR_LOG(::adr::LogLevel::kDebug, expr)
#define ADR_INFO(expr) ADR_LOG(::adr::LogLevel::kInfo, expr)
#define ADR_WARN(expr) ADR_LOG(::adr::LogLevel::kWarn, expr)
