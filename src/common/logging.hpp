// Minimal leveled logger.
//
// The library is silent by default (benches and tests own stdout); set
// ADR_LOG=debug|info|warn in the environment, or call set_log_level, to see
// planner and executor traces.
#pragma once

#include <sstream>
#include <string>

namespace adr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace adr

#define ADR_LOG(level, expr)                                      \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::adr::log_level())) { \
      std::ostringstream adr_log_os;                              \
      adr_log_os << expr;                                         \
      ::adr::detail::log_line(level, adr_log_os.str());           \
    }                                                             \
  } while (0)

#define ADR_DEBUG(expr) ADR_LOG(::adr::LogLevel::kDebug, expr)
#define ADR_INFO(expr) ADR_LOG(::adr::LogLevel::kInfo, expr)
#define ADR_WARN(expr) ADR_LOG(::adr::LogLevel::kWarn, expr)
