#include "common/hilbert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adr {
namespace {

// Skilling's AxesToTranspose: converts in place from ordinary axes to the
// "transposed" Hilbert representation (one bit of the index per axis word
// per level).
void axes_to_transpose(std::span<std::uint32_t> x, int bits) {
  const int n = static_cast<int>(x.size());
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[static_cast<size_t>(n - 1)] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[static_cast<size_t>(i)] ^= t;
}

// Skilling's TransposeToAxes (inverse of the above).
void transpose_to_axes(std::span<std::uint32_t> x, int bits) {
  const int n = static_cast<int>(x.size());
  const std::uint32_t m = 2u << (bits - 1);
  // Gray decode by half.
  std::uint32_t t = x[static_cast<size_t>(n - 1)] >> 1;
  for (int i = n - 1; i > 0; --i) x[static_cast<size_t>(i)] ^= x[static_cast<size_t>(i - 1)];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[static_cast<size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[static_cast<size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<size_t>(i)] ^= t;
      }
    }
  }
}

// Interleaves the transposed representation into a single index: bit
// (bits-1-b) of axis i becomes bit ((bits-1-b)*n + (n-1-i)) of the index.
std::uint64_t interleave(std::span<const std::uint32_t> x, int bits) {
  const int n = static_cast<int>(x.size());
  std::uint64_t h = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < n; ++i) {
      h = (h << 1) | ((x[static_cast<size_t>(i)] >> b) & 1u);
    }
  }
  return h;
}

void deinterleave(std::uint64_t h, std::span<std::uint32_t> x, int bits) {
  const int n = static_cast<int>(x.size());
  std::fill(x.begin(), x.end(), 0u);
  for (int b = 0; b < bits; ++b) {
    for (int i = n - 1; i >= 0; --i) {
      x[static_cast<size_t>(i)] |= static_cast<std::uint32_t>(h & 1u) << b;
      h >>= 1;
    }
  }
}

}  // namespace

int hilbert_max_bits(int dims) {
  assert(dims >= 1);
  return std::min(31, 64 / dims);
}

std::uint64_t hilbert_index(std::span<const std::uint32_t> axes, int bits) {
  assert(!axes.empty());
  assert(bits >= 1 && bits <= hilbert_max_bits(static_cast<int>(axes.size())));
  if (axes.size() == 1) return axes[0];
  std::vector<std::uint32_t> x(axes.begin(), axes.end());
  axes_to_transpose(x, bits);
  return interleave(x, bits);
}

std::vector<std::uint32_t> hilbert_axes(std::uint64_t index, int dims, int bits) {
  assert(dims >= 1);
  assert(bits >= 1 && bits <= hilbert_max_bits(dims));
  if (dims == 1) return {static_cast<std::uint32_t>(index)};
  std::vector<std::uint32_t> x(static_cast<size_t>(dims), 0u);
  deinterleave(index, x, bits);
  transpose_to_axes(x, bits);
  return x;
}

std::uint64_t hilbert_index_in_domain(const Point& p, const Rect& domain, int bits) {
  const int d = domain.dims();
  assert(p.dims() == d);
  const int b = std::min(bits, hilbert_max_bits(d));
  const std::uint32_t cells = 1u << b;
  std::vector<std::uint32_t> axes(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    const double ext = domain.extent(i);
    double frac = ext > 0.0 ? (p[i] - domain.lo()[i]) / ext : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    auto cell = static_cast<std::uint32_t>(frac * cells);
    axes[static_cast<size_t>(i)] = std::min(cell, cells - 1);
  }
  return hilbert_index(axes, b);
}

}  // namespace adr
