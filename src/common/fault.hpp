// Deterministic fault-injection registry.
//
// The serving stack's failure paths (storage fetch errors, executor
// faults, connection resets, dropped replies) are exercised by *provoking*
// them on purpose instead of waiting for luck: production code threads
// named fault points through the layers that can realistically fail, and
// tests arm those points with a trigger (fire with probability p, fire
// every Nth hit, fire once after K hits), an effect (an injected
// adr::Status and/or a latency), and an optional firing budget.  The
// per-point decision stream is driven by a seeded RNG, so a fault plan
// replays bit-identically: the k-th hit of a point fires or not
// regardless of which thread lands it.
//
// Call sites pay one relaxed atomic load while nothing is armed — the
// registry is safe to consult on hot paths (every chunk fetch checks
// one).  Hit and fire totals are also surfaced through the process-wide
// metrics registry as `fault.<point>.hits` / `fault.<point>.fires`, so a
// faulted run's stats endpoint shows exactly which faults landed.
//
// Fault-point catalog and usage recipes: docs/robustness.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.hpp"

namespace adr::fault {

/// When an armed point fires.
enum class Trigger {
  /// Every hit fires (subject to max_fires).
  kAlways,
  /// Each hit fires independently with `probability` (seeded, so the
  /// decision sequence is a pure function of the seed and hit index).
  kProbability,
  /// Hits 1..: fire when hit_number % every_nth == 0.
  kEveryNth,
  /// Fire exactly once, on hit number after_hits + 1.
  kOneShot,
};

/// What an armed point does when it fires.  A non-OK `code` makes
/// check() throw StatusError{code, message} (and fires() return true); a
/// nonzero `delay` sleeps first — arm delay with code == kOk for a pure
/// slow-path fault.
struct FaultSpec {
  Trigger trigger = Trigger::kAlways;
  double probability = 1.0;          // Trigger::kProbability
  std::uint64_t every_nth = 1;       // Trigger::kEveryNth
  std::uint64_t after_hits = 0;      // Trigger::kOneShot
  /// Total firings allowed; 0 = unlimited.  A capped fault plan is what
  /// makes retry tests terminate deterministically.
  std::uint64_t max_fires = 0;
  StatusCode code = StatusCode::kIoError;
  /// Injected failure message; empty composes "injected fault: <point>".
  std::string message;
  std::chrono::microseconds delay{0};
};

struct PointStats {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

class FaultRegistry {
 public:
  /// Base seed mixed into every subsequently armed point's RNG (re-arm
  /// after changing it).  Defaults to a fixed constant, so arming alone
  /// is already deterministic.
  void seed(std::uint64_t s);

  /// Arms (or re-arms, resetting counters and the RNG) a named point.
  void arm(const std::string& point, FaultSpec spec);

  /// Disarms one point; returns true if it was armed.
  bool disarm(const std::string& point);

  /// Disarms everything (tests call this in teardown so a leaked fault
  /// plan can never bleed into the next test).
  void reset();

  /// Evaluates a point: counts the hit, decides firing, sleeps any
  /// injected delay, and returns the injected Status (kOk when the point
  /// is unarmed, did not fire, or is latency-only).
  Status evaluate(const char* point);

  /// evaluate(), throwing StatusError when a status-injecting fault
  /// fires.  The one-liner for call sites with an exception channel.
  void check(const char* point);

  /// evaluate(), reduced to "did a failing fault fire" for call sites
  /// with a boolean error channel (socket I/O).  Latency-only faults
  /// sleep but return false.
  bool fires(const char* point);

  /// True while any point is armed (the hot-path fast gate).
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Counters for one point (zeros when never armed).  Counters survive
  /// disarm() so a test can assert after tearing the plan down.
  PointStats stats(const std::string& point) const;

 private:
  struct Point {
    FaultSpec spec;
    std::uint64_t rng_state = 0;  // splitmix64 stream, advanced per hit
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool armed = false;
  };

  Status evaluate_slow(const char* point);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Point> points_;
  std::uint64_t seed_ = 0x5eed5eedull;
  std::atomic<std::int64_t> armed_points_{0};
};

/// The process-wide registry (immortal, like obs::metrics()).
FaultRegistry& faults();

/// RAII fault plan scope: reset()s the registry on destruction.  Tests
/// arm through a ScopedFaultPlan so a failing assertion can never leak
/// armed faults into later tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::uint64_t seed) { faults().seed(seed); }
  ~ScopedFaultPlan() { faults().reset(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  void arm(const std::string& point, FaultSpec spec) {
    faults().arm(point, std::move(spec));
  }
};

}  // namespace adr::fault
