#include "common/fair_shared_mutex.hpp"

namespace adr {

void FairSharedMutex::lock() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++waiting_writers_;
  writers_cv_.wait(lock, [this]() { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
}

bool FairSharedMutex::try_lock() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writer_active_ || active_readers_ > 0) return false;
  writer_active_ = true;
  return true;
}

void FairSharedMutex::unlock() {
  std::lock_guard<std::mutex> lock(mutex_);
  writer_active_ = false;
  if (waiting_readers_ > 0) {
    // Reader phase: everyone who queued while this writer held or waited
    // goes next, as one bounded batch.
    reader_passes_ = waiting_readers_;
    readers_cv_.notify_all();
  } else if (waiting_writers_ > 0) {
    writers_cv_.notify_one();
  }
}

void FairSharedMutex::lock_shared() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++waiting_readers_;
  readers_cv_.wait(lock, [this]() {
    return !writer_active_ && (waiting_writers_ == 0 || reader_passes_ > 0);
  });
  --waiting_readers_;
  if (reader_passes_ > 0) --reader_passes_;
  ++active_readers_;
}

bool FairSharedMutex::try_lock_shared() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writer_active_ || waiting_writers_ > 0) return false;
  ++active_readers_;
  return true;
}

void FairSharedMutex::unlock_shared() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (--active_readers_ == 0) {
    if (waiting_writers_ > 0) {
      writers_cv_.notify_one();
    } else if (waiting_readers_ > 0) {
      // No writer to hand off to: wake any readers that queued behind a
      // writer which timed out of existence (try_lock failure paths).
      readers_cv_.notify_all();
    }
  }
}

}  // namespace adr
