#include "common/fault.hpp"

#include <thread>
#include <utility>

#include "common/random.hpp"
#include "obs/metrics.hpp"

namespace adr::fault {
namespace {

// FNV-1a: a stable name hash, so a point's RNG stream depends only on
// the (seed, name) pair — std::hash would tie determinism to the
// standard library build.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 step: cheap, high-quality, and trivially replayable — the
// k-th draw of a point is a pure function of its initial state.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultRegistry& faults() {
  // Immortal (never destroyed): instrumented call sites may evaluate
  // points during static teardown.
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::seed(std::uint64_t s) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = s;
}

void FaultRegistry::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = points_[point];
  if (!p.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  p.spec = std::move(spec);
  p.rng_state = mix_seed(seed_, hash_name(point));
  p.hits = 0;
  p.fires = 0;
  p.armed = true;
}

bool FaultRegistry::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t armed = 0;
  for (auto& [name, p] : points_) armed += p.armed ? 1 : 0;
  for (auto& [name, p] : points_) p.armed = false;
  armed_points_.fetch_sub(armed, std::memory_order_relaxed);
}

Status FaultRegistry::evaluate(const char* point) {
  // Hot-path gate: production runs pay exactly this relaxed load.
  if (!armed()) return Status::make_ok();
  return evaluate_slow(point);
}

Status FaultRegistry::evaluate_slow(const char* point) {
  Status injected;
  std::chrono::microseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return Status::make_ok();
    Point& p = it->second;
    const std::uint64_t hit = ++p.hits;
    bool fire = false;
    switch (p.spec.trigger) {
      case Trigger::kAlways:
        fire = true;
        break;
      case Trigger::kProbability:
        // The draw is consumed on every hit, fired or not, so the
        // decision stream is indexed purely by hit number.
        fire = next_unit(p.rng_state) < p.spec.probability;
        break;
      case Trigger::kEveryNth:
        fire = p.spec.every_nth != 0 && hit % p.spec.every_nth == 0;
        break;
      case Trigger::kOneShot:
        fire = hit == p.spec.after_hits + 1;
        break;
    }
    if (fire && p.spec.max_fires != 0 && p.fires >= p.spec.max_fires) {
      fire = false;
    }
    if (fire) {
      ++p.fires;
      delay = p.spec.delay;
      if (p.spec.code != StatusCode::kOk) {
        injected.code = p.spec.code;
        injected.message = p.spec.message.empty()
                               ? std::string("injected fault: ") + point
                               : p.spec.message;
      }
      obs::metrics().counter(std::string("fault.") + point + ".fires").add();
    }
    obs::metrics().counter(std::string("fault.") + point + ".hits").add();
  }
  // Sleep outside the registry lock so a latency fault on one point
  // never stalls evaluation of the others.
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return injected;
}

void FaultRegistry::check(const char* point) {
  const Status s = evaluate(point);
  if (!s.ok()) throw StatusError(s.code, s.message);
}

bool FaultRegistry::fires(const char* point) { return !evaluate(point).ok(); }

PointStats FaultRegistry::stats(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  return PointStats{it->second.hits, it->second.fires};
}

}  // namespace adr::fault
