// Deterministic random-number helpers.
//
// Every data generator in the repository takes an explicit seed so that
// experiments regenerate bit-identically; this wraps std::mt19937_64 with
// the handful of draw shapes the emulators need.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace adr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// Gaussian draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(eng_);
  }

  /// Exponential draw with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(eng_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return std::bernoulli_distribution(p)(eng_); }

  /// Index drawn proportionally to non-negative weights.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), eng_);
  }

  /// Derives an independent child generator (for per-chunk streams).
  Rng fork() { return Rng(eng_()); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

/// Stable 64-bit hash combiner (splitmix64 finalizer) for deriving seeds.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

}  // namespace adr
