#include "common/status.hpp"

namespace adr {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kPlanRejected:
      return "plan-rejected";
    case StatusCode::kExecFailed:
      return "exec-failed";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

bool is_retryable(StatusCode code, bool idempotent) {
  switch (code) {
    case StatusCode::kBusy:
      return true;
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
      return idempotent;
    default:
      return false;
  }
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string s = adr::to_string(code);
  if (!message.empty()) {
    s += ": ";
    s += message;
  }
  return s;
}

Status status_from_exception(const std::exception& e) {
  if (const auto* se = dynamic_cast<const StatusError*>(&e)) {
    return se->to_status();
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return Status::make(StatusCode::kInvalidArgument, e.what());
  }
  if (dynamic_cast<const std::out_of_range*>(&e) != nullptr) {
    return Status::make(StatusCode::kNotFound, e.what());
  }
  return Status::make(StatusCode::kExecFailed, e.what());
}

}  // namespace adr
