#include "common/geometry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace adr {

Point::Point(int d) : dims_(d) { assert(d >= 0 && d <= kMaxDims); }

Point::Point(std::initializer_list<double> coords) {
  assert(coords.size() <= static_cast<size_t>(kMaxDims));
  dims_ = static_cast<int>(coords.size());
  std::copy(coords.begin(), coords.end(), c_.begin());
}

Point::Point(std::span<const double> coords) {
  assert(coords.size() <= static_cast<size_t>(kMaxDims));
  dims_ = static_cast<int>(coords.size());
  std::copy(coords.begin(), coords.end(), c_.begin());
}

bool Point::operator==(const Point& o) const {
  if (dims_ != o.dims_) return false;
  for (int i = 0; i < dims_; ++i) {
    if (c_[static_cast<size_t>(i)] != o.c_[static_cast<size_t>(i)]) return false;
  }
  return true;
}

std::string Point::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Rect::Rect(Point lo, Point hi) : lo_(lo), hi_(hi) { assert(lo.dims() == hi.dims()); }

Rect Rect::cube(int d, double lo, double hi) {
  Point l(d), h(d);
  for (int i = 0; i < d; ++i) {
    l[i] = lo;
    h[i] = hi;
  }
  return Rect(l, h);
}

Rect Rect::join(const Rect& a, const Rect& b) {
  if (a.dims() == 0) return b;
  if (b.dims() == 0) return a;
  assert(a.dims() == b.dims());
  Point lo(a.dims()), hi(a.dims());
  for (int i = 0; i < a.dims(); ++i) {
    lo[i] = std::min(a.lo_[i], b.lo_[i]);
    hi[i] = std::max(a.hi_[i], b.hi_[i]);
  }
  return Rect(lo, hi);
}

bool Rect::valid() const {
  if (dims() == 0) return false;
  for (int i = 0; i < dims(); ++i) {
    if (lo_[i] > hi_[i]) return false;
  }
  return true;
}

Point Rect::center() const {
  Point p(dims());
  for (int i = 0; i < dims(); ++i) p[i] = center(i);
  return p;
}

double Rect::volume() const {
  if (dims() == 0) return 0.0;
  double v = 1.0;
  for (int i = 0; i < dims(); ++i) v *= std::max(0.0, extent(i));
  return v;
}

double Rect::margin() const {
  double m = 0.0;
  for (int i = 0; i < dims(); ++i) m += std::max(0.0, extent(i));
  return m;
}

bool Rect::contains(const Point& p) const {
  if (p.dims() != dims() || dims() == 0) return false;
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::contains(const Rect& r) const {
  if (r.dims() != dims() || dims() == 0) return false;
  for (int i = 0; i < dims(); ++i) {
    if (r.lo_[i] < lo_[i] || r.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::intersects(const Rect& r) const {
  if (r.dims() != dims() || dims() == 0) return false;
  for (int i = 0; i < dims(); ++i) {
    if (r.hi_[i] < lo_[i] || r.lo_[i] > hi_[i]) return false;
  }
  return true;
}

double Rect::overlap_volume(const Rect& r) const {
  if (!intersects(r)) return 0.0;
  double v = 1.0;
  for (int i = 0; i < dims(); ++i) {
    v *= std::max(0.0, std::min(hi_[i], r.hi_[i]) - std::max(lo_[i], r.lo_[i]));
  }
  return v;
}

Rect Rect::inflated(double amount) const {
  Point lo = lo_, hi = hi_;
  for (int i = 0; i < dims(); ++i) {
    lo[i] -= amount;
    hi[i] += amount;
  }
  return Rect(lo, hi);
}

Rect Rect::inflated(std::span<const double> amounts) const {
  assert(static_cast<int>(amounts.size()) == dims());
  Point lo = lo_, hi = hi_;
  for (int i = 0; i < dims(); ++i) {
    lo[i] -= amounts[static_cast<size_t>(i)];
    hi[i] += amounts[static_cast<size_t>(i)];
  }
  return Rect(lo, hi);
}

std::string Rect::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << '(';
  for (int i = 0; i < p.dims(); ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  return os << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo() << " .. " << r.hi() << ']';
}

}  // namespace adr
