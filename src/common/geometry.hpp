// Geometry primitives for multi-dimensional attribute spaces.
//
// ADR associates every data item with a point in a multi-dimensional
// attribute space and every chunk with a minimum bounding rectangle (MBR).
// Range queries are axis-aligned boxes in the same space.  Dimensions are
// dynamic at run time but bounded by kMaxDims so that Point/Rect stay
// trivially copyable and allocation free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>

namespace adr {

/// Maximum number of dimensions an attribute space may have.
inline constexpr int kMaxDims = 8;

/// A point in a multi-dimensional attribute space.
///
/// Coordinates beyond `dims` are kept at zero so that equality and hashing
/// can ignore them safely.
class Point {
 public:
  Point() = default;

  /// Constructs a `d`-dimensional origin.
  explicit Point(int d);

  /// Constructs from an explicit coordinate list (dims = list size).
  Point(std::initializer_list<double> coords);

  /// Constructs from a span of coordinates.
  explicit Point(std::span<const double> coords);

  int dims() const { return dims_; }

  double operator[](int i) const { return c_[static_cast<size_t>(i)]; }
  double& operator[](int i) { return c_[static_cast<size_t>(i)]; }

  std::span<const double> coords() const { return {c_.data(), static_cast<size_t>(dims_)}; }

  bool operator==(const Point& o) const;
  bool operator!=(const Point& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  std::array<double, kMaxDims> c_{};
  int dims_ = 0;
};

/// An axis-aligned (hyper-)rectangle: the MBR of a chunk or a range query.
///
/// A Rect is *valid* iff lo[i] <= hi[i] for every dimension.  The empty
/// rectangle (dims() == 0) intersects nothing and contains nothing.
class Rect {
 public:
  Rect() = default;
  Rect(Point lo, Point hi);

  /// The rectangle covering [lo, hi] in every one of `d` dimensions.
  static Rect cube(int d, double lo, double hi);

  /// Smallest rectangle containing both arguments.
  static Rect join(const Rect& a, const Rect& b);

  int dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  bool valid() const;

  /// Extent along dimension `i` (hi - lo).
  double extent(int i) const { return hi_[i] - lo_[i]; }

  /// Midpoint along dimension `i`.
  double center(int i) const { return 0.5 * (lo_[i] + hi_[i]); }

  /// Centroid point.
  Point center() const;

  /// Product of extents (length/area/volume...).  Zero-extent dims count
  /// as zero, so degenerate rectangles have zero volume.
  double volume() const;

  /// Sum of extents (used by R-tree split heuristics).
  double margin() const;

  bool contains(const Point& p) const;
  bool contains(const Rect& r) const;

  /// Closed-interval intersection test: rectangles sharing only a face
  /// still intersect.  Mismatched dimensionalities never intersect.
  bool intersects(const Rect& r) const;

  /// Volume of the intersection (zero when disjoint).
  double overlap_volume(const Rect& r) const;

  /// Grows the rectangle by `amount` on every side of every dimension.
  Rect inflated(double amount) const;

  /// Grows/shrinks each side by a per-dimension amount.
  Rect inflated(std::span<const double> amounts) const;

  bool operator==(const Rect& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }
  bool operator!=(const Rect& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  Point lo_;
  Point hi_;
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace adr
