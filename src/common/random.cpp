#include "common/random.hpp"

#include <cassert>
#include <numeric>

namespace adr {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace adr
