// Phase-fair reader/writer lock.
//
// std::shared_mutex on glibc is a pthread rwlock whose default policy
// prefers readers: a steady stream of shared lockers (Repository::submit)
// can starve an exclusive locker (create_dataset) indefinitely.  This
// lock bounds writer wait instead: a waiting writer blocks *new* readers,
// so it only waits for the readers already inside, and when it releases,
// the readers that queued up behind it are admitted as one batch before
// the next writer — readers and writers alternate in phases, neither side
// starves.
//
// Satisfies the SharedLockable / Lockable requirements, so it drops in
// behind std::shared_lock / std::unique_lock.
#pragma once

#include <condition_variable>
#include <mutex>

namespace adr {

class FairSharedMutex {
 public:
  FairSharedMutex() = default;
  FairSharedMutex(const FairSharedMutex&) = delete;
  FairSharedMutex& operator=(const FairSharedMutex&) = delete;

  // Exclusive.
  void lock();
  bool try_lock();
  void unlock();

  // Shared.
  void lock_shared();
  bool try_lock_shared();
  void unlock_shared();

 private:
  std::mutex mutex_;
  std::condition_variable readers_cv_;
  std::condition_variable writers_cv_;
  int active_readers_ = 0;
  int waiting_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
  /// Readers admitted past waiting writers in the current reader phase:
  /// snapshotted from waiting_readers_ when a writer releases, so the
  /// batch is bounded and late arrivals queue behind the next writer.
  int reader_passes_ = 0;
};

}  // namespace adr
