// ASCII table rendering for the benchmark harness.
//
// Every bench binary prints its results in the same row/column layout the
// paper's tables and figure series use, so this provides a small aligned
// table builder plus a one-line ASCII sparkline for eyeballing trends.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace adr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void add_row(const std::string& label, std::span<const double> values, int precision = 2);

  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 2);

/// Formats a byte count as B / KB / MB / GB with two decimals.
std::string fmt_bytes(double bytes);

/// Renders values as a unicode sparkline (▁▂▃▄▅▆▇█), scaled to min..max.
std::string sparkline(std::span<const double> values);

}  // namespace adr
