// d-dimensional Hilbert space-filling curve.
//
// The SC'99 ADR paper uses Hilbert curves in two places:
//  * tiling: output chunks are ordered by the Hilbert index of the midpoint
//    of their bounding box before being packed into tiles (paper section 3),
//  * declustering: chunks are assigned to disks with a Hilbert-curve based
//    declustering algorithm (Faloutsos & Bhagwat; paper section 4).
//
// The transform implemented here is John Skilling's "transpose" algorithm
// (AIP Conf. Proc. 707, 2004), which converts between d-dimensional integer
// axes and the Hilbert index in O(d * bits) time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/geometry.hpp"

namespace adr {

/// Returns the Hilbert index of an integer point.
///
/// `axes[i]` must fit in `bits` bits; `dims * bits` must be <= 64 so the
/// index fits in a uint64_t.  The index enumerates the cells of the
/// `2^bits`-per-side grid along the Hilbert curve.
std::uint64_t hilbert_index(std::span<const std::uint32_t> axes, int bits);

/// Inverse of hilbert_index: recovers the axes of the cell at `index`.
std::vector<std::uint32_t> hilbert_axes(std::uint64_t index, int dims, int bits);

/// Maps a continuous point inside `domain` to a Hilbert index by quantizing
/// each coordinate onto a 2^bits grid.  Points outside the domain are
/// clamped.  Used to order chunk-MBR midpoints for tiling.
std::uint64_t hilbert_index_in_domain(const Point& p, const Rect& domain, int bits);

/// Maximum bits/dimension such that dims*bits fits in 64.
int hilbert_max_bits(int dims);

}  // namespace adr
