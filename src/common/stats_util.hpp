// Summary statistics over per-processor measurements.
//
// The paper reports per-processor communication volume and computation time
// (its Figure 9); Summary collapses a per-node vector into the moments the
// harness prints, and imbalance() is the load-imbalance metric (max/mean)
// the paper invokes to explain DA's behaviour under skew.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace adr {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double total = 0.0;

  std::string to_string() const;
};

/// Computes the summary of a sample; empty input yields a zero summary.
Summary summarize(std::span<const double> values);

/// max/mean load-imbalance factor; 1.0 means perfectly balanced.
/// Returns 0 for empty or all-zero samples.
double imbalance(std::span<const double> values);

}  // namespace adr
