#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace adr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, std::span<const double> values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << (c == 0 ? "" : "");
      os.unsetf(std::ios::adjustfield);
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1e9) {
    v /= 1e9;
    unit = "GB";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "MB";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "KB";
  }
  return fmt(v, 2) + " " + unit;
}

std::string sparkline(std::span<const double> values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  const double lo = *mn, hi = *mx;
  std::string out;
  for (double v : values) {
    int level = 0;
    if (hi > lo) level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

}  // namespace adr
