// Typed operation status for the submission API.
//
// Replaces the string-only error channel: every failed query carries a
// machine-readable code plus a human-readable message, so clients can
// distinguish a saturated server (retry later) from a malformed query
// (fix and resubmit) from a planner rejection (pick another strategy)
// without parsing prose.  Codes are stable wire values (encoded as u16
// in protocol v4 result frames); append new codes, never renumber.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace adr {

enum class StatusCode : std::uint16_t {
  kOk = 0,
  /// Malformed request: unknown map/aggregation name, bad range, bad
  /// machine shape.  Resubmitting unchanged will fail again.
  kInvalidArgument = 1,
  /// A named entity (dataset, ticket) does not exist.
  kNotFound = 2,
  /// The server/scheduler is saturated and refused the work; retry
  /// after the hint (WireResult::retry_after_ms).
  kBusy = 3,
  /// The query planning service rejected the query (no plan exists for
  /// the request under the given strategy/memory budget).
  kPlanRejected = 4,
  /// Planning succeeded but the execution service failed.
  kExecFailed = 5,
  /// Transport-level failure (connection dropped mid-query).
  kUnavailable = 6,
  /// Anything the server could not classify.
  kInternal = 7,
  /// A storage-layer read or write failed mid-query (disk fault, short
  /// read, injected fault).  Retrying an idempotent query may succeed —
  /// declustered farms survive transient per-disk failures.
  kIoError = 8,
  /// The query's Qos deadline passed before a result could be produced:
  /// the scheduler shed it from the queue, or the server refused it
  /// because even the retry hint overshoots the deadline.  Never
  /// retryable — the deadline is just as expired on the next attempt.
  kDeadlineExceeded = 9,
};

/// Client-side retry classification: kBusy is always retryable (the
/// server refused before doing work); kIoError and kUnavailable are
/// retryable only for idempotent queries (range aggregations re-execute
/// from scratch — a retry after a transport loss cannot double-apply).
/// Everything else fails the same way again.
bool is_retryable(StatusCode code, bool idempotent);

/// Short stable identifier, e.g. "ok", "busy", "plan-rejected".
const char* to_string(StatusCode code);

/// A status code plus context message.  Default-constructed is OK.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  static Status make_ok() { return Status{}; }
  static Status make(StatusCode code, std::string message) {
    return Status{code, std::move(message)};
  }

  /// "ok" or "<code>: <message>" for logs.
  std::string to_string() const;
};

/// Exception carrying a StatusCode through throwing call sites, so the
/// service boundary (QuerySubmissionService / AdrServer) can surface the
/// intended code instead of guessing from the exception type.
class StatusError : public std::runtime_error {
 public:
  StatusError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  StatusCode code() const { return code_; }
  Status to_status() const { return Status::make(code_, what()); }

 private:
  StatusCode code_;
};

/// Classifies a caught exception into a Status: StatusError keeps its
/// code, std::invalid_argument maps to kInvalidArgument, std::out_of_range
/// to kNotFound, anything else to kExecFailed.
Status status_from_exception(const std::exception& e);

}  // namespace adr
