#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace adr {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("ADR_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  return LogLevel::kOff;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    default:
      return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[adr:" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace adr
