#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace adr {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("ADR_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  return LogLevel::kOff;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;
std::ostream* g_sink = nullptr;  // guarded by g_mutex; nullptr = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    default:
      return "?";
  }
}

}  // namespace

// Relaxed is enough: the level is a standalone filter knob, not a
// publication of other data.
void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::ostream* set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream* prev = g_sink;
  g_sink = sink;
  return prev;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  // Compose the complete line before touching the stream: one write()
  // call per line means concurrent loggers (and other writers sharing
  // the stream) can interleave only at line granularity.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[adr:";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
}
}  // namespace detail

}  // namespace adr
