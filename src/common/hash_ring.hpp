// Consistent-hash ring for the sharded serving tier.
//
// The router (net/router.hpp) partitions queries over N independent
// backends by dataset signature, the serving-tier rebirth of the
// paper's declustering step: the same "spread related work, keep
// placement stable under membership change" requirement, one level up.
// A plain modulo would remap nearly every key when a backend joins or
// leaves; the ring remaps only the keys whose arc the changed node
// owned — ~K/N of them — so backend-local caches (chunk cache,
// marginal cache) survive scale-out events.
//
// Each node is hashed onto the ring at `vnodes_per_node` pseudo-random
// points (virtual nodes flatten the per-node load variance of a single
// placement from O(1) to O(1/sqrt(V))); a key is owned by the first
// vnode clockwise from its hash.  replicas(key, n) walks further
// clockwise collecting the next distinct nodes — the ordered candidate
// list the router uses for replica fan-out and failover.
//
// Not thread-safe: the router snapshots membership under its own lock.
#pragma once

#include <cstdint>
#include <vector>

namespace adr {

/// Stateless splitmix64 finalizer: the ring's point and key hash.
/// Public so callers (dataset signatures, tests) mix with the same
/// function the ring uses.
std::uint64_t mix64(std::uint64_t x);

class HashRing {
 public:
  /// `vnodes_per_node` must be >= 1 (throws std::invalid_argument).
  explicit HashRing(int vnodes_per_node = 64);

  /// Inserts a node (no-op if already present).
  void add_node(std::uint64_t node);

  /// Removes a node; returns true if it was present.
  bool remove_node(std::uint64_t node);

  bool contains(std::uint64_t node) const;

  /// Distinct nodes on the ring.
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// The node owning `key` (first vnode clockwise from hash(key)).
  /// Throws std::logic_error on an empty ring.
  std::uint64_t lookup(std::uint64_t key) const;

  /// Up to `n` distinct nodes in ring order starting at the owner: the
  /// ordered replica/failover candidates for `key`.  n >= size()
  /// returns every node (still in ring order for this key).
  std::vector<std::uint64_t> replicas(std::uint64_t key, std::size_t n) const;

  /// Sorted node list (membership snapshot, for tests/introspection).
  std::vector<std::uint64_t> nodes() const { return nodes_; }

 private:
  struct VNode {
    std::uint64_t point;
    std::uint64_t node;
  };

  /// Index of the first vnode clockwise from `point`.
  std::size_t successor(std::uint64_t point) const;

  int vnodes_per_node_;
  std::vector<VNode> ring_;  // sorted by point (ties broken by node)
  std::vector<std::uint64_t> nodes_;  // sorted
};

}  // namespace adr
