// Process-wide metrics registry for the serving runtime.
//
// The paper's evaluation is built on measured per-phase breakdowns; the
// serving stack grown around the reproduction (scheduler, executor pool,
// chunk cache, socket server) needs the same visibility *at runtime*.
// Three instrument kinds:
//
//   Counter   - monotonic u64, sharded across cache lines so concurrent
//               hot-path increments (one per chunk read) never contend;
//   Gauge     - point-in-time i64 (queue depth, resident bytes);
//   Histogram - fixed-bucket latency distribution, sharded like Counter,
//               with p50/p95/p99 read out of a snapshot.
//
// Writers touch only relaxed atomics in their own shard: recording a
// sample is a handful of nanoseconds and safe from any thread.  Readers
// (the stats endpoint, benches) take a MetricsSnapshot — a consistent-
// enough sum over shards — and render it as JSON.
//
// metrics() returns the process-wide registry.  It is intentionally
// immortal (never destroyed) so instrumented objects may update gauges
// from their destructors regardless of static teardown order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adr::obs {

/// Shards per instrument: threads hash onto shards, so concurrent
/// writers almost never share a cache line.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Stable per-thread shard index in [0, kMetricShards).
std::size_t shard_index() noexcept;
/// Lock-free add to a double accumulated in atomic bits.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double d) noexcept;
double atomic_load_double(const std::atomic<std::uint64_t>& bits) noexcept;
}  // namespace detail

/// Monotonic counter.  add() is wait-free and off the hot path's cache
/// lines; value() sums the shards (monotonic but not instantaneous).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Point-in-time signed value (queue depth, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Read-out of one histogram: cumulative-free per-bucket counts plus the
/// quantile/mean math over them.
struct HistogramSnapshot {
  /// Ascending finite upper bounds; observations land in the first
  /// bucket whose bound >= value.  counts has bounds.size()+1 entries,
  /// the last being the overflow bucket (> bounds.back()).
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile by linear interpolation inside the target bucket (the
  /// classic fixed-bucket estimate; exact at bucket boundaries).  The
  /// overflow bucket reports the largest finite bound — check
  /// quantile_in_overflow() before trusting a tail quantile: a p99 that
  /// landed past the last bound is a *floor* ("p99 >= 10s"), not an
  /// estimate.  q in [0, 1].
  double quantile(double q) const;
  /// Observations past the largest finite bound.
  std::uint64_t overflow() const { return counts.empty() ? 0 : counts.back(); }
  /// True when quantile(q)'s rank lands in the overflow bucket, i.e. the
  /// returned value is clipped to bounds.back() and understates reality.
  bool quantile_in_overflow(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Fixed-bucket histogram; observe() is wait-free (binary search over
/// the bounds plus two relaxed adds in this thread's shard).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // bounds+1 buckets
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // double payload
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Default latency buckets in seconds: 100 us .. 10 s, roughly 1-2.5-5
/// per decade — wide enough for a cold file-backed query, fine enough
/// that warm submits (a few ms) resolve.
std::vector<double> default_latency_buckets();

/// A consistent read of every registered series, detached from the
/// registry (safe to serialize while writers keep writing).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const std::uint64_t* counter(const std::string& name) const;
  const std::int64_t* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count,overflow,sum,mean,p50,p95,p99,buckets:[{le,count}...]}}}
  std::string to_json() const;
};

/// Named-series registry.  Lookup is mutex-protected (instrumentation
/// sites cache the returned reference once); returned references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the buckets; later calls with the same
  /// name return the existing histogram and ignore `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every serving-stack component records into.
MetricsRegistry& metrics();

}  // namespace adr::obs
