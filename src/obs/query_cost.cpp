#include "obs/query_cost.hpp"

namespace adr::obs {

namespace {
thread_local double t_cost_queue_wait = 0.0;
}  // namespace

void set_cost_queue_wait(double seconds) { t_cost_queue_wait = seconds; }
double cost_queue_wait() { return t_cost_queue_wait; }

}  // namespace adr::obs
