#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace adr::obs {

namespace {
thread_local std::uint64_t t_trace_query = 0;
}  // namespace

void set_trace_query(std::uint64_t query_id) { t_trace_query = query_id; }
std::uint64_t trace_query() { return t_trace_query; }

void QueryTracer::enable(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  recorded_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void QueryTracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::uint64_t QueryTracer::now_us() const {
  if (!enabled()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void QueryTracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;  // overwrite the oldest
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> QueryTracer::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once saturated, next_ points at the oldest event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t QueryTracer::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t QueryTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return recorded_ - ring_.size();
}

void QueryTracer::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void QueryTracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Name the two "processes" so Perfetto labels the track groups.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"adr serving\"}},"
     << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"adr executor nodes\"}}";
  for (const TraceEvent& e : evs) {
    const bool is_phase = e.tile >= 0;
    os << ",{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":" << (is_phase ? 2 : 1)
       << ",\"tid\":" << e.tid << ",\"args\":{\"query\":" << e.query;
    if (is_phase) os << ",\"tile\":" << e.tile;
    os << "}}";
  }
  os << "]}";
}

std::string QueryTracer::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

QueryTracer& tracer() {
  // Immortal for the same reason as metrics(): instrumentation may fire
  // during static teardown.
  static QueryTracer* t = new QueryTracer();
  return *t;
}

}  // namespace adr::obs
