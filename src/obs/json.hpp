// Minimal JSON emission helpers for the observability subsystem.
//
// The metrics snapshot and the Chrome trace export are both JSON on the
// wire; this is the tiny writer they share.  Emission only — the repo
// never parses JSON (clients and browsers do).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace adr::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not added).
std::string json_escape(std::string_view s);

/// Writes a double the way JSON wants it: finite values with enough
/// precision to round-trip, NaN/inf as 0 (JSON has no spelling for them).
void json_number(std::ostream& os, double v);

}  // namespace adr::obs
