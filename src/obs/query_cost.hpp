// Per-query cost ledger: what one query actually cost, attributed.
//
// The cumulative metrics answer "how much work has the process done";
// the ledger answers "what did *this* query spend" — the attribution the
// marginal cache, the router, and the self-tuning scheduler need.  The
// repository fills one ledger per QueryResult from the deltas it already
// computes (chunk-cache hit/miss, marginal consults) plus the executor's
// wall and thread-CPU clocks, and emits the totals as the `query.cost.*`
// metric family on submit success.
//
// Queue wait crosses from the scheduler into Repository::submit through
// a thread-local context, exactly like obs::set_trace_query: the worker
// deposits the measured wait before calling submit on the same thread.
#pragma once

#include <cstdint>

namespace adr::obs {

/// The attributed cost of one completed query.  Byte/chunk counts
/// reconcile with the cumulative `chunk_cache.*` / `storage.*` series
/// (the serial-submit telemetry test asserts it); under concurrent
/// submits the cache attribution is approximate, like
/// ExecStats::cache_*.
struct QueryCostLedger {
  /// Chunks (and their payload bytes) that missed the chunk cache and
  /// were fetched from the backing store.  With the cache disabled,
  /// every engine read counts here.
  std::uint64_t cold_chunks = 0;
  std::uint64_t cold_bytes = 0;
  /// Chunks (payload bytes) served from the cross-query chunk cache.
  std::uint64_t cached_chunks = 0;
  std::uint64_t cached_bytes = 0;
  /// Output chunks served from marginal-cache partials, and the input
  /// payload bytes those partials saved (read + aggregation skipped).
  std::uint64_t marginal_chunks = 0;
  std::uint64_t marginal_bytes_saved = 0;
  /// Local-reduction (input chunk, accumulator) pairs aggregated.
  std::uint64_t aggregate_pairs = 0;
  /// Scheduler queue wait (0 for direct Repository::submit calls).
  double queue_wait_s = 0.0;
  /// Executor wall time (== stats.total_s) and the node threads' summed
  /// CPU time for the run (thread backend; 0 on the simulator).
  double exec_wall_s = 0.0;
  double thread_cpu_s = 0.0;
  /// Gang this query executed in (1 = alone).
  std::uint32_t gang_size = 1;
  /// Submit attempts that produced this result.  Server-side execution
  /// is always 1; AdrClient's retry loop reports its count on
  /// WireResult::attempts (client.* series), not here.
  std::uint32_t attempts = 1;

  std::uint64_t total_chunks() const { return cold_chunks + cached_chunks; }
  std::uint64_t total_bytes() const { return cold_bytes + cached_bytes; }
};

/// Deposits the queue wait the next Repository::submit on this thread
/// should attribute (the scheduler worker calls this just before
/// submitting, and clears it after).
void set_cost_queue_wait(double seconds);
/// The deposited wait (0 when none).
double cost_queue_wait();

}  // namespace adr::obs
