// Exposition formats for the metrics registry and the telemetry ring.
//
// Two renderings, both pure functions over snapshot data so they are
// golden-testable without a live server:
//
//   to_prometheus(snapshot)  - Prometheus text format 0.0.4.  Counters
//       and gauges map directly; histograms emit the classic cumulative
//       `_bucket{le="..."}` series (the Histogram already has `le`
//       semantics) plus `_sum` and `_count`.  Series names are
//       sanitized (dots -> underscores) and prefixed `adr_`.
//
//   history_to_json(samples, meta)  - the /history document: a shared
//       time axis plus per-series value arrays and derived rate arrays
//       (per-second deltas, reset-aware), the form adr_top and
//       `adr_stats --watch` consume.
//
// counter_rate/counter_delta are the one place the delta-vs-reset rule
// lives: a counter that went backwards (process restart behind a
// router, registry swap in a test) contributes its new absolute value
// as the delta instead of a negative spike.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace adr::obs {

struct TelemetrySample;

/// Ring bookkeeping that travels with a history export.
struct HistoryMeta {
  std::uint64_t period_ms = 1000;
  std::size_t capacity = 0;
  /// Samples taken since sampler construction (>= samples retained).
  std::uint64_t total_samples = 0;
};

/// Prometheus exposition name: dots and any other non-[a-zA-Z0-9_]
/// become '_', and the result is prefixed "adr_".
std::string prometheus_name(const std::string& series);

/// The full registry snapshot in Prometheus text format 0.0.4.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Reset-aware counter delta: cur - prev when monotonic, cur after a
/// reset (the series restarted from zero).
std::uint64_t counter_delta(std::uint64_t prev, std::uint64_t cur);

/// counter_delta over an interval, as a per-second rate.  0 when the
/// interval is empty or non-positive.
double counter_rate(std::uint64_t prev, std::uint64_t cur, double dt_seconds);

/// Mean of `series`' observations recorded *inside the sampled window*
/// (sum/count deltas between the oldest and newest of `samples`), vs
/// the since-boot mean HistogramSnapshot::mean() reports.  The server's
/// retry-after hints use this so a morning burst stops biasing the
/// afternoon's estimates.  nullopt when fewer than two samples exist,
/// the series is absent, no new observations landed in the window, or
/// the series reset (count/sum went backwards) — callers fall back to
/// the cumulative mean.
std::optional<double> windowed_histogram_mean(
    const std::vector<TelemetrySample>& samples, const std::string& series);

/// The /history JSON document (schema in docs/observability.md):
/// {"period_ms","samples","capacity","total_samples","t_ms":[...],
///  "counters":{name:{"last",..,"values":[...],"rates":[...]}},
///  "gauges":{name:{"last","values":[...]}},
///  "histograms":{name:{"count","overflow","p50","p99",
///                      "rates":[...],"p50s":[...],"p99s":[...]}}}
/// Rate arrays align with t_ms; element 0 is always 0 (no prior
/// sample).  Histogram p50s/p99s are *windowed* quantiles computed
/// from per-interval bucket-count deltas, so a latency regression shows
/// up immediately instead of being averaged into since-boot history.
std::string history_to_json(const std::vector<TelemetrySample>& samples,
                            const HistoryMeta& meta);

}  // namespace adr::obs
