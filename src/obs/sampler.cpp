#include "obs/sampler.hpp"

#include <algorithm>
#include <utility>

#include "obs/exposition.hpp"

namespace adr::obs {

namespace {

std::int64_t wall_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t mono_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TelemetrySampler::~TelemetrySampler() {
  // Direct users (tests) may destroy a sampler they started; force the
  // thread down regardless of outstanding refcounts.
  {
    std::lock_guard lock(mutex_);
    starts_ = 0;
    thread_running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::start(const Options& options) {
  std::thread stale;
  {
    std::lock_guard lock(mutex_);
    ++starts_;
    if (starts_ == 1) {
      options_ = options;
      options_.period = std::max(options_.period, std::chrono::milliseconds(10));
      options_.capacity = std::max<std::size_t>(options_.capacity, 2);
      if (ring_.size() != options_.capacity) {
        // Resize only between runs: compact the retained tail in order.
        std::vector<TelemetrySample> kept = {};
        kept.reserve(count_);
        for (std::size_t i = 0; i < count_; ++i) {
          kept.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
        }
        const std::size_t drop =
            kept.size() > options_.capacity ? kept.size() - options_.capacity : 0;
        ring_.assign(options_.capacity, TelemetrySample{});
        count_ = std::min(kept.size() - drop, options_.capacity);
        head_ = 0;
        for (std::size_t i = 0; i < count_; ++i) ring_[i] = std::move(kept[drop + i]);
        head_ = count_ % ring_.size();
      }
      // A previous run's thread may still be winding down; join it
      // outside the lock before spawning the replacement.
      stale = std::move(thread_);
      thread_running_ = true;
    }
  }
  if (stale.joinable()) stale.join();
  {
    std::lock_guard lock(mutex_);
    if (starts_ >= 1 && thread_running_ && !thread_.joinable()) {
      thread_ = std::thread([this]() { thread_main(); });
    }
  }
}

void TelemetrySampler::stop() {
  std::thread finished;
  {
    std::lock_guard lock(mutex_);
    if (starts_ == 0) return;
    --starts_;
    if (starts_ > 0) return;
    thread_running_ = false;
    finished = std::move(thread_);
  }
  cv_.notify_all();
  if (finished.joinable()) finished.join();
}

bool TelemetrySampler::running() const {
  std::lock_guard lock(mutex_);
  return starts_ > 0;
}

void TelemetrySampler::thread_main() {
  // First sample immediately: a scrape right after server start already
  // has a baseline for rate computation.
  sample_now();
  std::unique_lock lock(mutex_);
  while (thread_running_) {
    const auto period = options_.period;
    if (cv_.wait_for(lock, period, [this]() { return !thread_running_; })) {
      return;
    }
    lock.unlock();
    sample_now();
    metrics().counter("sampler.ticks").add();
    lock.lock();
  }
}

void TelemetrySampler::sample_now() {
  TelemetrySample sample;
  sample.wall_ms = wall_now_ms();
  sample.mono_ms = mono_now_ms();
  // Snapshot outside our own mutex: the registry holds its lock while
  // summing shards, and the ring lock should never nest under it.
  sample.snapshot = metrics().snapshot();
  std::lock_guard lock(mutex_);
  push_sample_locked(std::move(sample));
}

void TelemetrySampler::push_sample_locked(TelemetrySample&& sample) {
  if (ring_.empty()) {
    ring_.assign(options_.capacity > 0 ? options_.capacity : 300, TelemetrySample{});
  }
  const std::size_t slot = (head_ + count_) % ring_.size();
  ring_[slot] = std::move(sample);
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    head_ = (head_ + 1) % ring_.size();  // overwrote the oldest
  }
  ++total_;
}

std::vector<TelemetrySample> TelemetrySampler::history(std::size_t last_n) const {
  std::lock_guard lock(mutex_);
  const std::size_t n =
      last_n == 0 ? count_ : std::min(last_n, count_);
  std::vector<TelemetrySample> out;
  out.reserve(n);
  for (std::size_t i = count_ - n; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string TelemetrySampler::history_json(std::size_t last_n) const {
  HistoryMeta meta;
  {
    std::lock_guard lock(mutex_);
    meta.period_ms =
        static_cast<std::uint64_t>(options_.period.count() > 0
                                       ? options_.period.count()
                                       : Options{}.period.count());
    meta.capacity = ring_.empty() ? options_.capacity : ring_.size();
    if (meta.capacity == 0) meta.capacity = Options{}.capacity;
    meta.total_samples = total_;
  }
  return history_to_json(history(last_n), meta);
}

std::size_t TelemetrySampler::capacity() const {
  std::lock_guard lock(mutex_);
  return ring_.empty() ? options_.capacity : ring_.size();
}

std::chrono::milliseconds TelemetrySampler::period() const {
  std::lock_guard lock(mutex_);
  return options_.period;
}

std::uint64_t TelemetrySampler::total_samples() const {
  std::lock_guard lock(mutex_);
  return total_;
}

TelemetrySampler& sampler() {
  // Immortal, like metrics(): servers stop it explicitly, and a leaked
  // refcount at exit must not order against static teardown.
  static TelemetrySampler* instance = new TelemetrySampler();
  return *instance;
}

}  // namespace adr::obs
