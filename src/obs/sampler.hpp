// Background telemetry sampler: a fixed-size in-memory time-series ring
// over the process-wide metrics registry.
//
// obs::metrics() can only answer "what is the total since boot"; every
// consumer the ROADMAP targets (self-tuning scheduler, router health
// polling, cache tuning) needs *time series* — rates, trends, and
// regression onset.  TelemetrySampler snapshots every registered
// counter/gauge/histogram on a fixed period (default 1 s) into a ring of
// ~5 minutes of retention, from which delta/rate series are computed on
// read-out (so `scheduler.enqueued` becomes qps).
//
// Overhead: one MetricsSnapshot per period on a background thread — a
// registry-mutex hold plus relaxed shard sums, nothing on any serving
// hot path.  The warm-path cost with the sampler running is gated at
// >= 95% of baseline by bench_submit_throughput.
//
// Lifecycle: start()/stop() are refcounted so multiple servers (or a
// server plus a test harness) in one process compose — the first start
// spawns the thread with its options, later starts just pin it, and the
// last stop joins it.  The ring survives stop() so late readers still
// see the history.
//
// sampler() is process-wide and immortal, like obs::metrics().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace adr::obs {

/// One ring entry: a full registry snapshot plus when it was taken.
struct TelemetrySample {
  /// Wall-clock milliseconds since the Unix epoch (what /history serves
  /// as the time axis).
  std::int64_t wall_ms = 0;
  /// Monotonic milliseconds (steady clock) — rate denominators use this
  /// so a wall-clock step never produces a negative interval.
  std::uint64_t mono_ms = 0;
  MetricsSnapshot snapshot;
};

class TelemetrySampler {
 public:
  struct Options {
    /// Snapshot period.  Default 1 s; clamped to >= 10 ms.
    std::chrono::milliseconds period{1000};
    /// Ring capacity in samples.  300 x 1 s ~= 5 minutes of retention.
    std::size_t capacity = 300;
  };

  TelemetrySampler() = default;
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Starts the background thread (first caller's options win while the
  /// sampler runs; the ring is resized only when idle).  Refcounted:
  /// every start() must be matched by one stop().
  void start(const Options& options);
  void start() { start(Options()); }
  void stop();
  bool running() const;

  /// Takes one snapshot into the ring right now (also what the thread
  /// calls each period).  Usable without start() for deterministic
  /// tests.
  void sample_now();

  /// Oldest-first copy of the retained samples; `last_n` == 0 means all.
  std::vector<TelemetrySample> history(std::size_t last_n = 0) const;

  /// The /history JSON document: time axis plus per-series value and
  /// rate arrays computed from the ring (see docs/observability.md for
  /// the schema).  `last_n` == 0 means the whole ring.
  std::string history_json(std::size_t last_n = 0) const;

  std::size_t capacity() const;
  std::chrono::milliseconds period() const;
  /// Samples taken since construction (>= ring size; the ring forgets,
  /// this does not).
  std::uint64_t total_samples() const;

 private:
  void thread_main();
  void push_sample_locked(TelemetrySample&& sample);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Options options_{};
  int starts_ = 0;
  bool thread_running_ = false;
  std::thread thread_;
  /// Ring storage: ring_[(head_ + i) % size] is the i-th oldest sample
  /// once full; before that the first `count_` slots are in order.
  std::vector<TelemetrySample> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
};

/// The process-wide sampler the server lifecycle starts and the
/// exposition endpoints read.  Immortal, like metrics().
TelemetrySampler& sampler();

}  // namespace adr::obs
