#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace adr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace adr::obs
