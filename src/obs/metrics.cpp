#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace adr::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

void atomic_add_double(std::atomic<std::uint64_t>& bits, double d) noexcept {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  for (;;) {
    double cur;
    std::memcpy(&cur, &old, sizeof(cur));
    const double next = cur + d;
    std::uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (bits.compare_exchange_weak(old, next_bits, std::memory_order_relaxed)) {
      return;
    }
  }
}

double atomic_load_double(const std::atomic<std::uint64_t>& bits) noexcept {
  const std::uint64_t b = bits.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace detail

// ---------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) s.counts[i].store(0);
  }
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound >= v; past the last bound -> overflow.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(s.sum_bits, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += s.counts[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += detail::atomic_load_double(s.sum_bits);
  }
  // Shard reads are not atomic as a set; make the total consistent with
  // the buckets we actually saw.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  snap.count = bucket_total;
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i == bounds.size()) return bounds.back();  // overflow bucket
    const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double upper = bounds[i];
    const double frac =
        std::clamp((rank - before) / static_cast<double>(counts[i]), 0.0, 1.0);
    return lower + frac * (upper - lower);
  }
  return bounds.back();
}

bool HistogramSnapshot::quantile_in_overflow(double q) const {
  if (count == 0 || overflow() == 0) return false;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  // Finite buckets hold count - overflow observations; a rank beyond
  // them resolves in the overflow bucket.
  return rank > static_cast<double>(count - overflow());
}

std::vector<double> default_latency_buckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

// ----------------------------------------------------------- Snapshot

namespace {

template <typename Vec>
auto find_named(const Vec& vec, const std::string& name)
    -> decltype(&vec.front().second) {
  for (const auto& [n, v] : vec) {
    if (n == name) return &v;
  }
  return nullptr;
}

}  // namespace

const std::uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  return find_named(counters, name);
}

const std::int64_t* MetricsSnapshot::gauge(const std::string& name) const {
  return find_named(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  return find_named(histograms, name);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(counters[i].first) << "\":" << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(gauges[i].first) << "\":" << gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i) os << ',';
    const HistogramSnapshot& h = histograms[i].second;
    os << '"' << json_escape(histograms[i].first) << "\":{"
       << "\"count\":" << h.count << ",\"overflow\":" << h.overflow()
       << ",\"sum\":";
    json_number(os, h.sum);
    os << ",\"mean\":";
    json_number(os, h.mean());
    os << ",\"p50\":";
    json_number(os, h.p50());
    os << ",\"p95\":";
    json_number(os, h.p95());
    os << ",\"p99\":";
    json_number(os, h.p99());
    os << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) os << ',';
      os << "{\"le\":";
      if (b < h.bounds.size()) {
        json_number(os, h.bounds[b]);
      } else {
        os << "\"inf\"";
      }
      os << ",\"count\":" << h.counts[b] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

// ----------------------------------------------------------- Registry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? default_latency_buckets() : std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

MetricsRegistry& metrics() {
  // Immortal: gauges are updated from destructors of long-lived objects
  // (pools, caches) whose teardown order vs. statics is unknowable.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace adr::obs
