// Query-lifecycle tracer: bounded ring of serving-side spans,
// exportable as Chrome trace_event JSON (open in Perfetto / about:tracing).
//
// The execution engine already records per-node PhaseSpans when asked
// (ExecStats::trace); this extends that timeline upward through the
// serving stack.  One query submitted through the scheduler produces:
//
//   queued   - enqueue() accepted the query .. a worker dispatched it
//   planned  - plan_query() duration inside Repository::submit
//   execute  - backend execution duration
//   <phase>  - the engine's per-node, per-tile phase intervals
//              (Initialization / Local Reduction / ...), re-based onto
//              the tracer clock
//   reply    - result frame encode + socket write (server path)
//
// Recording is mutex-protected but only a struct copy; the tracer is
// disabled by default and costs one relaxed atomic load per check.
// When the ring is full the oldest events are overwritten (dropped()
// counts them), so a long-lived server can leave tracing on and export
// "the last N spans" at any time.
//
// tracer() is process-wide and immortal, like obs::metrics().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace adr::obs {

/// One completed span on the tracer clock (µs since enable()).
/// `name`/`cat` must point at static storage (they are literals or
/// phase_name() strings) — events are POD so the ring stays allocation-free.
struct TraceEvent {
  const char* name = "";
  const char* cat = "serving";
  /// Scheduler ticket (0 when submitted outside the scheduler).
  std::uint64_t query = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  /// Chrome "thread": serving spans use the query id (one row per
  /// query), phase spans use the node id.
  std::uint32_t tid = 0;
  /// Tile index for phase spans, -1 otherwise.
  std::int32_t tile = -1;
};

class QueryTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Starts (or restarts) tracing: clears the ring, re-bases the clock.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since enable() (0 when disabled).
  std::uint64_t now_us() const;

  /// Appends when enabled; overwrites the oldest event once full.
  void record(const TraceEvent& event);

  /// Events currently held, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  /// Events overwritten since enable().
  std::uint64_t dropped() const;
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array of complete "X"
  /// events; pid 1 = serving, pid 2 = executor nodes).  Loadable in
  /// Perfetto (ui.perfetto.dev) or chrome://tracing.
  void write_chrome_json(std::ostream& os) const;
  std::string chrome_json() const;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t next_ = 0;          // ring insertion point once saturated
  std::uint64_t recorded_ = 0;    // total record() calls since enable()
  std::chrono::steady_clock::time_point epoch_{};
};

/// The process-wide tracer the serving stack records into.
QueryTracer& tracer();

/// Thread-local trace context: the scheduler sets the active ticket
/// before Repository::submit so spans recorded inside it attach to the
/// right query.  0 = no active query.
void set_trace_query(std::uint64_t query_id);
std::uint64_t trace_query();

}  // namespace adr::obs
