#include "obs/exposition.hpp"

#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "obs/sampler.hpp"

namespace adr::obs {

namespace {

void prom_number(std::ostream& os, double v) {
  // Prometheus accepts the same spellings JSON does for finite values;
  // json_number also normalizes NaN/inf, which never appear in practice.
  json_number(os, v);
}

/// Collects the union of series names across every sample: a series
/// registered mid-flight (first query after a quiet start) still gets a
/// full-length array, zero-padded before its first appearance.
template <typename Member>
std::vector<std::string> series_names(const std::vector<TelemetrySample>& samples,
                                      Member member) {
  std::map<std::string, bool> names;
  for (const TelemetrySample& s : samples) {
    for (const auto& [name, v] : s.snapshot.*member) names[name] = true;
  }
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const auto& [name, _] : names) out.push_back(name);
  return out;
}

double interval_seconds(const TelemetrySample& prev, const TelemetrySample& cur) {
  if (cur.mono_ms <= prev.mono_ms) return 0.0;
  return static_cast<double>(cur.mono_ms - prev.mono_ms) / 1000.0;
}

/// Windowed histogram: the per-interval bucket-count deltas as a
/// snapshot of their own, so HistogramSnapshot's quantile math applies
/// to "what happened in this window" instead of since-boot totals.
HistogramSnapshot window_delta(const HistogramSnapshot* prev,
                               const HistogramSnapshot& cur) {
  HistogramSnapshot d;
  d.bounds = cur.bounds;
  d.counts.assign(cur.counts.size(), 0);
  for (std::size_t i = 0; i < cur.counts.size(); ++i) {
    const std::uint64_t p =
        (prev != nullptr && i < prev->counts.size()) ? prev->counts[i] : 0;
    d.counts[i] = counter_delta(p, cur.counts[i]);
  }
  d.count = 0;
  for (const std::uint64_t c : d.counts) d.count += c;
  d.sum = cur.sum - (prev != nullptr ? prev->sum : 0.0);
  return d;
}

}  // namespace

std::string prometheus_name(const std::string& series) {
  std::string out = "adr_";
  out.reserve(series.size() + 4);
  for (const char c : series) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n" << p << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      os << p << "_bucket{le=\"";
      if (b < h.bounds.size()) {
        prom_number(os, h.bounds[b]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << p << "_sum ";
    prom_number(os, h.sum);
    os << '\n' << p << "_count " << h.count << '\n';
  }
  return os.str();
}

std::uint64_t counter_delta(std::uint64_t prev, std::uint64_t cur) {
  return cur >= prev ? cur - prev : cur;
}

double counter_rate(std::uint64_t prev, std::uint64_t cur, double dt_seconds) {
  if (dt_seconds <= 0.0) return 0.0;
  return static_cast<double>(counter_delta(prev, cur)) / dt_seconds;
}

std::optional<double> windowed_histogram_mean(
    const std::vector<TelemetrySample>& samples, const std::string& series) {
  if (samples.size() < 2) return std::nullopt;
  const HistogramSnapshot* first = samples.front().snapshot.histogram(series);
  const HistogramSnapshot* last = samples.back().snapshot.histogram(series);
  if (first == nullptr || last == nullptr) return std::nullopt;
  // A shrinking count or sum means the registry was reset mid-window;
  // the deltas would be garbage, so report "no windowed estimate".
  if (last->count < first->count || last->sum < first->sum) return std::nullopt;
  const std::uint64_t count = last->count - first->count;
  if (count == 0) return std::nullopt;
  return (last->sum - first->sum) / static_cast<double>(count);
}

std::string history_to_json(const std::vector<TelemetrySample>& samples,
                            const HistoryMeta& meta) {
  std::ostringstream os;
  os << "{\"period_ms\":" << meta.period_ms << ",\"samples\":" << samples.size()
     << ",\"capacity\":" << meta.capacity
     << ",\"total_samples\":" << meta.total_samples << ",\"t_ms\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i) os << ',';
    os << samples[i].wall_ms;
  }
  os << "],\"counters\":{";
  {
    const auto names = series_names(samples, &MetricsSnapshot::counters);
    bool first_series = true;
    for (const std::string& name : names) {
      if (!first_series) os << ',';
      first_series = false;
      std::uint64_t last = 0;
      os << '"' << json_escape(name) << "\":{\"values\":[";
      std::vector<std::uint64_t> values(samples.size(), 0);
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (const std::uint64_t* v = samples[i].snapshot.counter(name)) {
          values[i] = *v;
        }
        if (i) os << ',';
        os << values[i];
        last = values[i];
      }
      os << "],\"rates\":[";
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i) os << ',';
        if (i == 0) {
          os << 0;
        } else {
          prom_number(os, counter_rate(values[i - 1], values[i],
                                       interval_seconds(samples[i - 1], samples[i])));
        }
      }
      os << "],\"last\":" << last << '}';
    }
  }
  os << "},\"gauges\":{";
  {
    const auto names = series_names(samples, &MetricsSnapshot::gauges);
    bool first_series = true;
    for (const std::string& name : names) {
      if (!first_series) os << ',';
      first_series = false;
      std::int64_t last = 0;
      os << '"' << json_escape(name) << "\":{\"values\":[";
      for (std::size_t i = 0; i < samples.size(); ++i) {
        std::int64_t v = 0;
        if (const std::int64_t* g = samples[i].snapshot.gauge(name)) v = *g;
        if (i) os << ',';
        os << v;
        last = v;
      }
      os << "],\"last\":" << last << '}';
    }
  }
  os << "},\"histograms\":{";
  {
    const auto names = series_names(samples, &MetricsSnapshot::histograms);
    bool first_series = true;
    for (const std::string& name : names) {
      if (!first_series) os << ',';
      first_series = false;
      const HistogramSnapshot* latest = nullptr;
      for (auto it = samples.rbegin(); it != samples.rend() && latest == nullptr;
           ++it) {
        latest = it->snapshot.histogram(name);
      }
      // Windowed per-interval deltas for rates and quantile series.
      std::vector<double> rates(samples.size(), 0.0);
      std::vector<double> p50s(samples.size(), 0.0);
      std::vector<double> p99s(samples.size(), 0.0);
      for (std::size_t i = 1; i < samples.size(); ++i) {
        const HistogramSnapshot* cur = samples[i].snapshot.histogram(name);
        if (cur == nullptr) continue;
        const HistogramSnapshot* prev = samples[i - 1].snapshot.histogram(name);
        const HistogramSnapshot d = window_delta(prev, *cur);
        const double dt = interval_seconds(samples[i - 1], samples[i]);
        rates[i] = dt > 0.0 ? static_cast<double>(d.count) / dt : 0.0;
        p50s[i] = d.p50();
        p99s[i] = d.p99();
      }
      os << '"' << json_escape(name) << "\":{\"count\":"
         << (latest != nullptr ? latest->count : 0)
         << ",\"overflow\":" << (latest != nullptr ? latest->overflow() : 0)
         << ",\"p50\":";
      json_number(os, latest != nullptr ? latest->p50() : 0.0);
      os << ",\"p99\":";
      json_number(os, latest != nullptr ? latest->p99() : 0.0);
      os << ",\"rates\":[";
      for (std::size_t i = 0; i < rates.size(); ++i) {
        if (i) os << ',';
        json_number(os, rates[i]);
      }
      os << "],\"p50s\":[";
      for (std::size_t i = 0; i < p50s.size(); ++i) {
        if (i) os << ',';
        json_number(os, p50s[i]);
      }
      os << "],\"p99s\":[";
      for (std::size_t i = 0; i < p99s.size(); ++i) {
        if (i) os << ',';
        json_number(os, p99s[i]);
      }
      os << "]}";
    }
  }
  os << "}}";
  return os.str();
}

}  // namespace adr::obs
