#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adr::sim {
namespace {

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.schedule(100, [&]() { seen.push_back(sim.now()); });
  sim.schedule(50, [&]() { seen.push_back(sim.now()); });
  const SimTime end = sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(end, 100);
}

TEST(Simulation, EventsScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) sim.schedule(10, chain);
  };
  sim.schedule(10, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulation, ZeroDelayRunsAtCurrentTime) {
  Simulation sim;
  SimTime at = -1;
  sim.schedule(25, [&]() { sim.schedule(0, [&]() { at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(at, 25);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&]() { ++fired; });
  sim.schedule(20, [&]() { ++fired; });
  sim.schedule(30, [&]() { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, StepExecutesExactlyN) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule(i + 1, [&]() { ++fired; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.step(10), 3u);
  EXPECT_EQ(fired, 5);
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, []() {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulation, ScheduleAtAbsoluteTime) {
  Simulation sim;
  SimTime at = -1;
  sim.schedule(10, [&]() { sim.schedule_at(99, [&]() { at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(at, 99);
}

}  // namespace
}  // namespace adr::sim
