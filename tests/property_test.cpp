// Property-based tests: invariants that must hold over randomized
// scenarios (random geometry, ownership, memory budgets, strategies).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "common/random.hpp"
#include "core/exec/query_executor.hpp"
#include "core/planner/mapping.hpp"
#include "core/planner/strategy.hpp"
#include "core/planner/tiling.hpp"
#include "runtime/thread_executor.hpp"
#include "storage/loader.hpp"

namespace adr {
namespace {

/// A random scenario: clustered input MBRs over a random output grid.
struct RandomScenario {
  Rect domain = Rect::cube(2, 0.0, 1.0);
  std::vector<Rect> input_mbrs;
  std::vector<Rect> output_mbrs;
  ChunkMapping mapping;
  int nodes;
  std::uint64_t memory;

  static RandomScenario make(std::uint64_t seed) {
    Rng rng(seed);
    RandomScenario s;
    s.nodes = static_cast<int>(rng.uniform_int(1, 6));
    const int out_n = static_cast<int>(rng.uniform_int(2, 5));
    for (int iy = 0; iy < out_n; ++iy) {
      for (int ix = 0; ix < out_n; ++ix) {
        const double d = 1.0 / out_n;
        s.output_mbrs.emplace_back(Point{ix * d + 1e-9, iy * d + 1e-9},
                                   Point{(ix + 1) * d - 1e-9, (iy + 1) * d - 1e-9});
      }
    }
    const int inputs = static_cast<int>(rng.uniform_int(20, 120));
    for (int i = 0; i < inputs; ++i) {
      const double cx = rng.uniform(0.0, 1.0);
      const double cy = rng.uniform(0.0, 1.0);
      const double w = rng.uniform(0.01, 0.4);
      const double h = rng.uniform(0.01, 0.4);
      Point lo{std::max(0.0, cx - w / 2), std::max(0.0, cy - h / 2)};
      Point hi{std::min(1.0, cx + w / 2), std::min(1.0, cy + h / 2)};
      s.input_mbrs.emplace_back(lo, hi);
    }
    s.mapping = build_mapping(s.input_mbrs, s.output_mbrs, nullptr);
    // Memory: between one accumulator chunk (72 B under the 3x layout)
    // and the whole set.
    s.memory = static_cast<std::uint64_t>(
        rng.uniform_int(72, 72 * static_cast<std::int64_t>(s.output_mbrs.size())));
    return s;
  }

  PlannerInput planner_input(std::uint64_t seed) const {
    Rng rng(mix_seed(seed, 17));
    PlannerInput in;
    in.num_nodes = nodes;
    in.memory_per_node = memory;
    in.mapping = &mapping;
    for (std::size_t i = 0; i < input_mbrs.size(); ++i) {
      in.owner_of_input.push_back(static_cast<int>(rng.uniform_int(0, nodes - 1)));
      in.input_bytes.push_back(static_cast<std::uint64_t>(rng.uniform_int(100, 2000)));
    }
    for (std::size_t o = 0; o < output_mbrs.size(); ++o) {
      in.owner_of_output.push_back(static_cast<int>(rng.uniform_int(0, nodes - 1)));
      in.output_bytes.push_back(24);
      in.accum_bytes.push_back(72);
    }
    in.output_order = tiling_order(output_mbrs, domain, TilingOrder::kHilbert);
    return in;
  }
};

class PlanPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanPropertyTest, AllStrategiesProduceValidPlans) {
  const RandomScenario s = RandomScenario::make(GetParam());
  const PlannerInput in = s.planner_input(GetParam());
  for (const QueryPlan& plan :
       {plan_fra(in), plan_sra(in), plan_da(in), plan_hybrid(in, 0.3)}) {
    EXPECT_TRUE(validate_plan(plan, in))
        << to_string(plan.strategy) << " seed=" << GetParam();
  }
}

TEST_P(PlanPropertyTest, GhostSubsetChain) {
  // ghosts(DA) ⊆ ghosts(hybrid) ⊆ ghosts(SRA) ⊆ ghosts(FRA) per chunk.
  const RandomScenario s = RandomScenario::make(GetParam());
  const PlannerInput in = s.planner_input(GetParam());
  const QueryPlan fra = plan_fra(in);
  const QueryPlan sra = plan_sra(in);
  const QueryPlan hybrid = plan_hybrid(in, 0.3);
  const QueryPlan da = plan_da(in);
  for (std::size_t o = 0; o < s.output_mbrs.size(); ++o) {
    const std::set<int> g_fra(fra.ghost_hosts[o].begin(), fra.ghost_hosts[o].end());
    const std::set<int> g_sra(sra.ghost_hosts[o].begin(), sra.ghost_hosts[o].end());
    const std::set<int> g_hyb(hybrid.ghost_hosts[o].begin(), hybrid.ghost_hosts[o].end());
    EXPECT_TRUE(da.ghost_hosts[o].empty());
    EXPECT_TRUE(std::includes(g_sra.begin(), g_sra.end(), g_hyb.begin(), g_hyb.end()));
    EXPECT_TRUE(std::includes(g_fra.begin(), g_fra.end(), g_sra.begin(), g_sra.end()));
  }
}

TEST_P(PlanPropertyTest, ReadsArePlacedOnOwners) {
  const RandomScenario s = RandomScenario::make(GetParam());
  const PlannerInput in = s.planner_input(GetParam());
  for (const QueryPlan& plan : {plan_fra(in), plan_sra(in), plan_da(in)}) {
    for (int n = 0; n < plan.num_nodes; ++n) {
      for (const auto& tile : plan.node_tiles[static_cast<size_t>(n)]) {
        for (std::uint32_t i : tile.reads) EXPECT_EQ(in.owner_of_input[i], n);
      }
    }
  }
}

TEST_P(PlanPropertyTest, TileCountBoundedByOutputs) {
  const RandomScenario s = RandomScenario::make(GetParam());
  const PlannerInput in = s.planner_input(GetParam());
  for (const QueryPlan& plan : {plan_fra(in), plan_sra(in), plan_da(in)}) {
    EXPECT_GE(plan.num_tiles, 1);
    EXPECT_LE(plan.num_tiles, static_cast<int>(s.output_mbrs.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------------------
// End-to-end property: on randomized scenarios with real payloads, all
// four strategies agree with the sequential reference.

struct Scm {
  std::uint64_t sum, count, max;
  bool operator==(const Scm&) const = default;
};

class EndToEndPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndPropertyTest, StrategiesAgreeWithReference) {
  const std::uint64_t seed = GetParam();
  const RandomScenario s = RandomScenario::make(seed);

  // Reference.
  std::map<std::uint32_t, Scm> expected;
  for (std::uint32_t o = 0; o < s.output_mbrs.size(); ++o) expected[o] = {0, 0, 0};
  std::vector<std::vector<std::uint64_t>> values(s.input_mbrs.size());
  Rng rng(mix_seed(seed, 3));
  for (std::uint32_t i = 0; i < s.input_mbrs.size(); ++i) {
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int j = 0; j < n; ++j) {
      values[i].push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 999)));
    }
    for (std::uint32_t o : s.mapping.in_to_out[i]) {
      for (std::uint64_t v : values[i]) {
        expected[o].sum += v;
        expected[o].count += 1;
        expected[o].max = std::max(expected[o].max, v);
      }
    }
  }

  for (StrategyKind strategy : {StrategyKind::kFRA, StrategyKind::kSRA,
                                StrategyKind::kDA, StrategyKind::kHybrid}) {
    SCOPED_TRACE(to_string(strategy));
    MemoryChunkStore store(s.nodes);
    std::vector<Chunk> inputs;
    for (std::uint32_t i = 0; i < s.input_mbrs.size(); ++i) {
      ChunkMeta meta;
      meta.mbr = s.input_mbrs[i];
      std::vector<std::byte> payload(values[i].size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), values[i].data(), payload.size());
      inputs.emplace_back(meta, std::move(payload));
    }
    std::vector<Chunk> outputs;
    for (const Rect& mbr : s.output_mbrs) {
      ChunkMeta meta;
      meta.mbr = mbr;
      meta.bytes = 24;
      outputs.emplace_back(meta);
    }
    LoadOptions options;
    options.decluster.num_disks = s.nodes;
    Dataset input =
        load_dataset(0, "in", s.domain, std::move(inputs), store, options);
    Dataset output =
        load_dataset(1, "out", s.domain, std::move(outputs), store, options);

    SumCountMaxOp op;
    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = s.domain;
    req.op = &op;
    req.num_nodes = s.nodes;
    req.memory_per_node = s.memory;
    req.strategy = strategy;
    const PlannedQuery pq = plan_query(req);

    ThreadExecutor exec(s.nodes, 1, &store);
    execute_query(exec, pq, input, output, &op, ComputeCosts{}, 1);

    for (std::uint32_t o = 0; o < s.output_mbrs.size(); ++o) {
      const ChunkMeta& meta = output.chunk(o);
      auto chunk = store.get(meta.disk, meta.id);
      ASSERT_TRUE(chunk.has_value());
      Scm got{};
      if (chunk->payload().size() >= sizeof(Scm)) {
        std::memcpy(&got, chunk->payload().data(), sizeof(got));
      }
      EXPECT_EQ(got, expected[o]) << to_string(strategy) << " output " << o
                                  << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace adr
