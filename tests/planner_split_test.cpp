// Direct unit tests for the planner's two-phase split: chunk selection
// (select_query_chunks) and planning over an explicit selection
// (plan_query(request, selection)).  The split exists so callers — the
// marginal cache's consult step, and anything else that reduces a
// selection before planning — can treat phase one's output as a value;
// these tests pin the contract both phases enforce, including the
// empty-selection and single-chunk-residual edges the reduction path
// produces.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/planner/planner.hpp"
#include "storage/loader.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using testing::make_grid_scenario;

/// Loaded datasets over the 3x3-output / 6x6-input grid scenario, plus
/// a ready PlanRequest — the same shape robustness_test.cpp executes,
/// here exercised at the planner API layer only.
struct SplitFixture {
  testing::GridScenario scenario = make_grid_scenario(3, 2);
  MemoryChunkStore store{3};
  Dataset input;
  Dataset output;
  SumCountMaxOp op;
  static constexpr int kNodes = 3;

  SplitFixture() {
    std::vector<Chunk> inputs;
    for (std::uint32_t i = 0; i < scenario.input_mbrs.size(); ++i) {
      ChunkMeta meta;
      meta.mbr = scenario.input_mbrs[i];
      std::vector<std::uint64_t> vals = {i + 1};
      std::vector<std::byte> payload(sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      inputs.emplace_back(meta, std::move(payload));
    }
    std::vector<Chunk> outputs;
    for (const Rect& mbr : scenario.output_mbrs) {
      ChunkMeta meta;
      meta.mbr = mbr;
      meta.bytes = 24;
      outputs.emplace_back(meta);
    }
    LoadOptions options;
    options.decluster.num_disks = kNodes;
    input = load_dataset(0, "in", scenario.domain, std::move(inputs), store, options);
    output = load_dataset(1, "out", scenario.domain, std::move(outputs), store,
                          options);
  }

  PlanRequest request(StrategyKind strategy = StrategyKind::kFRA) {
    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = scenario.domain;
    req.op = &op;
    req.num_nodes = kNodes;
    req.memory_per_node = 100 * 24;
    req.strategy = strategy;
    return req;
  }
};

TEST(PlannerSplit, FullDomainSelectionCoversEverything) {
  SplitFixture fx;
  const QuerySelection sel = select_query_chunks(fx.request());
  EXPECT_EQ(sel.selected_inputs.size(), fx.scenario.input_mbrs.size());
  EXPECT_EQ(sel.selected_outputs.size(), fx.scenario.output_mbrs.size());
  EXPECT_EQ(sel.input_dataset_of.size(), sel.selected_inputs.size());
  // Single-input query: every position is ordinal 0.
  for (const std::uint16_t ord : sel.input_dataset_of) EXPECT_EQ(ord, 0);
  // Mapping is sized by the selection and every output has contributors
  // (a 2x2 block of input cells nests inside each output cell).
  ASSERT_EQ(sel.mapping.num_inputs(), sel.selected_inputs.size());
  ASSERT_EQ(sel.mapping.num_outputs(), sel.selected_outputs.size());
  for (const auto& ins : sel.mapping.out_to_in) EXPECT_EQ(ins.size(), 4u);
}

TEST(PlannerSplit, SubRangeSelectsOnlyIntersectingChunks) {
  SplitFixture fx;
  PlanRequest req = fx.request();
  // The first output cell's MBR: selects exactly that output and the
  // 2x2 input block inside it.
  req.range = fx.scenario.output_mbrs[0];
  const QuerySelection sel = select_query_chunks(req);
  EXPECT_EQ(sel.selected_outputs.size(), 1u);
  EXPECT_EQ(sel.selected_inputs.size(), 4u);
}

TEST(PlannerSplit, SelectionPhaseValidatesRequest) {
  SplitFixture fx;
  PlanRequest req = fx.request();
  req.input = nullptr;
  EXPECT_THROW(select_query_chunks(req), std::invalid_argument);

  req = fx.request();
  req.range = Rect(Point{1.0, 1.0}, Point{0.0, 0.0});  // inverted: invalid
  EXPECT_THROW(select_query_chunks(req), std::invalid_argument);

  // A valid range that misses the whole output domain selects nothing:
  // the empty-selection edge surfaces in phase one.
  req = fx.request();
  req.range = Rect(Point{5.0, 5.0}, Point{6.0, 6.0});
  EXPECT_THROW(select_query_chunks(req), std::invalid_argument);
}

TEST(PlannerSplit, TwoStepPlanMatchesOneStep) {
  for (StrategyKind strategy :
       {StrategyKind::kFRA, StrategyKind::kSRA, StrategyKind::kDA}) {
    SplitFixture fx;
    const PlanRequest req = fx.request(strategy);
    const PlannedQuery one = plan_query(req);
    const PlannedQuery two = plan_query(req, select_query_chunks(req));
    EXPECT_EQ(two.chosen, one.chosen);
    EXPECT_EQ(two.plan.num_tiles, one.plan.num_tiles);
    EXPECT_EQ(two.selected_inputs, one.selected_inputs);
    EXPECT_EQ(two.selected_outputs, one.selected_outputs);
    EXPECT_EQ(two.input_bytes, one.input_bytes);
    EXPECT_EQ(two.accum_bytes, one.accum_bytes);
  }
}

/// The marginal cache's residual shape: every output chunk but one was
/// served from cached partials, so the planner sees a selection reduced
/// to a single output chunk and only the inputs it needs.
TEST(PlannerSplit, SingleChunkResidualSelectionPlans) {
  SplitFixture fx;
  const PlanRequest req = fx.request();
  const QuerySelection full = select_query_chunks(req);
  ASSERT_GT(full.selected_outputs.size(), 1u);

  QuerySelection residual;
  const std::uint32_t kept = 0;  // keep output position 0 only
  residual.selected_outputs = {full.selected_outputs[kept]};
  std::vector<std::uint32_t> kept_inputs = full.mapping.out_to_in[kept];
  for (const std::uint32_t pos : kept_inputs) {
    residual.selected_inputs.push_back(full.selected_inputs[pos]);
    residual.input_dataset_of.push_back(full.input_dataset_of[pos]);
  }
  residual.mapping.out_to_in = {{}};
  for (std::uint32_t i = 0; i < residual.selected_inputs.size(); ++i) {
    residual.mapping.in_to_out.push_back({0});
    residual.mapping.out_to_in[0].push_back(i);
  }

  const PlannedQuery planned = plan_query(req, residual);
  EXPECT_EQ(planned.selected_outputs.size(), 1u);
  EXPECT_EQ(planned.selected_inputs.size(), kept_inputs.size());
  EXPECT_GE(planned.plan.num_tiles, 1);
  // Every tile's work references only the residual's positions.
  EXPECT_EQ(planned.mapping.num_outputs(), 1u);
}

TEST(PlannerSplit, PlanPhaseValidatesSelectionAndMachine) {
  SplitFixture fx;
  const PlanRequest req = fx.request();
  const QuerySelection sel = select_query_chunks(req);

  // Empty selection: the reduction path must never hand this to phase
  // two (a fully-cached query skips planning entirely).
  EXPECT_THROW(plan_query(req, QuerySelection{}), std::invalid_argument);

  // Inconsistent selection: mapping sized for a different input count.
  QuerySelection broken = sel;
  broken.selected_inputs.pop_back();
  broken.input_dataset_of.pop_back();
  EXPECT_THROW(plan_query(req, broken), std::invalid_argument);

  // Bad machine description.
  PlanRequest bad = fx.request();
  bad.num_nodes = 0;
  EXPECT_THROW(plan_query(bad, sel), std::invalid_argument);
  bad = fx.request();
  bad.memory_per_node = 0;
  EXPECT_THROW(plan_query(bad, sel), std::invalid_argument);
}

}  // namespace
}  // namespace adr
