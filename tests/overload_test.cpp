// Overload property test (docs/scheduling.md): drive the submission
// service well past saturation with deadline-carrying queries and check
// the Qos contract holds:
//
//   * every outcome is typed — ok or kDeadlineExceeded, never silent;
//   * under sustained overload some work is shed (the queue cannot grow
//     a latency tail without bound);
//   * admitted queries stay byte-identical to an unloaded run — load
//     shedding must never corrupt the work it admits;
//   * admitted completion latency stays bounded by the deadline budget
//     plus dispatch-time slack (a query may be picked up just before
//     its deadline and still run to completion).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/frontend.hpp"
#include "core/qos.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

RepositoryConfig thread_config(int nodes) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = nodes;
  cfg.memory_per_node = 16 << 20;
  return cfg;
}

std::vector<Chunk> grid_inputs(int n_side, int values_per_chunk) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  std::uint64_t idx = 0;
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, n_side, ix, iy);
      std::vector<std::uint64_t> vals(static_cast<size_t>(values_per_chunk));
      for (auto& v : vals) v = ++idx;
      std::vector<std::byte> payload(vals.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

std::vector<Chunk> grid_outputs(int n_side) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, n_side, ix, iy);
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

TEST(Overload, ShedsTypedKeepsAdmittedCorrectAndBounded) {
  Repository repo(thread_config(2));
  // Heavy enough per query (64 chunks x 16K values) that execution time
  // is measurable: the offered load below is sized in units of it.
  const auto in =
      repo.create_dataset("in", Rect::cube(2, 0.0, 1.0), grid_inputs(8, 16384));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0), grid_outputs(2));

  Query q;
  q.input_dataset = in;
  q.output_dataset = out;
  q.range = Rect::cube(2, 0.0, 1.0);
  q.aggregation = "sum-count-max";
  q.delivery = OutputDelivery::kReturnToClient;

  // Unloaded reference answer, and a capacity estimate to size the
  // deadline budget in units of this machine's actual speed.
  const QueryResult reference = repo.submit(q);
  ASSERT_EQ(reference.outputs.size(), 4u);
  const auto cal0 = Clock::now();
  constexpr int kCalibrate = 8;
  for (int i = 0; i < kCalibrate; ++i) repo.submit(q);
  const auto mean_exec = (Clock::now() - cal0) / kCalibrate;
  const auto budget = std::max<Clock::duration>(4 * mean_exec, 50ms);
  const double mean_exec_ms =
      std::chrono::duration<double, std::milli>(mean_exec).count();
  const double budget_ms_sizing =
      std::chrono::duration<double, std::milli>(budget).count();

  // Size the backlog in units of this machine's speed: enough queued
  // work that draining it through two workers takes ~8x the deadline
  // budget, so the tail provably cannot make it.  Clamped so the test
  // stays fast on slow machines and meaningful on fast ones.
  constexpr int kClients = 4;
  const int per_client = std::clamp(
      static_cast<int>(2 * 8.0 * budget_ms_sizing /
                       std::max(mean_exec_ms, 1e-3) / kClients),
      50, 1000);

  QuerySubmissionService service(repo);

  std::mutex done_mutex;
  std::unordered_map<std::uint64_t, Clock::time_point> done_at;
  service.set_completion_callback([&](std::uint64_t ticket) {
    std::lock_guard<std::mutex> lk(done_mutex);
    done_at[ticket] = Clock::now();
  });
  service.start(2);

  // Far more deadline-equipped work than two workers can finish inside
  // the budget (blocking enqueue applies backpressure at max_pending,
  // which only adds to the queue-side wait the deadline must cover).
  std::mutex submitted_mutex;
  std::vector<std::pair<std::uint64_t, Clock::time_point>> submitted;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        ExecOptions options;
        options.qos = Qos::within(
            std::chrono::duration_cast<std::chrono::milliseconds>(budget));
        const auto t0 = Clock::now();
        const auto ticket =
            service.enqueue(q, {}, /*client=*/static_cast<std::uint64_t>(c + 1),
                            options);
        std::lock_guard<std::mutex> lk(submitted_mutex);
        submitted.emplace_back(ticket, t0);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.drain();
  service.stop();

  std::size_t admitted = 0, shed = 0;
  std::vector<double> admitted_ms;
  for (const auto& [ticket, t0] : submitted) {
    const auto outcome = service.take(ticket);
    if (outcome.ok()) {
      ++admitted;
      // Byte-identical to the unloaded run: shedding never corrupts the
      // work it admits.
      ASSERT_EQ(outcome.result.outputs.size(), reference.outputs.size());
      for (std::size_t o = 0; o < reference.outputs.size(); ++o) {
        EXPECT_EQ(outcome.result.outputs[o].payload(),
                  reference.outputs[o].payload());
      }
      const auto it = done_at.find(ticket);
      ASSERT_NE(it, done_at.end());
      admitted_ms.push_back(
          std::chrono::duration<double, std::milli>(it->second - t0).count());
    } else {
      // The only acceptable failure under overload is the typed
      // deadline shed — with a reason, never silent.
      ASSERT_EQ(outcome.status.code, StatusCode::kDeadlineExceeded)
          << outcome.status.to_string();
      EXPECT_FALSE(outcome.status.message.empty());
      ++shed;
    }
  }

  EXPECT_EQ(admitted + shed, static_cast<std::size_t>(kClients * per_client));
  // An 8x-budget backlog against two workers: most of the queue must
  // shed, and the earliest arrivals must get through.
  EXPECT_GT(shed, 0u);
  EXPECT_GT(admitted, 0u);

  // Admitted p99 is bounded: a query can be dispatched just before its
  // deadline and still execute, so the bound is budget + execution slack
  // — what can never appear is the unbounded FIFO queueing tail.
  ASSERT_FALSE(admitted_ms.empty());
  std::sort(admitted_ms.begin(), admitted_ms.end());
  const double p99 =
      admitted_ms[std::min(admitted_ms.size() - 1,
                           static_cast<std::size_t>(admitted_ms.size() * 0.99))];
  const double budget_ms =
      std::chrono::duration<double, std::milli>(budget).count();
  const double slack_ms = std::max(
      500.0, 10.0 * std::chrono::duration<double, std::milli>(mean_exec).count());
  EXPECT_LT(p99, budget_ms + slack_ms);
}

}  // namespace
}  // namespace adr
