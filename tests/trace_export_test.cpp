// Query-lifecycle tracer tests: ring semantics, concurrent recording
// (QueryTracer.* / TraceExport.* run under TSan in CI), the Chrome
// trace_event JSON golden shape, and an end-to-end run proving the
// serving stack emits queued/planned/execute/phase spans.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/frontend.hpp"
#include "json_check.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace adr::obs {
namespace {

TraceEvent make_event(const char* name, std::uint64_t query, std::uint64_t ts,
                      std::uint64_t dur, std::int32_t tile = -1) {
  TraceEvent e;
  e.name = name;
  e.query = query;
  e.ts_us = ts;
  e.dur_us = dur;
  e.tid = static_cast<std::uint32_t>(query);
  e.tile = tile;
  return e;
}

TEST(QueryTracer, DisabledRecordsNothing) {
  QueryTracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.now_us(), 0u);
  t.record(make_event("queued", 1, 0, 10));
  EXPECT_EQ(t.size(), 0u);
}

TEST(QueryTracer, RecordsAndReadsBackOldestFirst) {
  QueryTracer t;
  t.enable(16);
  t.record(make_event("queued", 1, 0, 5));
  t.record(make_event("planned", 1, 5, 2));
  t.record(make_event("execute", 1, 7, 100));
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_STREQ(evs[0].name, "queued");
  EXPECT_STREQ(evs[1].name, "planned");
  EXPECT_STREQ(evs[2].name, "execute");
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(QueryTracer, RingOverwritesOldestWhenFull) {
  QueryTracer t;
  t.enable(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    t.record(make_event("span", i, i * 10, 1));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Events 1 and 2 were overwritten; 3..6 remain, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].query, i + 3);
  }
}

TEST(QueryTracer, EnableRestartsClockAndClearsRing) {
  QueryTracer t;
  t.enable(8);
  t.record(make_event("old", 1, 0, 1));
  t.enable(8);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  const std::uint64_t a = t.now_us();
  const std::uint64_t b = t.now_us();
  EXPECT_LE(a, b);  // monotonic tracer clock
}

// TSan target: many threads record while another exports JSON.
TEST(QueryTracer, ConcurrentRecordAndExport) {
  QueryTracer t;
  t.enable(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&t, w]() {
      for (int i = 0; i < kPerThread; ++i) {
        t.record(make_event("span", static_cast<std::uint64_t>(w) + 1,
                            static_cast<std::uint64_t>(i), 1));
      }
    });
  }
  std::string last_json;
  for (int i = 0; i < 50; ++i) last_json = t.chrome_json();
  for (auto& th : writers) th.join();
  EXPECT_EQ(t.size(), 256u);
  EXPECT_EQ(t.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 256u);
  std::string err;
  EXPECT_TRUE(adr::testing::is_valid_json(t.chrome_json(), &err)) << err;
}

TEST(TraceExport, ChromeJsonGoldenShape) {
  QueryTracer t;
  t.enable(16);
  t.record(make_event("queued", 7, 100, 50));
  TraceEvent phase = make_event("Local Reduction", 7, 160, 30, /*tile=*/2);
  phase.cat = "phase";
  phase.tid = 1;  // node id
  t.record(phase);

  const std::string json = t.chrome_json();
  std::string err;
  ASSERT_TRUE(adr::testing::is_valid_json(json, &err)) << err;

  // Envelope + the two process_name metadata records.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":0,\"args\":{\"name\":\"adr serving\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
                      "\"tid\":0,\"args\":{\"name\":\"adr executor nodes\"}}"),
            std::string::npos);
  // Serving span: complete event on pid 1, tid = query id.
  EXPECT_NE(json.find("{\"name\":\"queued\",\"cat\":\"serving\",\"ph\":\"X\","
                      "\"ts\":100,\"dur\":50,\"pid\":1,\"tid\":7,"
                      "\"args\":{\"query\":7}}"),
            std::string::npos)
      << json;
  // Phase span: pid 2, tid = node id, args carry the tile.
  EXPECT_NE(json.find("{\"name\":\"Local Reduction\",\"cat\":\"phase\","
                      "\"ph\":\"X\",\"ts\":160,\"dur\":30,\"pid\":2,\"tid\":1,"
                      "\"args\":{\"query\":7,\"tile\":2}}"),
            std::string::npos)
      << json;
}

TEST(TraceExport, ThreadLocalTraceContext) {
  set_trace_query(42);
  EXPECT_EQ(trace_query(), 42u);
  std::uint64_t seen = 99;
  std::thread other([&seen]() { seen = trace_query(); });
  other.join();
  EXPECT_EQ(seen, 0u);  // context is per-thread
  set_trace_query(0);
}

// ---- end-to-end: the serving stack emits the full span ladder ----

RepositoryConfig thread_config(int nodes) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = nodes;
  cfg.memory_per_node = 1 << 20;
  return cfg;
}

std::vector<Chunk> grid_inputs(int n_side, int values_per_chunk) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  std::uint64_t idx = 0;
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = adr::testing::cell(domain, n_side, ix, iy);
      std::vector<std::uint64_t> vals(static_cast<size_t>(values_per_chunk));
      for (auto& v : vals) v = ++idx;
      std::vector<std::byte> payload(vals.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

std::vector<Chunk> grid_outputs(int n_side) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = adr::testing::cell(domain, n_side, ix, iy);
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

TEST(TraceExport, SchedulerRunEmitsLifecycleSpans) {
  Repository repo(thread_config(2));
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0), grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0), grid_outputs(2));

  tracer().enable(4096);
  {
    QuerySubmissionService svc(repo);
    svc.start(2);
    Query q;
    q.input_dataset = in;
    q.output_dataset = out;
    q.range = Rect::cube(2, 0.0, 1.0);
    q.aggregation = "sum-count-max";
    q.strategy = StrategyKind::kFRA;
    const std::uint64_t ticket = svc.enqueue(q, ComputeCosts{});
    const auto outcome = svc.take(ticket);
    ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
    svc.stop();

    const auto evs = tracer().events();
    std::set<std::string> names;
    bool phase_span_has_tile = false;
    for (const TraceEvent& e : evs) {
      if (e.query != ticket) continue;
      names.insert(e.name);
      if (std::strcmp(e.cat, "phase") == 0 && e.tile >= 0) {
        phase_span_has_tile = true;
      }
    }
    EXPECT_TRUE(names.count("queued")) << "missing queued span";
    EXPECT_TRUE(names.count("planned")) << "missing planned span";
    EXPECT_TRUE(names.count("execute")) << "missing execute span";
    EXPECT_TRUE(phase_span_has_tile) << "missing per-tile engine phase spans";

    std::string err;
    EXPECT_TRUE(adr::testing::is_valid_json(tracer().chrome_json(), &err)) << err;
  }
  tracer().disable();
  tracer().clear();
}

}  // namespace
}  // namespace adr::obs
