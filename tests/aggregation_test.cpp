#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace adr {
namespace {

Chunk chunk_of(std::vector<std::uint64_t> values) {
  std::vector<std::byte> payload(values.size() * sizeof(std::uint64_t));
  std::memcpy(payload.data(), values.data(), payload.size());
  ChunkMeta meta;
  meta.bytes = payload.size();
  return Chunk(meta, std::move(payload));
}

struct Scm {
  std::uint64_t sum, count, max;
};

Scm decode(const std::vector<std::byte>& accum) {
  Scm out{};
  std::memcpy(&out, accum.data(), sizeof(out));
  return out;
}

TEST(SumCountMaxOp, InitializeIsZero) {
  SumCountMaxOp op;
  auto accum = op.initialize(ChunkMeta{}, nullptr);
  const Scm s = decode(accum);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(SumCountMaxOp, AggregateAccumulates) {
  SumCountMaxOp op;
  auto accum = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({5, 10, 2}), ChunkMeta{}, accum);
  const Scm s = decode(accum);
  EXPECT_EQ(s.sum, 17u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max, 10u);
}

TEST(SumCountMaxOp, CombineMergesPartials) {
  SumCountMaxOp op;
  auto a = op.initialize(ChunkMeta{}, nullptr);
  auto b = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({1, 2}), ChunkMeta{}, a);
  op.aggregate(chunk_of({100}), ChunkMeta{}, b);
  op.combine(a, b);
  const Scm s = decode(a);
  EXPECT_EQ(s.sum, 103u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max, 100u);
}

TEST(SumCountMaxOp, CombineOrderIndependent) {
  // The associativity/commutativity contract the planner depends on.
  SumCountMaxOp op;
  std::vector<Chunk> chunks;
  chunks.push_back(chunk_of({3, 7}));
  chunks.push_back(chunk_of({11}));
  chunks.push_back(chunk_of({5, 5, 5}));

  // Path 1: aggregate all into one accumulator.
  auto direct = op.initialize(ChunkMeta{}, nullptr);
  for (const Chunk& c : chunks) op.aggregate(c, ChunkMeta{}, direct);

  // Path 2: partials combined in reverse order.
  std::vector<std::vector<std::byte>> partials;
  for (const Chunk& c : chunks) {
    auto p = op.initialize(ChunkMeta{}, nullptr);
    op.aggregate(c, ChunkMeta{}, p);
    partials.push_back(std::move(p));
  }
  auto merged = op.initialize(ChunkMeta{}, nullptr);
  for (auto it = partials.rbegin(); it != partials.rend(); ++it) op.combine(merged, *it);

  EXPECT_EQ(direct, merged);
}

TEST(SumCountMaxOp, OutputIsAccumulator) {
  SumCountMaxOp op;
  auto accum = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({9}), ChunkMeta{}, accum);
  EXPECT_EQ(op.output(ChunkMeta{}, accum), accum);
}

TEST(SumCountMaxOp, EmptyInputChunkIsNoop) {
  SumCountMaxOp op;
  auto accum = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(Chunk(ChunkMeta{}), ChunkMeta{}, accum);
  EXPECT_EQ(decode(accum).count, 0u);
}

TEST(SumCountMaxOp, LayoutMultiplier) {
  SumCountMaxOp op;
  EXPECT_DOUBLE_EQ(op.layout().size_multiplier, 3.0);
  EXPECT_FALSE(op.requires_existing_output());
}

TEST(CountOp, CountsItemsAcrossChunksAndCombines) {
  CountOp op;
  auto a = op.initialize(ChunkMeta{}, nullptr);
  auto b = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({1, 2, 3}), ChunkMeta{}, a);
  op.aggregate(chunk_of({4}), ChunkMeta{}, b);
  op.combine(a, b);
  EXPECT_EQ(*reinterpret_cast<const std::uint64_t*>(op.output(ChunkMeta{}, a).data()),
            4u);
}

TEST(HistogramOp, BucketsValuesExactly) {
  HistogramOp op(4, 0, 400);  // buckets of width 100
  EXPECT_EQ(op.bucket_of(0), 0);
  EXPECT_EQ(op.bucket_of(99), 0);
  EXPECT_EQ(op.bucket_of(100), 1);
  EXPECT_EQ(op.bucket_of(399), 3);
  EXPECT_EQ(op.bucket_of(5000), 3);  // clamps

  auto accum = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({0, 50, 150, 399, 999}), ChunkMeta{}, accum);
  const auto* counts = reinterpret_cast<const std::uint64_t*>(accum.data());
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(HistogramOp, CombineIsBucketwiseSum) {
  HistogramOp op(2, 0, 10);
  auto a = op.initialize(ChunkMeta{}, nullptr);
  auto b = op.initialize(ChunkMeta{}, nullptr);
  op.aggregate(chunk_of({1}), ChunkMeta{}, a);
  op.aggregate(chunk_of({9, 9}), ChunkMeta{}, b);
  op.combine(a, b);
  const auto* counts = reinterpret_cast<const std::uint64_t*>(a.data());
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(HistogramOp, LayoutScalesWithBuckets) {
  EXPECT_DOUBLE_EQ(HistogramOp(32, 0, 100).layout().size_multiplier, 32.0);
}

TEST(AggregationService, BuiltInRegistered) {
  AggregationService svc;
  EXPECT_NE(svc.find("sum-count-max"), nullptr);
  EXPECT_NE(svc.find("count"), nullptr);
  EXPECT_NE(svc.find("histogram"), nullptr);
  EXPECT_EQ(svc.find("nope"), nullptr);
  EXPECT_NE(svc.find_shared("sum-count-max"), nullptr);
}

TEST(AggregationService, CustomOpRegistration) {
  class NamedOp : public SumCountMaxOp {
   public:
    std::string name() const override { return "custom"; }
  };
  AggregationService svc;
  svc.register_op(std::make_shared<NamedOp>());
  EXPECT_NE(svc.find("custom"), nullptr);
  EXPECT_GE(svc.op_names().size(), 2u);
}

}  // namespace
}  // namespace adr
