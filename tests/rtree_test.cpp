#include "storage/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"

namespace adr {
namespace {

std::vector<Rect> random_rects(int n, int dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      const double a = rng.uniform(0.0, 100.0);
      lo[d] = a;
      hi[d] = a + rng.uniform(0.0, 5.0);
    }
    rects.emplace_back(lo, hi);
  }
  return rects;
}

std::vector<std::uint32_t> brute_force(const std::vector<Rect>& rects, const Rect& q) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < rects.size(); ++i) {
    if (rects[i].intersects(q)) out.push_back(i);
  }
  return out;
}

TEST(RTree, EmptyTreeQueriesEmpty) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.query(Rect::cube(2, 0.0, 1.0)).empty());
  EXPECT_EQ(tree.height(), 1);
}

TEST(RTree, BulkLoadSingleEntry) {
  RTree tree;
  tree.bulk_load({Rect::cube(2, 0.0, 1.0)});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.query(Rect::cube(2, 0.5, 2.0)), (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(tree.query(Rect::cube(2, 2.0, 3.0)).empty());
}

TEST(RTree, BulkLoadMatchesBruteForce2D) {
  const auto rects = random_rects(500, 2, 1);
  RTree tree;
  tree.bulk_load(rects);
  EXPECT_EQ(tree.size(), 500u);
  Rng rng(2);
  for (int q = 0; q < 50; ++q) {
    Point lo(2), hi(2);
    for (int d = 0; d < 2; ++d) {
      lo[d] = rng.uniform(0.0, 90.0);
      hi[d] = lo[d] + rng.uniform(0.0, 30.0);
    }
    const Rect query(lo, hi);
    EXPECT_EQ(tree.query(query), brute_force(rects, query));
  }
}

TEST(RTree, BulkLoadMatchesBruteForce3D) {
  const auto rects = random_rects(300, 3, 3);
  RTree tree;
  tree.bulk_load(rects);
  Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    Point lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      lo[d] = rng.uniform(0.0, 80.0);
      hi[d] = lo[d] + rng.uniform(0.0, 40.0);
    }
    const Rect query(lo, hi);
    EXPECT_EQ(tree.query(query), brute_force(rects, query));
  }
}

TEST(RTree, InsertMatchesBruteForce) {
  const auto rects = random_rects(400, 2, 5);
  RTree tree(8);
  for (std::uint32_t i = 0; i < rects.size(); ++i) tree.insert(rects[i], i);
  EXPECT_EQ(tree.size(), 400u);
  Rng rng(6);
  for (int q = 0; q < 40; ++q) {
    Point lo(2), hi(2);
    for (int d = 0; d < 2; ++d) {
      lo[d] = rng.uniform(0.0, 90.0);
      hi[d] = lo[d] + rng.uniform(0.0, 25.0);
    }
    const Rect query(lo, hi);
    EXPECT_EQ(tree.query(query), brute_force(rects, query));
  }
}

TEST(RTree, MixedBulkLoadThenInsert) {
  auto rects = random_rects(200, 2, 7);
  RTree tree;
  tree.bulk_load(rects);
  const auto extra = random_rects(100, 2, 8);
  for (std::uint32_t i = 0; i < extra.size(); ++i) {
    tree.insert(extra[i], 200 + i);
    rects.push_back(extra[i]);
  }
  const Rect everything = Rect::cube(2, -10.0, 200.0);
  auto result = tree.query(everything);
  EXPECT_EQ(result.size(), 300u);
  EXPECT_EQ(result, brute_force(rects, everything));
}

TEST(RTree, QueryAllReturnsSortedValues) {
  const auto rects = random_rects(100, 2, 9);
  RTree tree;
  tree.bulk_load(rects);
  auto all = tree.query(Rect::cube(2, -10.0, 200.0));
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(all.size(), 100u);
}

TEST(RTree, HeightGrowsLogarithmically) {
  RTree small;
  small.bulk_load(random_rects(10, 2, 10));
  RTree big;
  big.bulk_load(random_rects(5000, 2, 11));
  EXPECT_LE(small.height(), 2);
  EXPECT_LE(big.height(), 4);  // fanout 16 => 16^4 >> 5000
  EXPECT_GT(big.node_count(), small.node_count());
}

TEST(RTree, BoundsCoverAllEntries) {
  const auto rects = random_rects(250, 2, 12);
  RTree tree;
  tree.bulk_load(rects);
  const Rect bounds = tree.bounds();
  for (const Rect& r : rects) EXPECT_TRUE(bounds.contains(r));
}

TEST(RTree, VisitWithoutMaterializing) {
  const auto rects = random_rects(100, 2, 13);
  RTree tree;
  tree.bulk_load(rects);
  const Rect q = Rect::cube(2, 20.0, 60.0);
  std::size_t visited = 0;
  tree.visit(q, [&](std::uint32_t, const Rect& mbr) {
    EXPECT_TRUE(mbr.intersects(q));
    ++visited;
  });
  EXPECT_EQ(visited, brute_force(rects, q).size());
}

TEST(RTree, DuplicateRectsAllReturned) {
  std::vector<Rect> rects(20, Rect::cube(2, 0.0, 1.0));
  RTree tree(4);
  tree.bulk_load(rects);
  EXPECT_EQ(tree.query(Rect::cube(2, 0.5, 0.6)).size(), 20u);
}

TEST(RTree, InsertDuplicatesSplitCorrectly) {
  RTree tree(4);
  for (std::uint32_t i = 0; i < 50; ++i) tree.insert(Rect::cube(2, 0.0, 1.0), i);
  EXPECT_EQ(tree.query(Rect::cube(2, 0.0, 1.0)).size(), 50u);
}

}  // namespace
}  // namespace adr
