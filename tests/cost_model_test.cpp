#include "core/planner/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/planner/strategy.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using testing::make_grid_scenario;
using testing::make_planner_input;

ComputeCosts cheap_costs() { return {0.001, 0.002, 0.001, 0.001}; }

MachineParams machine() {
  MachineParams m;
  m.disk_seek_s = 0.01;
  m.disk_bw_bytes_per_s = 10e6;
  m.net_latency_s = 40e-6;
  m.net_bw_bytes_per_s = 100e6;
  return m;
}

TEST(CostModel, PositiveAndDecomposed) {
  const auto s = make_grid_scenario(4, 2);
  const auto in = make_planner_input(s, 4, 4 * 500);
  const QueryPlan plan = plan_fra(in);
  const CostEstimate est = estimate_cost(plan, in, cheap_costs(), machine());
  EXPECT_GT(est.total_s, 0.0);
  EXPECT_NEAR(est.total_s, est.init_s + est.lr_s + est.gc_s + est.oh_s, 1e-12);
  EXPECT_GT(est.lr_s, 0.0);
}

TEST(CostModel, DaHasNoCombineCost) {
  const auto s = make_grid_scenario(4, 2);
  const auto in = make_planner_input(s, 4, 4 * 500);
  const CostEstimate da = estimate_cost(plan_da(in), in, cheap_costs(), machine());
  const CostEstimate fra = estimate_cost(plan_fra(in), in, cheap_costs(), machine());
  EXPECT_EQ(da.gc_s, 0.0);
  EXPECT_GT(fra.gc_s, 0.0);
}

TEST(CostModel, MoreComputeCostsMoreTime) {
  const auto s = make_grid_scenario(4, 2);
  const auto in = make_planner_input(s, 4, 4 * 500);
  const QueryPlan plan = plan_fra(in);
  ComputeCosts heavy = cheap_costs();
  heavy.lr_pair *= 100.0;
  const CostEstimate cheap = estimate_cost(plan, in, cheap_costs(), machine());
  const CostEstimate expensive = estimate_cost(plan, in, heavy, machine());
  EXPECT_GT(expensive.total_s, cheap.total_s);
}

TEST(CostModel, SlowerDiskCostsMoreTime) {
  const auto s = make_grid_scenario(4, 2);
  auto in = make_planner_input(s, 4, 4 * 500, /*input_bytes=*/1'000'000);
  const QueryPlan plan = plan_fra(in);
  MachineParams fast = machine();
  MachineParams slow = machine();
  slow.disk_bw_bytes_per_s /= 10.0;
  ComputeCosts zero{};
  EXPECT_GT(estimate_cost(plan, in, zero, slow).total_s,
            estimate_cost(plan, in, zero, fast).total_s);
}

TEST(CostModel, MoreNodesReduceEstimatedTime) {
  const auto s = make_grid_scenario(8, 4);  // 1024 inputs
  ComputeCosts costs{0.001, 0.01, 0.001, 0.001};
  const auto in_small = make_planner_input(s, 2, 64 * 500);
  const auto in_big = make_planner_input(s, 8, 64 * 500);
  const CostEstimate small =
      estimate_cost(plan_fra(in_small), in_small, costs, machine());
  const CostEstimate big = estimate_cost(plan_fra(in_big), in_big, costs, machine());
  EXPECT_GT(small.total_s, big.total_s);
}

TEST(CostModel, ToStringMentionsPhases) {
  CostEstimate est;
  est.total_s = 1.0;
  est.lr_s = 0.5;
  const std::string str = est.to_string();
  EXPECT_NE(str.find("lr="), std::string::npos);
  EXPECT_NE(str.find("total="), std::string::npos);
}

}  // namespace
}  // namespace adr
