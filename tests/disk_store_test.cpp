#include "storage/disk_store.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include <filesystem>
#include <thread>

namespace adr {
namespace {

Chunk make_chunk(std::uint32_t index, int disk, std::vector<std::uint64_t> values) {
  ChunkMeta meta;
  meta.id = {0, index};
  meta.disk = disk;
  std::vector<std::byte> payload(values.size() * sizeof(std::uint64_t));
  std::memcpy(payload.data(), values.data(), payload.size());
  meta.bytes = payload.size();
  return Chunk(meta, std::move(payload));
}

template <typename StoreT>
class ChunkStoreTest : public ::testing::Test {
 public:
  std::unique_ptr<ChunkStore> make(int disks) {
    if constexpr (std::is_same_v<StoreT, MemoryChunkStore>) {
      return std::make_unique<MemoryChunkStore>(disks);
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("adr_store_test_" + std::to_string(::getpid()));
      return std::make_unique<FileChunkStore>(dir_, disks);
    }
  }
  ~ChunkStoreTest() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

 private:
  std::filesystem::path dir_;
};

using StoreTypes = ::testing::Types<MemoryChunkStore, FileChunkStore>;
TYPED_TEST_SUITE(ChunkStoreTest, StoreTypes);

TYPED_TEST(ChunkStoreTest, PutGetRoundTrip) {
  auto store = this->make(2);
  store->put(make_chunk(0, 1, {10, 20, 30}));
  auto chunk = store->get(1, {0, 0});
  ASSERT_TRUE(chunk.has_value());
  auto view = chunk->template as<std::uint64_t>();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 20u);
  EXPECT_EQ(chunk->meta().disk, 1);
}

TYPED_TEST(ChunkStoreTest, GetMissingReturnsNullopt) {
  auto store = this->make(2);
  EXPECT_FALSE(store->get(0, {0, 7}).has_value());
}

TYPED_TEST(ChunkStoreTest, ChunkOnWrongDiskNotFound) {
  auto store = this->make(2);
  store->put(make_chunk(3, 0, {1}));
  EXPECT_FALSE(store->get(1, {0, 3}).has_value());
  EXPECT_TRUE(store->get(0, {0, 3}).has_value());
}

TYPED_TEST(ChunkStoreTest, ContainsAndErase) {
  auto store = this->make(1);
  store->put(make_chunk(5, 0, {1, 2}));
  EXPECT_TRUE(store->contains(0, {0, 5}));
  EXPECT_TRUE(store->erase(0, {0, 5}));
  EXPECT_FALSE(store->contains(0, {0, 5}));
  EXPECT_FALSE(store->erase(0, {0, 5}));
}

TYPED_TEST(ChunkStoreTest, CountsAndBytes) {
  auto store = this->make(2);
  store->put(make_chunk(0, 0, {1}));
  store->put(make_chunk(1, 0, {1, 2}));
  store->put(make_chunk(2, 1, {1}));
  EXPECT_EQ(store->chunk_count(0), 2u);
  EXPECT_EQ(store->chunk_count(1), 1u);
  EXPECT_EQ(store->bytes_on_disk(0), 3 * sizeof(std::uint64_t));
}

TYPED_TEST(ChunkStoreTest, OverwriteReplacesContent) {
  auto store = this->make(1);
  store->put(make_chunk(0, 0, {1}));
  store->put(make_chunk(0, 0, {42, 43}));
  auto chunk = store->get(0, {0, 0});
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->template as<std::uint64_t>()[0], 42u);
  EXPECT_EQ(store->chunk_count(0), 1u);
}

TYPED_TEST(ChunkStoreTest, MetadataOnlyChunk) {
  auto store = this->make(1);
  ChunkMeta meta;
  meta.id = {0, 9};
  meta.disk = 0;
  meta.bytes = 1 << 20;  // nominal size, no payload
  store->put(Chunk(meta));
  auto chunk = store->get(0, {0, 9});
  ASSERT_TRUE(chunk.has_value());
  EXPECT_FALSE(chunk->has_payload());
  EXPECT_EQ(chunk->meta().bytes, 1u << 20);
  EXPECT_EQ(store->bytes_on_disk(0), 1u << 20);
}

TEST(MemoryChunkStore, ConcurrentReadersAndWriters) {
  MemoryChunkStore store(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t]() {
      for (std::uint32_t i = 0; i < 200; ++i) {
        store.put(make_chunk(i, t, {i, i + 1}));
        auto c = store.get(t, {0, i});
        ASSERT_TRUE(c.has_value());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int d = 0; d < 4; ++d) EXPECT_EQ(store.chunk_count(d), 200u);
}

TEST(FileChunkStore, ReopenRestoresContents) {
  const auto dir = std::filesystem::temp_directory_path() / "adr_store_reopen";
  std::filesystem::remove_all(dir);
  {
    FileChunkStore store(dir, 2);
    for (std::uint32_t i = 0; i < 20; ++i) {
      Chunk c = make_chunk(i, static_cast<int>(i % 2), {i, i * 3});
      c.meta().mbr = Rect(Point{static_cast<double>(i), 0.0}, Point{i + 1.0, 2.0});
      store.put(std::move(c));
    }
    store.erase(0, {0, 4});
  }
  FileChunkStore reopened(dir, 2, /*open_existing=*/true);
  EXPECT_EQ(reopened.chunk_count(0), 9u);  // 10 minus the erased one
  EXPECT_EQ(reopened.chunk_count(1), 10u);
  EXPECT_FALSE(reopened.contains(0, {0, 4}));
  for (std::uint32_t i = 0; i < 20; ++i) {
    if (i == 4) continue;
    auto c = reopened.get(static_cast<int>(i % 2), {0, i});
    ASSERT_TRUE(c.has_value()) << i;
    auto view = c->as<std::uint64_t>();
    ASSERT_EQ(view.size(), 2u);
    EXPECT_EQ(view[0], i);
    EXPECT_EQ(view[1], i * 3);
    EXPECT_DOUBLE_EQ(c->meta().mbr.lo()[0], static_cast<double>(i));
  }
  std::filesystem::remove_all(dir);
}

TEST(FileChunkStore, ReopenAfterOverwriteKeepsLatest) {
  const auto dir = std::filesystem::temp_directory_path() / "adr_store_overwrite";
  std::filesystem::remove_all(dir);
  {
    FileChunkStore store(dir, 1);
    store.put(make_chunk(0, 0, {1}));
    store.put(make_chunk(0, 0, {42, 43, 44}));
  }
  FileChunkStore reopened(dir, 1, true);
  auto c = reopened.get(0, {0, 0});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->as<std::uint64_t>().size(), 3u);
  EXPECT_EQ(c->as<std::uint64_t>()[0], 42u);
  std::filesystem::remove_all(dir);
}

TEST(FileChunkStore, FreshOpenTruncatesOldData) {
  const auto dir = std::filesystem::temp_directory_path() / "adr_store_trunc";
  std::filesystem::remove_all(dir);
  {
    FileChunkStore store(dir, 1);
    store.put(make_chunk(0, 0, {1}));
  }
  FileChunkStore fresh(dir, 1);  // open_existing defaults to false
  EXPECT_EQ(fresh.chunk_count(0), 0u);
  std::filesystem::remove_all(dir);
}

TEST(FileChunkStore, PersistsAcrossHandleReads) {
  const auto dir = std::filesystem::temp_directory_path() / "adr_store_persist";
  FileChunkStore store(dir, 1);
  for (std::uint32_t i = 0; i < 50; ++i) store.put(make_chunk(i, 0, {i * 7}));
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto c = store.get(0, {0, i});
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->as<std::uint64_t>()[0], i * 7);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adr
