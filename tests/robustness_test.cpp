// Robustness and negative-path tests: deterministic failure injection
// through the fault registry, malformed plans, cross-executor
// equivalence over randomized scenarios, and the emulators running with
// real payloads.
//
// The FailureInjection.* / FaultProperty.* suites are ThreadSanitizer
// targets (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/fault.hpp"
#include "common/random.hpp"
#include "core/exec/query_executor.hpp"
#include "emulator/scenario.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"
#include "sim/cluster.hpp"
#include "storage/loader.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using testing::make_grid_scenario;

// ------------------------------------------------------------------
// Failure injection: chunks missing from the disk farm.

struct FaultPipeline {
  testing::GridScenario scenario = make_grid_scenario(3, 2);
  MemoryChunkStore store{3};
  Dataset input;
  Dataset output;
  SumCountMaxOp op;
  static constexpr int kNodes = 3;

  FaultPipeline() {
    std::vector<Chunk> inputs;
    for (std::uint32_t i = 0; i < scenario.input_mbrs.size(); ++i) {
      ChunkMeta meta;
      meta.mbr = scenario.input_mbrs[i];
      std::vector<std::uint64_t> vals = {i + 1};
      std::vector<std::byte> payload(sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      inputs.emplace_back(meta, std::move(payload));
    }
    std::vector<Chunk> outputs;
    for (const Rect& mbr : scenario.output_mbrs) {
      ChunkMeta meta;
      meta.mbr = mbr;
      meta.bytes = 24;
      outputs.emplace_back(meta);
    }
    LoadOptions options;
    options.decluster.num_disks = kNodes;
    input = load_dataset(0, "in", scenario.domain, std::move(inputs), store, options);
    output = load_dataset(1, "out", scenario.domain, std::move(outputs), store, options);
  }

  PlannedQuery plan(StrategyKind strategy) {
    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = scenario.domain;
    req.op = &op;
    req.num_nodes = kNodes;
    req.memory_per_node = 100 * 24;
    req.strategy = strategy;
    return plan_query(req);
  }

  /// The persisted output payloads, in chunk order — the byte-identity
  /// oracle for faulted-vs-clean comparisons.
  std::vector<std::vector<std::byte>> output_bytes() {
    std::vector<std::vector<std::byte>> bytes;
    for (std::uint32_t o = 0; o < output.num_chunks(); ++o) {
      auto chunk = store.get(output.chunk(o).disk, output.chunk(o).id);
      EXPECT_TRUE(chunk.has_value()) << o;
      bytes.push_back(chunk.has_value() ? chunk->payload()
                                        : std::vector<std::byte>{});
    }
    return bytes;
  }
};

TEST(FailureInjection, MissingInputChunkDegradesGracefully) {
  // Drop two input chunks from the farm after planning: the engine must
  // finish, and the result simply lacks those chunks' contributions.
  for (StrategyKind strategy : {StrategyKind::kFRA, StrategyKind::kDA}) {
    FaultPipeline p;
    const PlannedQuery pq = p.plan(strategy);
    p.store.erase(p.input.chunk(0).disk, p.input.chunk(0).id);
    p.store.erase(p.input.chunk(7).disk, p.input.chunk(7).id);

    ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);
    const ExecStats stats =
        execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);

    // Full total would be sum(1..36) = 666 with count 36.
    std::uint64_t sum = 0, count = 0;
    for (std::uint32_t o = 0; o < p.output.num_chunks(); ++o) {
      auto chunk = p.store.get(p.output.chunk(o).disk, p.output.chunk(o).id);
      ASSERT_TRUE(chunk.has_value());
      sum += chunk->as<std::uint64_t>()[0];
      count += chunk->as<std::uint64_t>()[1];
    }
    EXPECT_EQ(count, 34u) << to_string(strategy);
    EXPECT_EQ(sum, 666u - 1u - 8u) << to_string(strategy);
    EXPECT_EQ(stats.tiles, pq.plan.num_tiles);
  }
}

TEST(FailureInjection, MissingOutputChunkStillInitializes) {
  FaultPipeline p;
  const PlannedQuery pq = p.plan(StrategyKind::kSRA);
  // Remove a persisted output chunk; initialization reads nullopt and
  // Initialize() runs without the existing contents.
  p.store.erase(p.output.chunk(3).disk, p.output.chunk(3).id);
  ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);
  execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
  auto chunk = p.store.get(p.output.chunk(3).disk, p.output.chunk(3).id);
  ASSERT_TRUE(chunk.has_value());  // rewritten by output handling
  EXPECT_EQ(chunk->as<std::uint64_t>()[1], 4u);  // its 4 nested inputs
}

// ------------------------------------------------------------------
// Registry-driven fault injection: storage fetch errors fail the query
// with a typed status, and a retried (idempotent) query converges to
// the byte-identical fault-free result.

TEST(FailureInjection, InjectedFetchErrorFailsQueryWithTypedStatus) {
  FaultPipeline p;
  const PlannedQuery pq = p.plan(StrategyKind::kFRA);
  ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);

  fault::ScopedFaultPlan plan(/*seed=*/21);
  fault::FaultSpec spec;
  spec.trigger = fault::Trigger::kOneShot;
  spec.after_hits = 2;  // the third fetch of the run dies
  plan.arm("storage.fetch", spec);

  try {
    execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
    FAIL() << "execute_query should have surfaced the injected fault";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("storage.fetch"), std::string::npos);
  }
  EXPECT_EQ(fault::faults().stats("storage.fetch").fires, 1u);

  // One-shot budget spent: the same executor re-runs the same plan
  // clean, and the re-initialized accumulators erase every trace of the
  // failed attempt.
  execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
  std::uint64_t sum = 0, count = 0;
  for (const auto& payload : p.output_bytes()) {
    ASSERT_GE(payload.size(), 16u);
    std::uint64_t v = 0;
    std::memcpy(&v, payload.data(), 8);
    sum += v;
    std::memcpy(&v, payload.data() + 8, 8);
    count += v;
  }
  EXPECT_EQ(sum, 666u);  // sum(1..36): nothing missing, nothing doubled
  EXPECT_EQ(count, 36u);
}

TEST(FailureInjection, InjectedComputeErrorSurfacesAfterRunCompletes) {
  FaultPipeline p;
  const PlannedQuery pq = p.plan(StrategyKind::kDA);
  ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);
  fault::ScopedFaultPlan plan(/*seed=*/22);
  fault::FaultSpec spec;
  spec.trigger = fault::Trigger::kOneShot;
  spec.code = StatusCode::kExecFailed;
  plan.arm("runtime.compute", spec);
  EXPECT_THROW(
      execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1),
      StatusError);
  // The failed run left the executor quiescent: it serves the next run.
  fault::faults().reset();
  execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
  EXPECT_EQ(exec.completed_runs(), 2u);
}

// Table-driven sweep: fault rate x strategy, fixed seeds.  Submitting
// until the (idempotent) query succeeds must converge on results
// byte-identical to a never-faulted run — the acceptance bar for the
// retry story: transient storage faults are invisible in the data.

struct FaultSweepCase {
  double rate;
  StrategyKind strategy;
  std::uint64_t seed;
};

class FaultProperty : public ::testing::TestWithParam<FaultSweepCase> {};

TEST_P(FaultProperty, RetriedQueryMatchesFaultFreeRunByteForByte) {
  const FaultSweepCase c = GetParam();

  // Golden: same scenario, no faults armed.
  std::vector<std::vector<std::byte>> golden;
  {
    FaultPipeline p;
    const PlannedQuery pq = p.plan(c.strategy);
    ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);
    execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
    golden = p.output_bytes();
  }

  FaultPipeline p;
  const PlannedQuery pq = p.plan(c.strategy);
  ThreadExecutor exec(FaultPipeline::kNodes, 1, &p.store);
  fault::ScopedFaultPlan plan(c.seed);
  if (c.rate > 0.0) {
    fault::FaultSpec spec;
    spec.trigger = fault::Trigger::kProbability;
    spec.probability = c.rate;
    // A bounded budget makes submit-until-ok terminate deterministically
    // regardless of rate: once spent, the next attempt runs clean.
    spec.max_fires = 6;
    plan.arm("storage.fetch", spec);
  }

  // Counters survive reset(), so measure this test's own activity as a
  // delta from whatever earlier tests in the same process left behind.
  const fault::PointStats before = fault::faults().stats("storage.fetch");

  int attempts = 0;
  bool ok = false;
  while (!ok && attempts < 20) {
    ++attempts;
    try {
      execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1);
      ok = true;
    } catch (const StatusError& e) {
      EXPECT_EQ(e.code(), StatusCode::kIoError) << e.what();
    }
  }
  ASSERT_TRUE(ok) << "query never succeeded in " << attempts << " attempts";

  const fault::PointStats stats = fault::faults().stats("storage.fetch");
  if (c.rate > 0.0) {
    // arm() reset the counters, so these are this test's alone.
    EXPECT_GT(stats.fires, 0u);  // the plan actually drew blood
    EXPECT_LE(stats.fires, 6u);
  } else {
    EXPECT_EQ(stats.hits - before.hits, 0u);  // unarmed point never counts
    EXPECT_EQ(attempts, 1);
  }

  fault::faults().reset();  // collect the oracle without armed faults
  EXPECT_EQ(p.output_bytes(), golden);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndStrategies, FaultProperty,
    ::testing::Values(FaultSweepCase{0.0, StrategyKind::kFRA, 101},
                      FaultSweepCase{0.0, StrategyKind::kSRA, 102},
                      FaultSweepCase{0.0, StrategyKind::kDA, 103},
                      FaultSweepCase{0.1, StrategyKind::kFRA, 104},
                      FaultSweepCase{0.1, StrategyKind::kSRA, 105},
                      FaultSweepCase{0.1, StrategyKind::kDA, 106},
                      FaultSweepCase{0.5, StrategyKind::kFRA, 107},
                      FaultSweepCase{0.5, StrategyKind::kSRA, 108},
                      FaultSweepCase{0.5, StrategyKind::kDA, 109}),
    [](const ::testing::TestParamInfo<FaultSweepCase>& info) {
      return std::string(to_string(info.param.strategy)) + "_rate" +
             std::to_string(static_cast<int>(info.param.rate * 100));
    });

// ------------------------------------------------------------------
// validate_plan negative cases.

TEST(ValidatePlan, DetectsCorruptedPlans) {
  const auto s = make_grid_scenario(3, 2);
  const PlannerInput in = testing::make_planner_input(s, 3, 100 * 500);
  const QueryPlan good = plan_fra(in);
  ASSERT_TRUE(validate_plan(good, in));

  {
    QueryPlan bad = good;  // output assigned to the wrong owner's list
    auto& tiles0 = bad.node_tiles[0];
    for (auto& tp : tiles0) {
      if (!tp.local_accum.empty()) {
        bad.owner_of_output[tp.local_accum[0]] =
            (bad.owner_of_output[tp.local_accum[0]] + 1) % 3;
        break;
      }
    }
    EXPECT_FALSE(validate_plan(bad, in));
  }
  {
    QueryPlan bad = good;  // duplicate local accumulator
    for (auto& tp : bad.node_tiles[0]) {
      if (!tp.local_accum.empty()) {
        bad.node_tiles[0][0].local_accum.push_back(tp.local_accum[0]);
        break;
      }
    }
    EXPECT_FALSE(validate_plan(bad, in));
  }
  {
    QueryPlan bad = good;  // read of a remote chunk
    for (std::uint32_t i = 0; i < in.owner_of_input.size(); ++i) {
      if (in.owner_of_input[i] != 0) {
        bad.node_tiles[0][0].reads.push_back(i);
        break;
      }
    }
    EXPECT_FALSE(validate_plan(bad, in));
  }
  {
    QueryPlan bad = good;  // tile id out of sync
    bad.tile_of_output[0] = good.num_tiles + 5;
    EXPECT_FALSE(validate_plan(bad, in));
  }
}

// ------------------------------------------------------------------
// Cross-executor equivalence on randomized geometry.

class CrossExecutorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossExecutorTest, SimAndThreadsAgreeOnWorkCounts) {
  Rng rng(GetParam());
  const int nodes = static_cast<int>(rng.uniform_int(2, 5));
  const int out_n = static_cast<int>(rng.uniform_int(2, 4));
  const auto s = make_grid_scenario(out_n, 2);

  auto build = [&](MemoryChunkStore& store, Dataset& in_ds, Dataset& out_ds) {
    std::vector<Chunk> inputs;
    for (const Rect& mbr : s.input_mbrs) {
      ChunkMeta meta;
      meta.mbr = mbr;
      inputs.emplace_back(meta, std::vector<std::byte>(16, std::byte{1}));
    }
    std::vector<Chunk> outputs;
    for (const Rect& mbr : s.output_mbrs) {
      ChunkMeta meta;
      meta.mbr = mbr;
      meta.bytes = 24;
      outputs.emplace_back(meta);
    }
    LoadOptions options;
    options.decluster.num_disks = nodes;
    in_ds = load_dataset(0, "in", s.domain, std::move(inputs), store, options);
    out_ds = load_dataset(1, "out", s.domain, std::move(outputs), store, options);
  };

  const StrategyKind strategy =
      std::vector<StrategyKind>{StrategyKind::kFRA, StrategyKind::kSRA,
                                StrategyKind::kDA}[GetParam() % 3];

  SumCountMaxOp op;
  const auto memory = static_cast<std::uint64_t>(rng.uniform_int(72, 72 * 8));
  auto plan_for = [&](Dataset& in_ds, Dataset& out_ds) {
    PlanRequest req;
    req.input = &in_ds;
    req.output = &out_ds;
    req.range = s.domain;
    req.op = &op;
    req.num_nodes = nodes;
    req.memory_per_node = memory;
    req.strategy = strategy;
    return plan_query(req);
  };

  MemoryChunkStore store_a(nodes), store_b(nodes);
  Dataset in_a, out_a, in_b, out_b;
  build(store_a, in_a, out_a);
  build(store_b, in_b, out_b);
  const PlannedQuery pq_a = plan_for(in_a, out_a);
  const PlannedQuery pq_b = plan_for(in_b, out_b);

  ThreadExecutor texec(nodes, 1, &store_a);
  const ExecStats t = execute_query(texec, pq_a, in_a, out_a, &op, ComputeCosts{}, 1);

  sim::SimCluster cluster(sim::ibm_sp_profile(nodes));
  SimExecutor sexec(&cluster, &store_b);
  const ExecStats sm = execute_query(sexec, pq_b, in_b, out_b, &op,
                                     ComputeCosts{1e-4, 1e-4, 1e-4, 1e-4}, 1);

  EXPECT_EQ(t.total_lr_pairs(), sm.total_lr_pairs());
  EXPECT_EQ(t.total_bytes_sent(), sm.total_bytes_sent());
  EXPECT_EQ(t.total_bytes_read(), sm.total_bytes_read());
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    EXPECT_EQ(t.nodes[n].msgs_received, sm.nodes[n].msgs_received) << n;
    EXPECT_EQ(t.nodes[n].outputs, sm.nodes[n].outputs) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossExecutorTest,
                         ::testing::Range<std::uint64_t>(200, 212));

// ------------------------------------------------------------------
// Emulators with real payloads through the engine.

TEST(EmulatorPayloads, SatScenarioAggregatesIdenticallyAcrossStrategies) {
  const emu::PaperScenario scenario = emu::paper_scenario(emu::PaperApp::kSat);
  std::map<std::uint32_t, std::vector<std::byte>> results[2];
  const StrategyKind kinds[] = {StrategyKind::kFRA, StrategyKind::kDA};
  for (int k = 0; k < 2; ++k) {
    emu::EmulatedApp app =
        emu::build_app(scenario, /*chunks=*/400, /*seed=*/5, /*payload_values=*/4);
    const int nodes = 4;
    MemoryChunkStore store(nodes);
    LoadOptions options;
    options.decluster.num_disks = nodes;
    // Give the outputs a real 24-byte payload for the sum/count/max op.
    for (Chunk& c : app.output_chunks) {
      c.meta().bytes = 24;
      c.payload().assign(24, std::byte{0});
    }
    Dataset input = load_dataset(0, "in", app.input_domain,
                                 std::move(app.input_chunks), store, options);
    Dataset output = load_dataset(1, "out", app.output_domain,
                                  std::move(app.output_chunks), store, options);
    SumCountMaxOp op;
    IdentityMap drop(2);
    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = app.input_domain;
    req.map = &drop;
    req.op = &op;
    req.num_nodes = nodes;
    req.memory_per_node = 20 * 72;
    req.strategy = kinds[k];
    const PlannedQuery pq = plan_query(req);
    ThreadExecutor exec(nodes, 1, &store);
    execute_query(exec, pq, input, output, &op, ComputeCosts{}, 1);
    for (std::uint32_t o = 0; o < output.num_chunks(); ++o) {
      auto chunk = store.get(output.chunk(o).disk, output.chunk(o).id);
      ASSERT_TRUE(chunk.has_value());
      results[k][o] = chunk->payload();
    }
  }
  EXPECT_EQ(results[0], results[1]);
  // Polar skew: some output chunk aggregated many more readings than the
  // median one.
  std::uint64_t max_count = 0, nonzero = 0;
  for (const auto& [o, payload] : results[0]) {
    std::uint64_t count;
    std::memcpy(&count, payload.data() + 8, 8);
    max_count = std::max(max_count, count);
    nonzero += count > 0;
  }
  EXPECT_GT(nonzero, 100u);
  EXPECT_GT(max_count, 4u * 400u * 4u / 256u);
}

}  // namespace
}  // namespace adr
