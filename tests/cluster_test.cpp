#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace adr::sim {
namespace {

TEST(ClusterConfig, IbmSpProfileMatchesPaper) {
  const ClusterConfig cfg = ibm_sp_profile(128);
  EXPECT_EQ(cfg.num_nodes, 128);
  EXPECT_EQ(cfg.disks_per_node, 1);
  // 110 MB/s peak per-node switch bandwidth.
  EXPECT_DOUBLE_EQ(cfg.link.bandwidth_bytes_per_sec, 110.0 * 1024 * 1024);
  EXPECT_EQ(cfg.total_disks(), 128);
}

TEST(SimCluster, BuildsNodesAndDisks) {
  ClusterConfig cfg = ibm_sp_profile(4);
  cfg.disks_per_node = 3;
  SimCluster cluster(cfg);
  EXPECT_EQ(cluster.num_nodes(), 4);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.node(n).id(), n);
    EXPECT_EQ(cluster.node(n).num_disks(), 3);
  }
}

TEST(SimCluster, GlobalDiskMapping) {
  ClusterConfig cfg = ibm_sp_profile(4);
  cfg.disks_per_node = 2;
  SimCluster cluster(cfg);
  EXPECT_EQ(cluster.node_of_disk(0), 0);
  EXPECT_EQ(cluster.node_of_disk(1), 0);
  EXPECT_EQ(cluster.node_of_disk(2), 1);
  EXPECT_EQ(cluster.node_of_disk(7), 3);
  EXPECT_EQ(cluster.local_disk(7), 1);
  EXPECT_EQ(cluster.local_disk(6), 0);
}

TEST(SimCluster, ResourcesShareTheClock) {
  SimCluster cluster(ibm_sp_profile(2));
  SimTime done = -1;
  cluster.node(0).cpu().acquire(from_millis(5.0), [&]() { done = cluster.sim().now(); });
  cluster.sim().run();
  EXPECT_EQ(done, from_millis(5.0));
}

}  // namespace
}  // namespace adr::sim
