// Batch submission and gang execution (docs/batching.md): batch results
// must be byte-identical to serial submission, gangs of overlapping
// queries must pay strictly fewer cold chunk reads than serial, and the
// scheduler's gang formation must respect per-client FIFO lanes and
// never co-gang queries over different datasets.
#include "core/frontend.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/fault.hpp"
#include "storage/shared_scan.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

RepositoryConfig thread_config(int nodes) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = nodes;
  cfg.memory_per_node = 1 << 20;
  // The chunk cache would also dedup repeat reads; disable it so every
  // backing-store fetch in these tests is a true cold read and the
  // serial-vs-gang comparison isolates batch sharing.  The marginal
  // cache would go further and skip repeat members' execution entirely
  // (shrinking gangs) — same reasoning, its serving has its own suites.
  cfg.chunk_cache_bytes_per_node = 0;
  cfg.marginal_cache_bytes = 0;
  return cfg;
}

std::vector<Chunk> grid_inputs(int n_side, int values_per_chunk) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  std::uint64_t idx = 0;
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, n_side, ix, iy);
      std::vector<std::uint64_t> vals(static_cast<std::size_t>(values_per_chunk));
      for (auto& v : vals) v = ++idx;
      std::vector<std::byte> payload(vals.size() * sizeof(std::uint64_t));
      std::memcpy(payload.data(), vals.data(), payload.size());
      chunks.emplace_back(meta, std::move(payload));
    }
  }
  return chunks;
}

std::vector<Chunk> grid_outputs(int n_side) {
  std::vector<Chunk> chunks;
  const Rect domain = Rect::cube(2, 0.0, 1.0);
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, n_side, ix, iy);
      chunks.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  return chunks;
}

Query window_query(std::uint32_t in, std::uint32_t out, int i) {
  // Sliding windows over x, full extent in y: neighbours overlap in most
  // of their input chunks.
  Query q;
  q.input_dataset = in;
  q.output_dataset = out;
  const double x0 = 0.08 * i;
  const double x1 = std::min(x0 + 0.35, 1.0 - 1e-9);
  q.range = Rect(Point{x0, 0.0}, Point{x1, 1.0 - 1e-9});
  q.aggregation = "sum-count-max";
  q.delivery = OutputDelivery::kReturnToClient;
  return q;
}

void expect_same_outputs(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].meta().id, b.outputs[i].meta().id);
    EXPECT_EQ(a.outputs[i].payload(), b.outputs[i].payload());
  }
}

TEST(Batch, MatchesSerialWithStrictlyFewerColdReads) {
  // Serial baseline and gang run on two identically-built repositories
  // (same deterministic dataset contents), cache disabled in both.
  Repository serial_repo(thread_config(2));
  Repository batch_repo(thread_config(2));
  const auto sin = serial_repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                              grid_inputs(8, 4));
  const auto sout = serial_repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                               grid_outputs(2));
  const auto bin = batch_repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                             grid_inputs(8, 4));
  const auto bout = batch_repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                              grid_outputs(2));

  std::vector<SubmitRequest> batch;
  std::vector<QueryResult> serial;
  std::uint64_t serial_cold_reads = 0;
  for (int i = 0; i < 8; ++i) {
    serial.push_back(serial_repo.submit(window_query(sin, sout, i)));
    serial_cold_reads += serial.back().chunk_reads;
    SubmitRequest req;
    req.query = window_query(bin, bout, i);
    batch.push_back(req);
  }

  const auto outcomes = batch_repo.submit_batch(batch);
  ASSERT_EQ(outcomes.size(), 8u);
  std::uint64_t gang_cold_reads = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].status.to_string();
    EXPECT_EQ(outcomes[i].result.gang_size, 8u);
    gang_cold_reads += outcomes[i].result.gang_cold_reads;
    // Per-query outputs are byte-identical to serial submission.
    expect_same_outputs(outcomes[i].result, serial[i]);
  }
  // The whole point of the gang: shared input chunks are fetched once.
  EXPECT_LT(gang_cold_reads, serial_cold_reads)
      << "gang paid " << gang_cold_reads << " cold reads vs serial "
      << serial_cold_reads;
  EXPECT_GT(gang_cold_reads, 0u);
}

TEST(Batch, SharingDisabledFallsBackToSerialExecution) {
  RepositoryConfig cfg = thread_config(2);
  cfg.batch_scan_bytes = 0;  // gate off: members execute like submits
  Repository repo(cfg);
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                      grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));

  std::vector<SubmitRequest> batch;
  for (int i = 0; i < 4; ++i) {
    SubmitRequest req;
    req.query = window_query(in, out, i);
    batch.push_back(req);
  }
  const auto outcomes = repo.submit_batch(batch);
  ASSERT_EQ(outcomes.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].status.to_string();
    EXPECT_EQ(outcomes[i].result.gang_size, 1u);
    expect_same_outputs(outcomes[i].result, repo.submit(window_query(in, out, i)));
  }
}

TEST(Batch, MemberFailureDoesNotSinkTheGang) {
  Repository repo(thread_config(2));
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                      grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));

  std::vector<SubmitRequest> batch;
  for (int i = 0; i < 3; ++i) {
    SubmitRequest req;
    req.query = window_query(in, out, i);
    batch.push_back(req);
  }
  batch[1].query.aggregation = "no-such-op";

  const auto outcomes = repo.submit_batch(batch);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].status.to_string();
  EXPECT_TRUE(outcomes[2].ok()) << outcomes[2].status.to_string();
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].status.code, StatusCode::kInvalidArgument);
  EXPECT_NE(outcomes[1].status.message.find("unknown aggregation"),
            std::string::npos);
}

TEST(Batch, SchedulerFormsGangsAcrossClients) {
  Repository repo(thread_config(2));
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                      grid_inputs(8, 4));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));
  QuerySubmissionService service(repo);

  // Eight compatible queries from eight distinct clients, all queued
  // before the single worker starts: it must gang them all.  Windows are
  // wide enough that every query overlaps the gang leader (the scheduler
  // only gangs range-intersecting queries).
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    Query q = window_query(in, out, i);
    const double x0 = 0.05 * i;
    q.range = Rect(Point{x0, 0.0},
                   Point{std::min(x0 + 0.6, 1.0 - 1e-9), 1.0 - 1e-9});
    tickets.push_back(service.enqueue(q, {}, /*client_id=*/100 + i));
  }
  service.start(1);
  for (const auto t : tickets) {
    const auto outcome = service.take(t);
    ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
    EXPECT_EQ(outcome.result.gang_size, 8u);
  }
  service.stop();
}

TEST(Batch, GangFormationRespectsClientFifoLanes) {
  Repository repo(thread_config(2));
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                      grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));
  QuerySubmissionService service(repo);

  // Client 1 queues two compatible queries; client 2 queues one.  The
  // gang takes at most one query per client (a lane is serial), so the
  // leader gangs with client 2's query while client 1's second query
  // waits its turn and runs alone.
  const auto qa = service.enqueue(window_query(in, out, 0), {}, /*client_id=*/1);
  const auto qb = service.enqueue(window_query(in, out, 1), {}, /*client_id=*/1);
  const auto qc = service.enqueue(window_query(in, out, 2), {}, /*client_id=*/2);
  service.start(1);

  const auto oa = service.take(qa);
  const auto ob = service.take(qb);
  const auto oc = service.take(qc);
  service.stop();
  ASSERT_TRUE(oa.ok()) << oa.status.to_string();
  ASSERT_TRUE(ob.ok()) << ob.status.to_string();
  ASSERT_TRUE(oc.ok()) << oc.status.to_string();
  EXPECT_EQ(oa.result.gang_size, 2u);
  EXPECT_EQ(oc.result.gang_size, 2u);
  EXPECT_EQ(ob.result.gang_size, 1u);  // same lane as qa: never co-gangs
}

TEST(Batch, MixedDatasetQueriesNeverCoGang) {
  Repository repo(thread_config(2));
  const auto in_a = repo.create_dataset("a", Rect::cube(2, 0.0, 1.0),
                                        grid_inputs(4, 2));
  const auto in_b = repo.create_dataset("b", Rect::cube(2, 0.0, 1.0),
                                        grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));
  QuerySubmissionService service(repo);

  // Interleaved arrivals over two datasets from distinct clients: the
  // dataset-a queries gang together, the dataset-b query runs alone.
  const auto ta1 = service.enqueue(window_query(in_a, out, 0), {}, /*client_id=*/1);
  const auto tb = service.enqueue(window_query(in_b, out, 1), {}, /*client_id=*/2);
  const auto ta2 = service.enqueue(window_query(in_a, out, 2), {}, /*client_id=*/3);
  service.start(1);

  const auto oa1 = service.take(ta1);
  const auto ob = service.take(tb);
  const auto oa2 = service.take(ta2);
  service.stop();
  ASSERT_TRUE(oa1.ok()) << oa1.status.to_string();
  ASSERT_TRUE(ob.ok()) << ob.status.to_string();
  ASSERT_TRUE(oa2.ok()) << oa2.status.to_string();
  EXPECT_EQ(oa1.result.gang_size, 2u);
  EXPECT_EQ(oa2.result.gang_size, 2u);
  EXPECT_EQ(ob.result.gang_size, 1u);

  // submit_batch applies the same rule when handed a mixed batch.
  std::vector<SubmitRequest> mixed;
  for (int i = 0; i < 4; ++i) {
    SubmitRequest req;
    req.query = window_query(i % 2 == 0 ? in_a : in_b, out, i);
    mixed.push_back(req);
  }
  const auto outcomes = repo.submit_batch(mixed);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.ok()) << o.status.to_string();
    EXPECT_EQ(o.result.gang_size, 2u);  // two per dataset, never four
  }
}

TEST(Batch, EmptyAndSingletonBatches) {
  Repository repo(thread_config(1));
  const auto in = repo.create_dataset("in", Rect::cube(2, 0.0, 1.0),
                                      grid_inputs(4, 2));
  const auto out = repo.create_dataset("out", Rect::cube(2, 0.0, 1.0),
                                       grid_outputs(2));
  EXPECT_TRUE(repo.submit_batch({}).empty());

  SubmitRequest solo;
  solo.query = window_query(in, out, 0);
  const auto outcomes = repo.submit_batch({solo});
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].status.to_string();
  EXPECT_EQ(outcomes[0].result.gang_size, 1u);
  expect_same_outputs(outcomes[0].result, repo.submit(solo.query));
}

// ------------------------------------------------- shared-scan store

Chunk test_chunk(std::uint32_t index, std::size_t bytes) {
  ChunkMeta meta;
  meta.id = {1, index};
  meta.disk = 0;
  meta.bytes = bytes;
  meta.mbr = Rect::cube(2, 0.0, 1.0);
  return Chunk(meta, std::vector<std::byte>(bytes, std::byte{0x5a}));
}

TEST(SharedScanStore, ColdFetchOnceThenSharedHitsUntilUsesDrain) {
  MemoryChunkStore backing(1);
  backing.put(test_chunk(0, 8));
  SharedScanStore scan(backing);
  scan.add_planned_uses({1, 0}, 3);

  for (int i = 0; i < 3; ++i) {
    const auto c = scan.get(0, {1, 0});
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->payload().size(), 8u);
  }
  const SharedScanStats stats = scan.stats();
  EXPECT_EQ(stats.cold_fetches, 1u);
  EXPECT_EQ(stats.shared_hits, 2u);
  // The last planned reader drops the retained copy immediately.
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_GT(stats.peak_resident_bytes, 0u);

  // A fourth, unplanned read passes through to the backing store.
  EXPECT_TRUE(scan.get(0, {1, 0}).has_value());
  EXPECT_EQ(scan.stats().passthrough, 1u);
}

TEST(SharedScanStore, FailedColdFetchKeepsRemainingPlannedUses) {
  // Regression: a failed cold fetch consumes only the failed reader's
  // planned use.  The remaining readers must still be counted — the
  // whole refcount used to leak, downgrading every later gang member to
  // an unshared passthrough read.
  MemoryChunkStore backing(1);
  backing.put(test_chunk(0, 8));
  SharedScanStore scan(backing);
  scan.add_planned_uses({1, 0}, 3);

  fault::ScopedFaultPlan plan(/*seed=*/52);
  fault::FaultSpec spec;
  spec.trigger = fault::Trigger::kOneShot;
  plan.arm("storage.shared_fetch", spec);
  EXPECT_THROW(scan.get(0, {1, 0}), StatusError);

  // Two planned readers remain: one pays the (now clean) cold fetch,
  // the other shares its retained copy.
  ASSERT_TRUE(scan.get(0, {1, 0}).has_value());
  ASSERT_TRUE(scan.get(0, {1, 0}).has_value());
  const SharedScanStats stats = scan.stats();
  EXPECT_EQ(stats.cold_fetches, 2u);  // the failed one and the clean one
  EXPECT_EQ(stats.shared_hits, 1u);
  EXPECT_EQ(stats.passthrough, 0u);  // nobody degraded to unplanned reads
  EXPECT_EQ(stats.resident_bytes, 0u);  // last reader dropped the copy
}

TEST(SharedScanStore, ByteCapDegradesToPassthrough) {
  MemoryChunkStore backing(1);
  backing.put(test_chunk(0, 8));
  SharedScanStore scan(backing, /*max_bytes=*/4);  // too small to retain
  scan.add_planned_uses({1, 0}, 2);

  EXPECT_TRUE(scan.get(0, {1, 0}).has_value());
  EXPECT_TRUE(scan.get(0, {1, 0}).has_value());
  const SharedScanStats stats = scan.stats();
  // Nothing fit in the buffer: both planned reads paid a cold fetch.
  EXPECT_EQ(stats.cold_fetches, 2u);
  EXPECT_EQ(stats.shared_hits, 0u);
  EXPECT_GE(stats.cap_rejections, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(SharedScanStore, PutInvalidatesRetainedCopy) {
  MemoryChunkStore backing(1);
  backing.put(test_chunk(0, 8));
  SharedScanStore scan(backing);
  scan.add_planned_uses({1, 0}, 3);

  ASSERT_TRUE(scan.get(0, {1, 0}).has_value());  // cold fetch, retained
  // A writer replaces the chunk mid-gang: later readers must observe the
  // new bytes, exactly as serial execution would.
  ChunkMeta meta;
  meta.id = {1, 0};
  meta.disk = 0;
  meta.bytes = 8;
  meta.mbr = Rect::cube(2, 0.0, 1.0);
  scan.put(Chunk(meta, std::vector<std::byte>(8, std::byte{0x77})));
  const auto c = scan.get(0, {1, 0});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->payload()[0], std::byte{0x77});
}

}  // namespace
}  // namespace adr
