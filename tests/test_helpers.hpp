// Shared fixtures for planner/executor tests.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/geometry.hpp"
#include "core/planner/mapping.hpp"
#include "core/planner/plan.hpp"
#include "core/planner/tiling.hpp"

namespace adr::testing {

/// Geometry for a synthetic scenario: `in_per_out` x `in_per_out` input
/// chunks nested inside each output chunk of an `out_n` x `out_n` grid.
struct GridScenario {
  Rect domain;
  std::vector<Rect> input_mbrs;
  std::vector<Rect> output_mbrs;
  ChunkMapping mapping;
};

inline Rect cell(const Rect& domain, int n, int ix, int iy) {
  const double dx = domain.extent(0) / n;
  const double dy = domain.extent(1) / n;
  const double e = 1e-9;
  return Rect(Point{domain.lo()[0] + ix * dx + e * dx, domain.lo()[1] + iy * dy + e * dy},
              Point{domain.lo()[0] + (ix + 1) * dx - e * dx,
                    domain.lo()[1] + (iy + 1) * dy - e * dy});
}

inline GridScenario make_grid_scenario(int out_n, int in_per_out) {
  GridScenario s;
  s.domain = Rect::cube(2, 0.0, 1.0);
  const int in_n = out_n * in_per_out;
  for (int iy = 0; iy < out_n; ++iy) {
    for (int ix = 0; ix < out_n; ++ix) {
      s.output_mbrs.push_back(cell(s.domain, out_n, ix, iy));
    }
  }
  for (int iy = 0; iy < in_n; ++iy) {
    for (int ix = 0; ix < in_n; ++ix) {
      s.input_mbrs.push_back(cell(s.domain, in_n, ix, iy));
    }
  }
  s.mapping = build_mapping(s.input_mbrs, s.output_mbrs, nullptr);
  return s;
}

/// PlannerInput over a scenario with round-robin chunk ownership.
inline PlannerInput make_planner_input(const GridScenario& s, int nodes,
                                       std::uint64_t memory_per_node,
                                       std::uint64_t input_bytes = 1000,
                                       std::uint64_t output_bytes = 500,
                                       double accum_multiplier = 1.0) {
  PlannerInput in;
  in.num_nodes = nodes;
  in.memory_per_node = memory_per_node;
  in.mapping = &s.mapping;
  in.owner_of_input.resize(s.input_mbrs.size());
  in.input_bytes.assign(s.input_mbrs.size(), input_bytes);
  for (std::size_t i = 0; i < s.input_mbrs.size(); ++i) {
    in.owner_of_input[i] = static_cast<int>(i % static_cast<std::size_t>(nodes));
  }
  in.owner_of_output.resize(s.output_mbrs.size());
  in.output_bytes.assign(s.output_mbrs.size(), output_bytes);
  in.accum_bytes.assign(
      s.output_mbrs.size(),
      static_cast<std::uint64_t>(static_cast<double>(output_bytes) * accum_multiplier));
  for (std::size_t o = 0; o < s.output_mbrs.size(); ++o) {
    in.owner_of_output[o] = static_cast<int>(o % static_cast<std::size_t>(nodes));
  }
  in.output_order = tiling_order(s.output_mbrs, s.domain, TilingOrder::kHilbert);
  return in;
}

}  // namespace adr::testing
