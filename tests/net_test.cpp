#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "json_check.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket_io.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"

namespace adr::net {
namespace {

// ------------------------------------------------------------- wire

TEST(Wire, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-3.25);
  w.str("hello adr");
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.bytes(blob);
  w.rect(Rect(Point{1.0, -2.0, 3.0}, Point{4.0, 5.0, 6.0}));

  const auto buffer = w.take();
  Reader r(buffer);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.str(), "hello adr");
  EXPECT_EQ(r.bytes(), blob);
  const Rect rect = r.rect();
  EXPECT_EQ(rect.dims(), 3);
  EXPECT_DOUBLE_EQ(rect.lo()[1], -2.0);
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedFrameThrows) {
  Writer w;
  w.u64(42);
  auto buffer = w.take();
  buffer.pop_back();
  Reader r(buffer);
  EXPECT_THROW(r.u64(), WireError);
}

TEST(Wire, QueryRoundTrip) {
  Query q;
  q.input_dataset = 3;
  q.extra_input_datasets = {7, 9};
  q.output_dataset = 4;
  q.range = Rect(Point{-180.0, -90.0, 0.0}, Point{180.0, 90.0, 10.0});
  q.map_function = "identity";
  q.aggregation = "sum-count-max";
  q.strategy = StrategyKind::kSRA;
  q.tiling_order = TilingOrder::kRowMajor;
  q.delivery = OutputDelivery::kReturnToClient;
  q.write_output = true;
  q.seed = 12345;

  const Query back = decode_query(encode_query(q));
  EXPECT_EQ(back.input_dataset, 3u);
  EXPECT_EQ(back.extra_input_datasets, (std::vector<std::uint32_t>{7, 9}));
  EXPECT_EQ(back.output_dataset, 4u);
  EXPECT_EQ(back.range, q.range);
  EXPECT_EQ(back.map_function, "identity");
  EXPECT_EQ(back.aggregation, "sum-count-max");
  EXPECT_EQ(back.strategy, StrategyKind::kSRA);
  EXPECT_EQ(back.tiling_order, TilingOrder::kRowMajor);
  EXPECT_EQ(back.delivery, OutputDelivery::kReturnToClient);
  EXPECT_EQ(back.seed, 12345u);
}

TEST(Wire, ResultRoundTripWithChunks) {
  WireResult result;
  result.strategy = StrategyKind::kDA;
  result.tiles = 5;
  result.ghost_chunks = 99;
  result.chunk_reads = 1234;
  result.total_s = 17.5;
  result.bytes_communicated = 1ull << 40;
  ChunkMeta meta;
  meta.id = {2, 6};
  meta.bytes = 8;
  meta.mbr = Rect::cube(2, 0.0, 1.0);
  std::vector<std::byte> payload(8, std::byte{0x5a});
  result.outputs.emplace_back(meta, payload);

  const WireResult back = decode_result(encode_result(result));
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.status.code, StatusCode::kOk);
  EXPECT_EQ(back.strategy, StrategyKind::kDA);
  EXPECT_EQ(back.tiles, 5);
  EXPECT_EQ(back.ghost_chunks, 99u);
  EXPECT_EQ(back.bytes_communicated, 1ull << 40);
  ASSERT_EQ(back.outputs.size(), 1u);
  EXPECT_EQ(back.outputs[0].meta().id, (ChunkId{2, 6}));
  EXPECT_EQ(back.outputs[0].payload(), payload);
}

TEST(Wire, ErrorResultRoundTrip) {
  WireResult result;
  result.status = Status::make(StatusCode::kExecFailed, "unknown aggregation");
  const WireResult back = decode_result(encode_result(result));
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status.code, StatusCode::kExecFailed);
  EXPECT_EQ(back.error(), "unknown aggregation");
}

TEST(Wire, StatusCodesRoundTripV4) {
  // Every typed failure code survives the wire unchanged (v4 result
  // frames append the raw 16-bit code after the v3 retry hint).
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound, StatusCode::kBusy,
        StatusCode::kPlanRejected, StatusCode::kExecFailed,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    WireResult result;
    result.status = Status::make(code, "details");
    const WireResult back = decode_result(encode_result(result));
    EXPECT_FALSE(back.ok());
    EXPECT_EQ(back.status.code, code);
    EXPECT_EQ(back.error(), "details");
  }
}

TEST(Wire, RetryAfterHintRoundTrips) {
  WireResult result;
  result.status = Status::make(StatusCode::kBusy, kServerBusyError);
  result.retry_after_ms = 750;
  const WireResult back = decode_result(encode_result(result));
  EXPECT_TRUE(back.server_busy());
  EXPECT_EQ(back.retry_after_ms, 750u);
}

TEST(Wire, ExecOptionsTravelWithQueryFrame) {
  Query q;
  q.input_dataset = 1;
  q.output_dataset = 2;
  q.range = Rect::cube(2, 0.0, 1.0);
  // Flip every flag away from its default (and set a nonzero comm-CPU
  // rate) so the round trip can't pass by accident.
  ExecOptions options;
  options.init_from_output = false;
  options.write_output = false;
  options.pipeline_tiles = false;
  options.record_trace = true;
  options.comm_cpu_bytes_per_sec = 1.5e9;
  const WireQuery back = decode_query_frame(encode_query(q, options));
  EXPECT_EQ(back.query.input_dataset, 1u);
  EXPECT_FALSE(back.options.init_from_output);
  EXPECT_FALSE(back.options.write_output);
  EXPECT_FALSE(back.options.pipeline_tiles);
  EXPECT_TRUE(back.options.record_trace);
  EXPECT_DOUBLE_EQ(back.options.comm_cpu_bytes_per_sec, 1.5e9);

  // Omitted options decode back to the defaults.
  const ExecOptions defaults;
  const WireQuery plain = decode_query_frame(encode_query(q));
  EXPECT_EQ(plain.options.init_from_output, defaults.init_from_output);
  EXPECT_EQ(plain.options.write_output, defaults.write_output);
  EXPECT_EQ(plain.options.pipeline_tiles, defaults.pipeline_tiles);
  EXPECT_EQ(plain.options.record_trace, defaults.record_trace);
  EXPECT_DOUBLE_EQ(plain.options.comm_cpu_bytes_per_sec,
                   defaults.comm_cpu_bytes_per_sec);
}

TEST(Wire, V2ResultFrameStillDecodes) {
  // A v2 peer's result body: same layout as v3 minus the appended
  // retry-after field.  Decoding must accept it and default the hint.
  Writer w;
  w.u8(0x52);  // result tag
  w.u8(2);     // protocol v2
  w.u8(1);     // ok
  w.str("");
  w.u8(static_cast<std::uint8_t>(StrategyKind::kSRA));
  w.u32(9);         // tiles
  w.u64(3);         // ghost_chunks
  w.u64(77);        // chunk_reads
  w.f64(1.25);      // total_s
  w.u64(4096);      // bytes_communicated
  w.u64(10);        // cache_hits
  w.u64(2);         // cache_misses
  w.u32(0);         // outputs
  const WireResult back = decode_result(w.take());
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.status.code, StatusCode::kOk);
  EXPECT_EQ(back.strategy, StrategyKind::kSRA);
  EXPECT_EQ(back.tiles, 9);
  EXPECT_EQ(back.cache_hits, 10u);
  EXPECT_EQ(back.retry_after_ms, 0u);  // v3 field defaults
}

TEST(Wire, V3ResultFrameInfersStatusCode) {
  // A v3 peer's failure frame carries only (ok, message); the decoder
  // must map the well-known busy message to kBusy and anything else to
  // kInternal.
  const auto v3_failure = [](const std::string& error) {
    Writer w;
    w.u8(0x52);  // result tag
    w.u8(3);     // protocol v3
    w.u8(0);     // not ok
    w.str(error);
    w.u8(static_cast<std::uint8_t>(StrategyKind::kFRA));
    w.u32(0);   // tiles
    w.u64(0);   // ghost_chunks
    w.u64(0);   // chunk_reads
    w.f64(0.0); // total_s
    w.u64(0);   // bytes_communicated
    w.u64(0);   // cache_hits
    w.u64(0);   // cache_misses
    w.u32(500); // retry_after_ms (v3)
    w.u32(0);   // outputs
    return decode_result(w.take());
  };
  const WireResult busy = v3_failure(kServerBusyError);
  EXPECT_FALSE(busy.ok());
  EXPECT_EQ(busy.status.code, StatusCode::kBusy);
  EXPECT_TRUE(busy.server_busy());
  EXPECT_EQ(busy.retry_after_ms, 500u);

  const WireResult other = v3_failure("engine exploded");
  EXPECT_FALSE(other.ok());
  EXPECT_EQ(other.status.code, StatusCode::kInternal);
  EXPECT_EQ(other.error(), "engine exploded");
}

TEST(Wire, UnsupportedVersionRejected) {
  Writer w;
  w.u8(0x52);
  w.u8(1);  // v1 predates the cache counters; no longer decodable
  EXPECT_THROW(decode_result(w.take()), WireError);
}

TEST(Wire, StatsFramesRoundTrip) {
  WireStatsRequest req;
  req.include_trace = true;
  const auto req_frame = encode_stats_request(req);
  EXPECT_TRUE(is_stats_request(req_frame));
  EXPECT_TRUE(decode_stats_request(req_frame).include_trace);
  EXPECT_FALSE(decode_stats_request(encode_stats_request({})).include_trace);

  WireStatsReply reply;
  reply.metrics_json = "{\"counters\":{}}";
  reply.trace_json = "{\"traceEvents\":[]}";
  const WireStatsReply back = decode_stats_reply(encode_stats_reply(reply));
  EXPECT_EQ(back.metrics_json, reply.metrics_json);
  EXPECT_EQ(back.trace_json, reply.trace_json);
}

TEST(Wire, StatsFrameRejectedByOtherDecoders) {
  const auto frame = encode_stats_request({});
  EXPECT_THROW(decode_query(frame), WireError);
  EXPECT_THROW(decode_result(frame), WireError);
  Query q;
  q.range = Rect::cube(2, 0.0, 1.0);
  EXPECT_FALSE(is_stats_request(encode_query(q)));
}

TEST(Wire, QueryFrameRejectedAsResult) {
  Query q;
  q.range = Rect::cube(2, 0.0, 1.0);
  EXPECT_THROW(decode_result(encode_query(q)), WireError);
  WireResult result;
  EXPECT_THROW(decode_query(encode_result(result)), WireError);
}

// ----------------------------------------------------- client/server

struct ServerFixture {
  Repository repo;
  std::uint32_t in = 0;
  std::uint32_t out = 0;
  AdrServer server;

  /// `cache_bytes_per_node` sizes the cross-query chunk cache; 0
  /// disables it (fault tests disable it so every fetch exercises the
  /// storage.fetch point instead of being served warm).  The marginal
  /// cache follows the same knob: a repeated query it serves from
  /// cached partials would skip the storage path entirely.
  explicit ServerFixture(std::uint64_t cache_bytes_per_node = 64ull << 20)
      : repo([cache_bytes_per_node] {
          RepositoryConfig cfg;
          cfg.backend = RepositoryConfig::Backend::kThreads;
          cfg.num_nodes = 2;
          cfg.memory_per_node = 1 << 20;
          cfg.chunk_cache_bytes_per_node = cache_bytes_per_node;
          cfg.marginal_cache_bytes = cache_bytes_per_node;
          return cfg;
        }()),
        server(repo, /*port=*/0) {
    const Rect domain = Rect::cube(2, 0.0, 1.0);
    std::vector<Chunk> inputs;
    for (int iy = 0; iy < 4; ++iy) {
      for (int ix = 0; ix < 4; ++ix) {
        ChunkMeta meta;
        meta.mbr = adr::testing::cell(domain, 4, ix, iy);
        std::vector<std::uint64_t> vals = {static_cast<std::uint64_t>(iy * 4 + ix)};
        std::vector<std::byte> payload(sizeof(std::uint64_t));
        std::memcpy(payload.data(), vals.data(), payload.size());
        inputs.emplace_back(meta, std::move(payload));
      }
    }
    std::vector<Chunk> outputs;
    for (int iy = 0; iy < 2; ++iy) {
      for (int ix = 0; ix < 2; ++ix) {
        ChunkMeta meta;
        meta.mbr = adr::testing::cell(domain, 2, ix, iy);
        outputs.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
      }
    }
    in = repo.create_dataset("in", domain, std::move(inputs));
    out = repo.create_dataset("out", domain, std::move(outputs));
    server.start();
  }

  Query basic_query() const {
    Query q;
    q.input_dataset = in;
    q.output_dataset = out;
    q.range = Rect::cube(2, 0.0, 1.0);
    q.aggregation = "sum-count-max";
    q.delivery = OutputDelivery::kReturnToClient;
    return q;
  }
};

TEST(ClientServer, QueryOverLoopback) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  const WireResult result = client.submit(fx.basic_query());
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_EQ(result.outputs.size(), 4u);
  std::uint64_t sum = 0;
  for (const Chunk& c : result.outputs) sum += c.as<std::uint64_t>()[0];
  EXPECT_EQ(sum, 120u);  // sum of 0..15
  EXPECT_EQ(fx.server.queries_served(), 1u);
}

TEST(ClientServer, MultipleQueriesOnOneConnection) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  for (StrategyKind s : {StrategyKind::kFRA, StrategyKind::kSRA, StrategyKind::kDA}) {
    Query q = fx.basic_query();
    q.strategy = s;
    const WireResult result = client.submit(q);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(result.strategy, s);
  }
  EXPECT_EQ(fx.server.queries_served(), 3u);
}

TEST(ClientServer, SequentialClients) {
  ServerFixture fx;
  for (int c = 0; c < 3; ++c) {
    AdrClient client(fx.server.port());
    const WireResult result = client.submit(fx.basic_query());
    EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(fx.server.queries_served(), 3u);
}

TEST(ClientServer, ServerSideErrorReturnedToClient) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  Query q = fx.basic_query();
  q.aggregation = "no-such-op";
  const WireResult result = client.submit(q);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown aggregation"), std::string::npos);
  // The connection survives an error; a good query still works.
  EXPECT_TRUE(client.submit(fx.basic_query()).ok());
}

TEST(ClientServer, StopUnblocksAndRefusesNewClients) {
  ServerFixture fx;
  const std::uint16_t port = fx.server.port();
  fx.server.stop();
  EXPECT_THROW(AdrClient{port}, std::runtime_error);
}

TEST(ClientServer, StatsEndpointReturnsLiveMetrics) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  ASSERT_TRUE(client.submit(fx.basic_query()).ok());

  const WireStatsReply stats = client.stats();
  std::string err;
  ASSERT_TRUE(adr::testing::is_valid_json(stats.metrics_json, &err)) << err;
  EXPECT_TRUE(stats.trace_json.empty());  // not requested

  // The serving stack's series are present and alive: metrics are
  // process-cumulative, so after one query on this connection the
  // submit histogram and server counters must be nonzero.
  const std::string& json = stats.metrics_json;
  EXPECT_NE(json.find("\"server.queries_served\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"server.connections_accepted\":"), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.completed\":"), std::string::npos);
  EXPECT_NE(json.find("\"submit.latency_s\""), std::string::npos);
  EXPECT_NE(json.find("\"executor_pool.leases\":"), std::string::npos);
  EXPECT_NE(json.find("\"chunk_cache.hits\":"), std::string::npos);
  EXPECT_EQ(json.find("\"submit.latency_s\":{\"count\":0"), std::string::npos)
      << "submit latency histogram should have samples: " << json;

  // Queries and stats requests interleave on one connection.
  EXPECT_TRUE(client.submit(fx.basic_query()).ok());
  EXPECT_TRUE(client.connected());
}

TEST(ClientServer, StatsIncludesTraceWhenEnabled) {
  obs::tracer().enable(4096);
  {
    ServerFixture fx;
    AdrClient client(fx.server.port());
    ASSERT_TRUE(client.submit(fx.basic_query()).ok());

    const WireStatsReply stats = client.stats(/*include_trace=*/true);
    std::string err;
    ASSERT_TRUE(adr::testing::is_valid_json(stats.metrics_json, &err)) << err;
    ASSERT_FALSE(stats.trace_json.empty());
    ASSERT_TRUE(adr::testing::is_valid_json(stats.trace_json, &err)) << err;
    EXPECT_NE(stats.trace_json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(stats.trace_json.find("\"name\":\"queued\""), std::string::npos);
    EXPECT_NE(stats.trace_json.find("\"name\":\"planned\""), std::string::npos);
    EXPECT_NE(stats.trace_json.find("\"name\":\"reply\""), std::string::npos);
  }
  obs::tracer().disable();
  obs::tracer().clear();
}

TEST(ClientServer, BusyRefusalCarriesRetryAfterHint) {
  ServerFixture fx;
  AdrServer tight(fx.repo, /*port=*/0, ComputeCosts{}, /*max_connections=*/1);
  tight.start();

  AdrClient first(tight.port());
  // A served query guarantees the first connection is registered before
  // the second one arrives (connect() alone can race the accept loop).
  ASSERT_TRUE(first.submit(fx.basic_query()).ok());

  AdrClient second(tight.port());
  const WireResult refusal = second.submit(fx.basic_query());
  ASSERT_TRUE(refusal.server_busy());
  EXPECT_GE(refusal.retry_after_ms, 25u);
  EXPECT_LE(refusal.retry_after_ms, 10000u);
  EXPECT_FALSE(second.connected());  // busy refusal closes the connection
  tight.stop();
}

TEST(ClientServer, ConnectToClosedPortFails) {
  // An ephemeral port that nothing listens on.
  Repository repo([] {
    RepositoryConfig cfg;
    cfg.num_nodes = 1;
    return cfg;
  }());
  AdrServer probe(repo, 0);
  const std::uint16_t dead_port = probe.port();
  probe.stop();  // release without ever starting
  EXPECT_THROW(AdrClient{dead_port}, std::runtime_error);
}

// --------------------------------------------- fault-injected serving
//
// Deterministic replacements for the old sleep-and-hope retry loops:
// the fault registry drops replies / fails fetches on purpose, and the
// retrying client must absorb every injected failure.  The
// FaultServing.* suite is a ThreadSanitizer target (see
// .github/workflows/ci.yml).

std::uint64_t output_sum(const WireResult& result) {
  std::uint64_t sum = 0;
  for (const Chunk& c : result.outputs) sum += c.as<std::uint64_t>()[0];
  return sum;
}

/// Output payloads keyed by chunk id — delivery order varies with node
/// scheduling, so byte-identity is asserted per chunk, not positionally.
std::map<std::uint32_t, std::vector<std::byte>> outputs_by_id(
    const WireResult& result) {
  std::map<std::uint32_t, std::vector<std::byte>> bytes;
  for (const Chunk& c : result.outputs) bytes[c.meta().id.index] = c.payload();
  return bytes;
}

TEST(FaultServing, ClientRetriesDroppedReplyAndSucceeds) {
  ServerFixture fx;
  fault::ScopedFaultPlan plan(/*seed=*/31);
  fault::FaultSpec drop;
  drop.trigger = fault::Trigger::kOneShot;  // exactly the first reply dies
  plan.arm("net.reply_drop", drop);

  const std::uint64_t retries_before =
      obs::metrics().counter("client.retries").value();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(2);
  policy.seed = 1;
  AdrClient client(fx.server.port(), policy);
  const WireResult result = client.submit(fx.basic_query());
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.attempts, 2u);  // one drop, one clean resubmission
  EXPECT_EQ(output_sum(result), 120u);
  EXPECT_EQ(fault::faults().stats("net.reply_drop").fires, 1u);
  EXPECT_GE(obs::metrics().counter("client.retries").value(),
            retries_before + 1);
}

TEST(FaultServing, NonIdempotentPolicyDoesNotRetryTransportLoss) {
  ServerFixture fx;
  fault::ScopedFaultPlan plan(/*seed=*/32);
  fault::FaultSpec drop;
  drop.trigger = fault::Trigger::kOneShot;
  plan.arm("net.reply_drop", drop);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.idempotent = false;  // a re-execution could double-apply
  policy.seed = 1;
  AdrClient client(fx.server.port(), policy);
  const WireResult result = client.submit(fx.basic_query());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code, StatusCode::kUnavailable);
  EXPECT_EQ(result.attempts, 1u);
}

TEST(FaultServing, BusyRefusalIsRetriedAfterServerHint) {
  ServerFixture fx;
  AdrServer tight(fx.repo, /*port=*/0, ComputeCosts{}, /*max_connections=*/1);
  tight.start();

  AdrClient holder(tight.port());
  ASSERT_TRUE(holder.submit(fx.basic_query()).ok());  // slot registered

  // The retrying client's own backoff is a token 1ms with no jitter, so
  // any wait beyond that is the server's retry_after hint (>= 25ms by
  // the hint clamp) being honored.
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.jitter = 0.0;
  policy.seed = 2;
  AdrClient second(tight.port(), policy);
  const std::uint64_t gave_up_before =
      obs::metrics().counter("client.gave_up").value();
  const auto start = std::chrono::steady_clock::now();
  const WireResult result = second.submit(fx.basic_query());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The holder never releases its slot, so both attempts are refused —
  // but the retry slept through the hint first.
  EXPECT_TRUE(result.server_busy());
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_GE(obs::metrics().counter("client.gave_up").value(),
            gave_up_before + 1);
  tight.stop();
}

TEST(FaultServing, AsyncQueueDrainsThroughRetries) {
  ServerFixture fx;
  fault::ScopedFaultPlan plan(/*seed=*/33);
  fault::FaultSpec drop;
  drop.trigger = fault::Trigger::kEveryNth;
  drop.every_nth = 3;
  drop.max_fires = 2;
  plan.arm("net.reply_drop", drop);

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::milliseconds(2);
  policy.max_pending = 4;
  policy.seed = 3;
  AdrClient client(fx.server.port(), policy);
  std::vector<std::future<WireResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(client.submit_async(fx.basic_query()));
  }
  for (auto& f : futures) {
    const WireResult result = f.get();
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(output_sum(result), 120u);
  }
  EXPECT_EQ(client.pending(), 0u);
}

TEST(FaultServing, PendingQueueIsBounded) {
  // No server behind this port: the sender thread gets stuck retrying
  // the first query (long backoff), so the queue demonstrably fills.
  Repository repo([] {
    RepositoryConfig cfg;
    cfg.num_nodes = 1;
    return cfg;
  }());
  AdrServer probe(repo, 0);
  const std::uint16_t dead_port = probe.port();
  probe.stop();

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(400);
  policy.max_backoff = std::chrono::milliseconds(400);
  policy.jitter = 0.0;
  policy.max_pending = 1;
  policy.seed = 4;
  AdrClient client(dead_port, policy);

  Query q;  // never reaches a server; content is irrelevant
  q.range = Rect::cube(2, 0.0, 1.0);
  auto first = client.submit_async(q);
  // Wait for the sender to take the first item into its backoff sleep.
  for (int i = 0; i < 200 && client.pending() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(client.pending(), 0u);
  auto second = client.submit_async(q);  // fills the single slot
  EXPECT_EQ(client.pending(), 1u);
  // Queue full: the non-blocking submit refuses instead of queueing.
  EXPECT_FALSE(client.try_submit_async(q).has_value());

  const WireResult r1 = first.get();
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status.code, StatusCode::kUnavailable);
  EXPECT_EQ(r1.attempts, 3u);  // every attempt failed to connect
  // The second future resolves too — either exhausted the same way or
  // failed by the destructor's drain; no future may dangle.
  const WireResult r2 = second.get();
  EXPECT_FALSE(r2.ok());
}

TEST(FaultServing, EightClientsSurviveSeededFaultPlanByteIdentically) {
  // The acceptance bar: under a seeded plan injecting storage fetch
  // errors and dropped replies, 8 concurrent retrying clients all
  // succeed with results byte-identical to a fault-free run — and the
  // whole experiment replays identically under the same seed.
  ServerFixture fx(/*cache_bytes_per_node=*/0);  // every fetch hits disk

  // Golden run before any fault is armed.
  std::map<std::uint32_t, std::vector<std::byte>> golden;
  {
    AdrClient client(fx.server.port());
    const WireResult clean = client.submit(fx.basic_query());
    ASSERT_TRUE(clean.ok()) << clean.status.to_string();
    golden = outputs_by_id(clean);
    ASSERT_EQ(golden.size(), 4u);
  }

  const auto run_experiment = [&]() {
    fault::ScopedFaultPlan plan(/*seed=*/0xfa1);
    fault::FaultSpec fetch;
    fetch.trigger = fault::Trigger::kProbability;
    fetch.probability = 0.25;  // >= 10% of storage fetches die...
    fetch.max_fires = 10;      // ...until the budget is spent
    plan.arm("storage.fetch", fetch);
    fault::FaultSpec drop;
    drop.trigger = fault::Trigger::kEveryNth;
    drop.every_nth = 3;
    drop.max_fires = 4;
    plan.arm("net.reply_drop", drop);

    constexpr int kClients = 8;
    std::vector<std::thread> workers;
    std::vector<WireResult> results(kClients);
    for (int c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c]() {
        RetryPolicy policy;
        policy.max_attempts = 10;
        policy.initial_backoff = std::chrono::milliseconds(2);
        policy.max_backoff = std::chrono::milliseconds(50);
        policy.seed = static_cast<std::uint64_t>(c);
        AdrClient client(fx.server.port(), policy);
        results[static_cast<std::size_t>(c)] = client.submit(fx.basic_query());
      });
    }
    for (auto& w : workers) w.join();

    // Zero client-visible failures, every result byte-identical.
    for (int c = 0; c < kClients; ++c) {
      const WireResult& r = results[static_cast<std::size_t>(c)];
      ASSERT_TRUE(r.ok()) << "client " << c << ": " << r.status.to_string();
      EXPECT_EQ(outputs_by_id(r), golden) << "client " << c;
    }
    // The plan drew blood: the faults actually exercised the paths.
    const fault::PointStats fetch_stats =
        fault::faults().stats("storage.fetch");
    const fault::PointStats drop_stats =
        fault::faults().stats("net.reply_drop");
    EXPECT_GT(fetch_stats.hits, 0u);
    EXPECT_GT(fetch_stats.fires, 0u);
    EXPECT_GT(drop_stats.fires, 0u);
  };

  run_experiment();
  run_experiment();  // same seed, same outcome: replayable by design
}

// ------------------------------------------------ event-loop serving
//
// The C10K front end: one thread owns every socket, so these tests pin
// down the behaviors a thread-per-connection server got for free (and
// the ones it got wrong).  The EventLoopServing.* suite is a
// ThreadSanitizer target (see .github/workflows/ci.yml).

/// Plain TCP connect with none of AdrClient's protocol behavior: the
/// peer for tests that need a client that misbehaves (never reads,
/// half-sends a frame, or just sits idle).
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(EventLoopServing, ManyIdleConnectionsDoNotStarveServing) {
  // Hundreds of idle connections parked on the loop while a live client
  // keeps querying: the loop's readiness model means idle sockets cost
  // nothing, where thread-per-connection burned a stack each.
  ServerFixture fx;
  AdrServer big(fx.repo, /*port=*/0, ComputeCosts{}, /*max_connections=*/512);
  big.start();

  std::vector<int> idle;
  for (int i = 0; i < 300; ++i) {
    const int fd = raw_connect(big.port());
    ASSERT_GE(fd, 0) << "connect " << i << " failed";
    idle.push_back(fd);
  }
  // The loop accepts asynchronously; wait for the full herd.
  for (int i = 0; i < 2000 && big.active_connections() < idle.size(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(big.active_connections(), idle.size());

  AdrClient client(big.port());
  for (int i = 0; i < 3; ++i) {
    const WireResult result = client.submit(fx.basic_query());
    ASSERT_TRUE(result.ok()) << result.status.to_string();
  }
  EXPECT_EQ(big.queries_served(), 3u);

  for (const int fd : idle) ::close(fd);
  // The loop notices every close and releases the slots.
  for (int i = 0; i < 2000 && big.active_connections() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(big.active_connections(), 1u);
  big.stop();
}

TEST(EventLoopServing, MidFrameClientCloseReleasesTheConnection) {
  ServerFixture fx;
  const int fd = raw_connect(fx.server.port());
  ASSERT_GE(fd, 0);
  // Promise a 64-byte frame, deliver 10, vanish.
  std::vector<std::byte> torn(14);
  torn[0] = std::byte{64};  // little-endian length 64, bytes 1..3 zero
  ASSERT_EQ(::send(fd, torn.data(), torn.size(), 0),
            static_cast<ssize_t>(torn.size()));
  for (int i = 0; i < 1000 && fx.server.active_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::close(fd);
  for (int i = 0; i < 2000 && fx.server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fx.server.active_connections(), 0u);
  // The half-frame never became a query, and serving is unharmed.
  EXPECT_EQ(fx.server.queries_served(), 0u);
  AdrClient client(fx.server.port());
  EXPECT_TRUE(client.submit(fx.basic_query()).ok());
}

TEST(EventLoopServing, StopDuringPartialFrameReturnsPromptly) {
  ServerFixture fx;
  const int fd = raw_connect(fx.server.port());
  ASSERT_GE(fd, 0);
  std::byte half_header[2] = {std::byte{8}, std::byte{0}};
  ASSERT_EQ(::send(fd, half_header, 2, 0), 2);
  for (int i = 0; i < 1000 && fx.server.active_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The peer neither completes its frame nor closes: stop() must cut it
  // off at the drain deadline, not wait for it.
  const auto start = std::chrono::steady_clock::now();
  fx.server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  EXPECT_EQ(fx.server.active_connections(), 0u);
  ::close(fd);
}

TEST(EventLoopServing, RefusedPeerNeverReadsDoesNotBlockActiveConnections) {
  // Regression: the refusal path once did a blocking busy-frame write
  // plus an up-to-200ms drain read while holding the connection lock, so
  // one refused peer that never read froze active_connections() (and
  // stop()) for the whole drain.  Refusal I/O is now queued, non-blocking
  // and deadline-bounded, off every lock.
  ServerFixture fx;
  AdrServer tight(fx.repo, /*port=*/0, ComputeCosts{}, /*max_connections=*/1);
  tight.start();
  AdrClient holder(tight.port());
  ASSERT_TRUE(holder.submit(fx.basic_query()).ok());  // slot registered

  const int refused = raw_connect(tight.port());
  ASSERT_GE(refused, 0);
  // Hammer active_connections() through the refusal's whole drain
  // window; every call must return immediately.
  std::chrono::steady_clock::duration worst{};
  for (int i = 0; i < 60; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_LE(tight.active_connections(), 1u);
    worst = std::max(worst, std::chrono::steady_clock::now() - t0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LT(worst, std::chrono::milliseconds(100));
  EXPECT_GE(tight.connections_refused(), 1u);

  // The busy frame still reached the peer (refusal is an answer, not a
  // slammed door), even though the peer never read during the drain.
  std::vector<std::byte> payload;
  ASSERT_TRUE(read_frame(refused, payload));
  const WireResult busy = decode_result(payload);
  EXPECT_TRUE(busy.server_busy());
  ::close(refused);

  // The holder was never disturbed.
  EXPECT_TRUE(holder.submit(fx.basic_query()).ok());
  tight.stop();
}

TEST(EventLoopServing, AcceptErrorsBackOffAndRecover) {
  // Regression: persistent accept() failure (the EMFILE storm) used to
  // busy-spin the accept loop at 100% CPU.  With the injected net.accept
  // fault the loop must count the errors, back off, and accept the
  // still-queued connection once the failures stop.
  ServerFixture fx;
  const std::uint64_t errors_before =
      obs::metrics().counter("server.accept_errors").value();

  fault::ScopedFaultPlan plan(/*seed=*/41);
  fault::FaultSpec accept_fail;
  accept_fail.trigger = fault::Trigger::kAlways;
  accept_fail.max_fires = 3;
  plan.arm("net.accept", accept_fail);

  // The TCP connect lands in the kernel backlog immediately; the query
  // is served only after the loop survives three injected accept
  // failures (1+2+4ms of backoff) and accepts for real.
  AdrClient client(fx.server.port());
  const WireResult result = client.submit(fx.basic_query());
  ASSERT_TRUE(result.ok()) << result.status.to_string();

  EXPECT_EQ(fault::faults().stats("net.accept").fires, 3u);
  EXPECT_EQ(obs::metrics().counter("server.accept_errors").value(),
            errors_before + 3);
}

TEST(EventLoopServing, StatsAtCapacityReportsBusyNotWireError) {
  // Regression: a stats request against a server at its connection cap
  // is answered with a busy *result* frame; decode_stats_reply used to
  // throw an opaque "wire: not a stats reply".  The client now surfaces
  // the typed refusal with the server's retry-after hint.
  ServerFixture fx;
  AdrServer tight(fx.repo, /*port=*/0, ComputeCosts{}, /*max_connections=*/1);
  tight.start();
  AdrClient holder(tight.port());
  ASSERT_TRUE(holder.submit(fx.basic_query()).ok());  // slot registered

  AdrClient second(tight.port());
  try {
    second.stats();
    FAIL() << "stats() at the connection cap should throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kBusy);
    EXPECT_NE(std::string(e.what()).find("retry after"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(second.connected());
  tight.stop();
}

}  // namespace
}  // namespace adr::net
