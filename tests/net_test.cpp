#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "test_helpers.hpp"

namespace adr::net {
namespace {

// ------------------------------------------------------------- wire

TEST(Wire, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-3.25);
  w.str("hello adr");
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.bytes(blob);
  w.rect(Rect(Point{1.0, -2.0, 3.0}, Point{4.0, 5.0, 6.0}));

  const auto buffer = w.take();
  Reader r(buffer);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.str(), "hello adr");
  EXPECT_EQ(r.bytes(), blob);
  const Rect rect = r.rect();
  EXPECT_EQ(rect.dims(), 3);
  EXPECT_DOUBLE_EQ(rect.lo()[1], -2.0);
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedFrameThrows) {
  Writer w;
  w.u64(42);
  auto buffer = w.take();
  buffer.pop_back();
  Reader r(buffer);
  EXPECT_THROW(r.u64(), WireError);
}

TEST(Wire, QueryRoundTrip) {
  Query q;
  q.input_dataset = 3;
  q.extra_input_datasets = {7, 9};
  q.output_dataset = 4;
  q.range = Rect(Point{-180.0, -90.0, 0.0}, Point{180.0, 90.0, 10.0});
  q.map_function = "identity";
  q.aggregation = "sum-count-max";
  q.strategy = StrategyKind::kSRA;
  q.tiling_order = TilingOrder::kRowMajor;
  q.delivery = OutputDelivery::kReturnToClient;
  q.write_output = true;
  q.seed = 12345;

  const Query back = decode_query(encode_query(q));
  EXPECT_EQ(back.input_dataset, 3u);
  EXPECT_EQ(back.extra_input_datasets, (std::vector<std::uint32_t>{7, 9}));
  EXPECT_EQ(back.output_dataset, 4u);
  EXPECT_EQ(back.range, q.range);
  EXPECT_EQ(back.map_function, "identity");
  EXPECT_EQ(back.aggregation, "sum-count-max");
  EXPECT_EQ(back.strategy, StrategyKind::kSRA);
  EXPECT_EQ(back.tiling_order, TilingOrder::kRowMajor);
  EXPECT_EQ(back.delivery, OutputDelivery::kReturnToClient);
  EXPECT_EQ(back.seed, 12345u);
}

TEST(Wire, ResultRoundTripWithChunks) {
  WireResult result;
  result.strategy = StrategyKind::kDA;
  result.tiles = 5;
  result.ghost_chunks = 99;
  result.chunk_reads = 1234;
  result.total_s = 17.5;
  result.bytes_communicated = 1ull << 40;
  ChunkMeta meta;
  meta.id = {2, 6};
  meta.bytes = 8;
  meta.mbr = Rect::cube(2, 0.0, 1.0);
  std::vector<std::byte> payload(8, std::byte{0x5a});
  result.outputs.emplace_back(meta, payload);

  const WireResult back = decode_result(encode_result(result));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.strategy, StrategyKind::kDA);
  EXPECT_EQ(back.tiles, 5);
  EXPECT_EQ(back.ghost_chunks, 99u);
  EXPECT_EQ(back.bytes_communicated, 1ull << 40);
  ASSERT_EQ(back.outputs.size(), 1u);
  EXPECT_EQ(back.outputs[0].meta().id, (ChunkId{2, 6}));
  EXPECT_EQ(back.outputs[0].payload(), payload);
}

TEST(Wire, ErrorResultRoundTrip) {
  WireResult result;
  result.ok = false;
  result.error = "unknown aggregation";
  const WireResult back = decode_result(encode_result(result));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "unknown aggregation");
}

TEST(Wire, QueryFrameRejectedAsResult) {
  Query q;
  q.range = Rect::cube(2, 0.0, 1.0);
  EXPECT_THROW(decode_result(encode_query(q)), WireError);
  WireResult result;
  EXPECT_THROW(decode_query(encode_result(result)), WireError);
}

// ----------------------------------------------------- client/server

struct ServerFixture {
  Repository repo;
  std::uint32_t in = 0;
  std::uint32_t out = 0;
  AdrServer server;

  ServerFixture()
      : repo([] {
          RepositoryConfig cfg;
          cfg.backend = RepositoryConfig::Backend::kThreads;
          cfg.num_nodes = 2;
          cfg.memory_per_node = 1 << 20;
          return cfg;
        }()),
        server(repo, /*port=*/0) {
    const Rect domain = Rect::cube(2, 0.0, 1.0);
    std::vector<Chunk> inputs;
    for (int iy = 0; iy < 4; ++iy) {
      for (int ix = 0; ix < 4; ++ix) {
        ChunkMeta meta;
        meta.mbr = adr::testing::cell(domain, 4, ix, iy);
        std::vector<std::uint64_t> vals = {static_cast<std::uint64_t>(iy * 4 + ix)};
        std::vector<std::byte> payload(sizeof(std::uint64_t));
        std::memcpy(payload.data(), vals.data(), payload.size());
        inputs.emplace_back(meta, std::move(payload));
      }
    }
    std::vector<Chunk> outputs;
    for (int iy = 0; iy < 2; ++iy) {
      for (int ix = 0; ix < 2; ++ix) {
        ChunkMeta meta;
        meta.mbr = adr::testing::cell(domain, 2, ix, iy);
        outputs.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
      }
    }
    in = repo.create_dataset("in", domain, std::move(inputs));
    out = repo.create_dataset("out", domain, std::move(outputs));
    server.start();
  }

  Query basic_query() const {
    Query q;
    q.input_dataset = in;
    q.output_dataset = out;
    q.range = Rect::cube(2, 0.0, 1.0);
    q.aggregation = "sum-count-max";
    q.delivery = OutputDelivery::kReturnToClient;
    return q;
  }
};

TEST(ClientServer, QueryOverLoopback) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  const WireResult result = client.submit(fx.basic_query());
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.outputs.size(), 4u);
  std::uint64_t sum = 0;
  for (const Chunk& c : result.outputs) sum += c.as<std::uint64_t>()[0];
  EXPECT_EQ(sum, 120u);  // sum of 0..15
  EXPECT_EQ(fx.server.queries_served(), 1u);
}

TEST(ClientServer, MultipleQueriesOnOneConnection) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  for (StrategyKind s : {StrategyKind::kFRA, StrategyKind::kSRA, StrategyKind::kDA}) {
    Query q = fx.basic_query();
    q.strategy = s;
    const WireResult result = client.submit(q);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, s);
  }
  EXPECT_EQ(fx.server.queries_served(), 3u);
}

TEST(ClientServer, SequentialClients) {
  ServerFixture fx;
  for (int c = 0; c < 3; ++c) {
    AdrClient client(fx.server.port());
    const WireResult result = client.submit(fx.basic_query());
    EXPECT_TRUE(result.ok);
  }
  EXPECT_EQ(fx.server.queries_served(), 3u);
}

TEST(ClientServer, ServerSideErrorReturnedToClient) {
  ServerFixture fx;
  AdrClient client(fx.server.port());
  Query q = fx.basic_query();
  q.aggregation = "no-such-op";
  const WireResult result = client.submit(q);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown aggregation"), std::string::npos);
  // The connection survives an error; a good query still works.
  EXPECT_TRUE(client.submit(fx.basic_query()).ok);
}

TEST(ClientServer, StopUnblocksAndRefusesNewClients) {
  ServerFixture fx;
  const std::uint16_t port = fx.server.port();
  fx.server.stop();
  EXPECT_THROW(AdrClient{port}, std::runtime_error);
}

TEST(ClientServer, ConnectToClosedPortFails) {
  // An ephemeral port that nothing listens on.
  Repository repo([] {
    RepositoryConfig cfg;
    cfg.num_nodes = 1;
    return cfg;
  }());
  AdrServer probe(repo, 0);
  const std::uint16_t dead_port = probe.port();
  probe.stop();  // release without ever starting
  EXPECT_THROW(AdrClient{dead_port}, std::runtime_error);
}

}  // namespace
}  // namespace adr::net
