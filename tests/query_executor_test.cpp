#include "core/exec/query_executor.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"
#include "sim/cluster.hpp"
#include "storage/loader.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using testing::GridScenario;
using testing::make_grid_scenario;

// Full pipeline fixture: a grid scenario with real uint64 payloads loaded
// onto a disk farm, planned and executed on either substrate.
struct Pipeline {
  GridScenario scenario;
  std::unique_ptr<MemoryChunkStore> store;
  Dataset input;
  Dataset output;
  SumCountMaxOp op;
  int nodes = 0;
  int values_per_chunk = 0;

  PlannedQuery plan(StrategyKind strategy, std::uint64_t memory) const {
    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = Rect::cube(2, 0.0, 1.0);
    req.op = &op;
    req.num_nodes = nodes;
    req.disks_per_node = 1;
    req.memory_per_node = memory;
    req.strategy = strategy;
    return plan_query(req);
  }
};

Pipeline make_pipeline(int out_n, int in_per_out, int nodes, int values = 4) {
  Pipeline p;
  p.nodes = nodes;
  p.values_per_chunk = values;
  p.scenario = make_grid_scenario(out_n, in_per_out);
  p.store = std::make_unique<MemoryChunkStore>(nodes);

  std::vector<Chunk> inputs;
  for (std::uint32_t i = 0; i < p.scenario.input_mbrs.size(); ++i) {
    ChunkMeta meta;
    meta.mbr = p.scenario.input_mbrs[i];
    std::vector<std::uint64_t> vals(static_cast<size_t>(values));
    for (int j = 0; j < values; ++j) {
      vals[static_cast<size_t>(j)] = i * 100 + static_cast<std::uint64_t>(j);
    }
    std::vector<std::byte> payload(vals.size() * sizeof(std::uint64_t));
    std::memcpy(payload.data(), vals.data(), payload.size());
    inputs.emplace_back(meta, std::move(payload));
  }
  std::vector<Chunk> outputs;
  for (const Rect& mbr : p.scenario.output_mbrs) {
    ChunkMeta meta;
    meta.mbr = mbr;
    meta.bytes = 24;  // sum/count/max triple
    outputs.emplace_back(meta);
  }

  LoadOptions options;
  options.decluster.num_disks = nodes;
  p.input = load_dataset(0, "in", Rect::cube(2, 0.0, 1.0), std::move(inputs),
                         *p.store, options);
  p.output = load_dataset(1, "out", Rect::cube(2, 0.0, 1.0), std::move(outputs),
                          *p.store, options);
  return p;
}

struct Scm {
  std::uint64_t sum, count, max;
  bool operator==(const Scm&) const = default;
};

/// Reads back all finalized output chunks from the store.
std::map<std::uint32_t, Scm> read_outputs(const Pipeline& p) {
  std::map<std::uint32_t, Scm> out;
  for (std::uint32_t o = 0; o < p.output.num_chunks(); ++o) {
    const ChunkMeta& meta = p.output.chunk(o);
    auto chunk = p.store->get(meta.disk, meta.id);
    if (!chunk || chunk->payload().size() < sizeof(Scm)) continue;
    Scm s{};
    std::memcpy(&s, chunk->payload().data(), sizeof(s));
    out[o] = s;
  }
  return out;
}

/// Sequential reference: aggregate every mapped edge directly.
std::map<std::uint32_t, Scm> reference_outputs(const Pipeline& p) {
  std::map<std::uint32_t, Scm> out;
  for (std::uint32_t o = 0; o < p.output.num_chunks(); ++o) out[o] = Scm{0, 0, 0};
  for (std::uint32_t i = 0; i < p.input.num_chunks(); ++i) {
    const ChunkMeta& meta = p.input.chunk(i);
    auto chunk = p.store->get(meta.disk, meta.id);
    for (std::uint32_t o : p.scenario.mapping.in_to_out[i]) {
      Scm& s = out[o];
      for (std::uint64_t v : chunk->as<std::uint64_t>()) {
        s.sum += v;
        s.count += 1;
        s.max = std::max(s.max, v);
      }
    }
  }
  return out;
}

ExecStats run_threads(Pipeline& p, const PlannedQuery& pq, ExecOptions options = {}) {
  ThreadExecutor exec(p.nodes, 1, p.store.get());
  return execute_query(exec, pq, p.input, p.output, &p.op, ComputeCosts{}, 1, options);
}

ExecStats run_sim(Pipeline& p, const PlannedQuery& pq, const ComputeCosts& costs,
                  bool with_store = true, ExecOptions options = {}) {
  sim::ClusterConfig cfg = sim::ibm_sp_profile(p.nodes);
  sim::SimCluster cluster(cfg);
  SimExecutor exec(&cluster, with_store ? p.store.get() : nullptr);
  return execute_query(exec, pq, p.input, p.output,
                       with_store ? &p.op : nullptr, costs, 1, options);
}

class EngineStrategyTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(EngineStrategyTest, ThreadExecutionMatchesSequentialReference) {
  Pipeline p = make_pipeline(4, 2, 4);
  const auto expected = reference_outputs(p);
  const PlannedQuery pq = p.plan(GetParam(), 4 * 24);
  const ExecStats stats = run_threads(p, pq);
  EXPECT_EQ(read_outputs(p), expected);
  EXPECT_EQ(stats.tiles, pq.plan.num_tiles);
}

TEST_P(EngineStrategyTest, MultiTileExecutionCorrect) {
  Pipeline p = make_pipeline(6, 2, 3);
  const auto expected = reference_outputs(p);
  // Tiny memory: many tiles, inputs re-read across tiles.
  const PlannedQuery pq = p.plan(GetParam(), 2 * 24);
  EXPECT_GT(pq.plan.num_tiles, 3);
  run_threads(p, pq);
  EXPECT_EQ(read_outputs(p), expected);
}

TEST_P(EngineStrategyTest, SingleNodeDegenerate) {
  Pipeline p = make_pipeline(3, 2, 1);
  const auto expected = reference_outputs(p);
  const PlannedQuery pq = p.plan(GetParam(), 100 * 24);
  const ExecStats stats = run_threads(p, pq);
  EXPECT_EQ(read_outputs(p), expected);
  EXPECT_EQ(stats.total_bytes_sent(), 0u);
}

TEST_P(EngineStrategyTest, InitFromOutputOffAlsoCorrect) {
  Pipeline p = make_pipeline(4, 2, 4);
  const auto expected = reference_outputs(p);
  const PlannedQuery pq = p.plan(GetParam(), 8 * 24);
  ExecOptions options;
  options.init_from_output = false;
  run_threads(p, pq, options);
  EXPECT_EQ(read_outputs(p), expected);
}

TEST_P(EngineStrategyTest, SimCountsMatchThreadCounts) {
  // The same plan must produce identical chunk reads, aggregation pairs
  // and message counts on both substrates (time differs, work does not).
  Pipeline pt = make_pipeline(4, 2, 4);
  Pipeline ps = make_pipeline(4, 2, 4);
  const PlannedQuery pq_t = pt.plan(GetParam(), 4 * 24);
  const PlannedQuery pq_s = ps.plan(GetParam(), 4 * 24);
  const ExecStats t = run_threads(pt, pq_t);
  const ExecStats s = run_sim(ps, pq_s, ComputeCosts{0.001, 0.001, 0.001, 0.001});
  ASSERT_EQ(t.nodes.size(), s.nodes.size());
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    EXPECT_EQ(t.nodes[n].chunks_read, s.nodes[n].chunks_read) << "node " << n;
    EXPECT_EQ(t.nodes[n].lr_pairs, s.nodes[n].lr_pairs) << "node " << n;
    EXPECT_EQ(t.nodes[n].msgs_sent, s.nodes[n].msgs_sent) << "node " << n;
    EXPECT_EQ(t.nodes[n].bytes_sent, s.nodes[n].bytes_sent) << "node " << n;
    EXPECT_EQ(t.nodes[n].combines, s.nodes[n].combines) << "node " << n;
    EXPECT_EQ(t.nodes[n].outputs, s.nodes[n].outputs) << "node " << n;
  }
}

TEST_P(EngineStrategyTest, PeakAccumulatorWithinBudget) {
  Pipeline p = make_pipeline(6, 2, 3);
  const std::uint64_t memory = 3 * 24;
  const PlannedQuery pq = p.plan(GetParam(), memory);
  const ExecStats stats = run_threads(p, pq);
  for (const NodeStats& n : stats.nodes) {
    EXPECT_LE(n.peak_accum_bytes, memory);
  }
}

TEST_P(EngineStrategyTest, WriteOutputOffLeavesStoreUntouched) {
  Pipeline p = make_pipeline(3, 2, 3);
  const PlannedQuery pq = p.plan(GetParam(), 100 * 24);
  ExecOptions options;
  options.write_output = false;
  const ExecStats stats = run_threads(p, pq, options);
  EXPECT_EQ(stats.nodes[0].chunks_written +
                stats.nodes[1].chunks_written + stats.nodes[2].chunks_written,
            0u);
  // Outputs still contain the zero-initialized originals.
  for (const auto& [o, scm] : read_outputs(p)) {
    EXPECT_EQ(scm.count, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EngineStrategyTest,
                         ::testing::Values(StrategyKind::kFRA, StrategyKind::kSRA,
                                           StrategyKind::kDA, StrategyKind::kHybrid),
                         [](const auto& info) { return to_string(info.param); });

TEST(Engine, AllStrategiesProduceIdenticalOutput) {
  std::map<std::uint32_t, Scm> results[4];
  const StrategyKind kinds[] = {StrategyKind::kFRA, StrategyKind::kSRA,
                                StrategyKind::kDA, StrategyKind::kHybrid};
  for (int k = 0; k < 4; ++k) {
    Pipeline p = make_pipeline(4, 3, 4);
    const PlannedQuery pq = p.plan(kinds[k], 5 * 24);
    run_threads(p, pq);
    results[k] = read_outputs(p);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(results[0], results[3]);
}

TEST(Engine, DaSendsInputsFraSendsGhosts) {
  Pipeline pf = make_pipeline(4, 2, 4);
  Pipeline pd = make_pipeline(4, 2, 4);
  const PlannedQuery fra = pf.plan(StrategyKind::kFRA, 16 * 24);
  const PlannedQuery da = pd.plan(StrategyKind::kDA, 16 * 24);
  const ExecStats sf = run_threads(pf, fra);
  const ExecStats sd = run_threads(pd, da);
  // FRA: ghost-init + ghost-combine messages; 16 outputs x 3 ghosts x 2.
  std::uint64_t fra_msgs = 0, da_msgs = 0;
  for (const auto& n : sf.nodes) fra_msgs += n.msgs_sent;
  for (const auto& n : sd.nodes) da_msgs += n.msgs_sent;
  EXPECT_EQ(fra_msgs, 16u * 3u * 2u);
  // DA: only forwarded inputs.
  std::uint64_t expected_forwards = 0;
  for (const auto& node : da.plan.node_tiles) {
    for (const auto& tile : node) {
      expected_forwards += static_cast<std::uint64_t>(tile.expected_inputs);
    }
  }
  EXPECT_EQ(da_msgs, expected_forwards);
  EXPECT_GT(da_msgs, 0u);
}

TEST(Engine, GlobalCombineCountsMatchPlan) {
  Pipeline p = make_pipeline(4, 2, 4);
  const PlannedQuery pq = p.plan(StrategyKind::kSRA, 16 * 24);
  const ExecStats stats = run_threads(p, pq);
  std::uint64_t combines = 0;
  for (const auto& n : stats.nodes) combines += n.combines;
  EXPECT_EQ(combines, pq.plan.total_ghost_chunks);
}

TEST(Engine, EveryMappedPairAggregatedExactlyOnce) {
  Pipeline p = make_pipeline(5, 2, 3);
  const PlannedQuery pq = p.plan(StrategyKind::kDA, 4 * 24);
  const ExecStats stats = run_threads(p, pq);
  EXPECT_EQ(stats.total_lr_pairs(), p.scenario.mapping.edge_count());
}

TEST(Engine, SimTotalTimeReflectsComputeCosts) {
  Pipeline p = make_pipeline(4, 2, 2);
  const PlannedQuery pq = p.plan(StrategyKind::kFRA, 16 * 24);
  const ComputeCosts cheap{1e-5, 1e-5, 1e-5, 1e-5};
  const ComputeCosts heavy{1e-5, 1e-2, 1e-5, 1e-5};
  Pipeline p2 = make_pipeline(4, 2, 2);
  const PlannedQuery pq2 = p2.plan(StrategyKind::kFRA, 16 * 24);
  const double t_cheap = run_sim(p, pq, cheap).total_s;
  const double t_heavy = run_sim(p2, pq2, heavy).total_s;
  EXPECT_GT(t_heavy, t_cheap);
}

TEST(Engine, PhaseTimesSumToTotalUnderBarriers) {
  Pipeline p = make_pipeline(4, 2, 4);
  const PlannedQuery pq = p.plan(StrategyKind::kFRA, 8 * 24);
  ExecOptions options;
  options.pipeline_tiles = false;  // global phase barriers: spans partition time
  const ExecStats stats =
      run_sim(p, pq, ComputeCosts{0.001, 0.002, 0.001, 0.001}, true, options);
  EXPECT_NEAR(stats.phase_init_s + stats.phase_lr_s + stats.phase_gc_s +
                  stats.phase_oh_s,
              stats.total_s, 1e-6);
}

TEST(Engine, PipeliningNeverSlowerThanBarriers) {
  for (StrategyKind strategy : {StrategyKind::kFRA, StrategyKind::kDA}) {
    Pipeline pa = make_pipeline(6, 2, 3);
    Pipeline pb = make_pipeline(6, 2, 3);
    const PlannedQuery qa = pa.plan(strategy, 3 * 24);
    const PlannedQuery qb = pb.plan(strategy, 3 * 24);
    const ComputeCosts costs{0.001, 0.004, 0.002, 0.001};
    ExecOptions barriers;
    barriers.pipeline_tiles = false;
    const double t_pipe = run_sim(pa, qa, costs).total_s;
    const double t_barrier = run_sim(pb, qb, costs, true, barriers).total_s;
    EXPECT_LE(t_pipe, t_barrier * 1.0001) << to_string(strategy);
  }
}

TEST(Engine, PipeliningPreservesResults) {
  for (bool pipelined : {false, true}) {
    Pipeline p = make_pipeline(5, 2, 4);
    const auto expected = reference_outputs(p);
    const PlannedQuery pq = p.plan(StrategyKind::kSRA, 3 * 24);
    EXPECT_GT(pq.plan.num_tiles, 2);
    ExecOptions options;
    options.pipeline_tiles = pipelined;
    run_threads(p, pq, options);
    EXPECT_EQ(read_outputs(p), expected) << "pipelined=" << pipelined;
  }
}

TEST(Engine, MetadataOnlySimMatchesPayloadCounts) {
  Pipeline pa = make_pipeline(4, 2, 4);
  Pipeline pb = make_pipeline(4, 2, 4);
  const PlannedQuery qa = pa.plan(StrategyKind::kDA, 8 * 24);
  const PlannedQuery qb = pb.plan(StrategyKind::kDA, 8 * 24);
  const ComputeCosts costs{0.001, 0.001, 0.001, 0.001};
  const ExecStats with_store = run_sim(pa, qa, costs, /*with_store=*/true);
  const ExecStats metadata = run_sim(pb, qb, costs, /*with_store=*/false);
  EXPECT_EQ(with_store.total_lr_pairs(), metadata.total_lr_pairs());
  EXPECT_EQ(with_store.total_bytes_sent(), metadata.total_bytes_sent());
  EXPECT_DOUBLE_EQ(with_store.total_s, metadata.total_s);
}

TEST(Engine, QueryWithNoMatchingInputsCompletes) {
  // All input chunks live in the left half of the domain; the query asks
  // for the right half.  Output chunks are selected (they tile the whole
  // domain) but no inputs: every phase must still run and the outputs
  // come back zero-initialized.
  Pipeline p = make_pipeline(4, 2, 3);
  PlanRequest req;
  req.input = &p.input;
  req.output = &p.output;
  req.range = Rect(Point{0.6, 0.0}, Point{0.9, 1.0});
  req.op = &p.op;
  req.num_nodes = p.nodes;
  req.memory_per_node = 100 * 24;
  req.strategy = StrategyKind::kFRA;

  // Rebuild the input dataset confined to the left half.
  std::vector<Chunk> inputs;
  for (int i = 0; i < 6; ++i) {
    ChunkMeta meta;
    meta.mbr = Rect(Point{i * 0.08 + 1e-9, 0.1}, Point{(i + 1) * 0.08 - 1e-9, 0.2});
    std::vector<std::byte> payload(8, std::byte{1});
    inputs.emplace_back(meta, std::move(payload));
  }
  LoadOptions options;
  options.decluster.num_disks = p.nodes;
  MemoryChunkStore store(p.nodes);
  Dataset left = load_dataset(0, "left", Rect::cube(2, 0.0, 1.0), std::move(inputs),
                              store, options);
  req.input = &left;
  const PlannedQuery pq = plan_query(req);
  EXPECT_TRUE(pq.selected_inputs.empty());
  EXPECT_FALSE(pq.selected_outputs.empty());

  ThreadExecutor exec(p.nodes, 1, p.store.get());
  const ExecStats stats =
      execute_query(exec, pq, left, p.output, &p.op, ComputeCosts{}, 1);
  EXPECT_EQ(stats.total_lr_pairs(), 0u);
  std::uint64_t outputs_written = 0;
  for (const auto& n : stats.nodes) outputs_written += n.outputs;
  EXPECT_EQ(outputs_written, pq.selected_outputs.size());
}

TEST(Engine, MismatchedNodeCountRejected) {
  Pipeline p = make_pipeline(3, 2, 3);
  const PlannedQuery pq = p.plan(StrategyKind::kFRA, 16 * 24);
  ThreadExecutor wrong(2, 1, nullptr);
  EXPECT_THROW(execute_query(wrong, pq, p.input, p.output, nullptr, ComputeCosts{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace adr
