#include "storage/chunk.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include <unordered_set>

namespace adr {
namespace {

TEST(ChunkId, OrderingAndEquality) {
  ChunkId a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ChunkId{0, 1}));
  EXPECT_NE(a, b);
}

TEST(ChunkId, HashDistinguishes) {
  std::unordered_set<ChunkId, ChunkIdHash> set;
  set.insert({0, 0});
  set.insert({0, 1});
  set.insert({1, 0});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(ChunkId{0, 1}));
}

TEST(ChunkId, ToString) {
  EXPECT_EQ((ChunkId{2, 7}).to_string(), "d2:c7");
}

TEST(Chunk, MetadataOnlyHasNoPayload) {
  ChunkMeta meta;
  meta.bytes = 4096;
  Chunk chunk(meta);
  EXPECT_FALSE(chunk.has_payload());
  EXPECT_EQ(chunk.meta().bytes, 4096u);
}

TEST(Chunk, PayloadRoundTripAsUint64) {
  std::vector<std::uint64_t> values = {1, 2, 3, 500};
  std::vector<std::byte> payload(values.size() * sizeof(std::uint64_t));
  std::memcpy(payload.data(), values.data(), payload.size());
  Chunk chunk(ChunkMeta{}, std::move(payload));
  ASSERT_TRUE(chunk.has_payload());
  auto view = chunk.as<std::uint64_t>();
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[3], 500u);
}

TEST(Chunk, MutableViewWritesThrough) {
  std::vector<std::byte> payload(2 * sizeof(std::uint64_t), std::byte{0});
  Chunk chunk(ChunkMeta{}, std::move(payload));
  chunk.as<std::uint64_t>()[1] = 99;
  EXPECT_EQ(chunk.as<std::uint64_t>()[1], 99u);
}

TEST(PayloadFromDoubles, PreservesValues) {
  auto payload = payload_from_doubles({1.5, -2.25});
  Chunk chunk(ChunkMeta{}, std::move(payload));
  auto view = chunk.as<double>();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_DOUBLE_EQ(view[0], 1.5);
  EXPECT_DOUBLE_EQ(view[1], -2.25);
}

}  // namespace
}  // namespace adr
