// Logger thread-safety and formatting tests.
//
// The concurrency cases are in the TSan CI job's filter: connection
// threads log while tests flip the level, so set_log_level/log_level
// must be a race-free atomic pair and log_line must keep concurrent
// lines intact.
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace adr {
namespace {

// Restores the default sink and level even when an assertion fails.
class SinkCapture {
 public:
  SinkCapture() : prev_sink_(set_log_sink(&captured_)), prev_level_(log_level()) {}
  ~SinkCapture() {
    set_log_sink(prev_sink_);
    set_log_level(prev_level_);
  }

  std::string text() const { return captured_.str(); }

 private:
  std::ostringstream captured_;
  std::ostream* prev_sink_;
  LogLevel prev_level_;
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    EXPECT_NE(nl, std::string::npos) << "output must end each line with \\n";
    if (nl == std::string::npos) break;
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(Logging, LevelFilterAndPrefix) {
  SinkCapture capture;
  set_log_level(LogLevel::kWarn);
  ADR_DEBUG("dropped debug");
  ADR_INFO("dropped info");
  ADR_WARN("kept warn");
  const auto lines = lines_of(capture.text());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[adr:WARN] kept warn");
}

TEST(Logging, OffSilencesEverything) {
  SinkCapture capture;
  set_log_level(LogLevel::kOff);
  ADR_DEBUG("x");
  ADR_INFO("y");
  ADR_WARN("z");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Logging, SetLogSinkReturnsPrevious) {
  std::ostringstream a;
  std::ostream* original = set_log_sink(&a);
  std::ostringstream b;
  EXPECT_EQ(set_log_sink(&b), &a);
  EXPECT_EQ(set_log_sink(original), &b);
}

// TSan target: loggers on many threads while another thread flips the
// level.  The level pair must be race-free and every emitted line must
// come out whole (single-write composition under the sink mutex).
TEST(Logging, ConcurrentLoggingAndLevelFlips) {
  SinkCapture capture;
  set_log_level(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread flipper([&]() {
    int i = 0;
    while (!stop.load()) {
      set_log_level(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kWarn);
      ++i;
    }
    set_log_level(LogLevel::kInfo);
  });

  std::vector<std::thread> loggers;
  loggers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    loggers.emplace_back([t]() {
      for (int i = 0; i < kLinesPerThread; ++i) {
        ADR_WARN("thread " << t << " line " << i);
      }
    });
  }
  for (auto& th : loggers) th.join();
  stop.store(true);
  flipper.join();

  // kWarn passes both filter settings, so every line must have landed —
  // and landed intact.
  const auto lines = lines_of(capture.text());
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLinesPerThread));
  for (const auto& line : lines) {
    EXPECT_EQ(line.rfind("[adr:WARN] thread ", 0), 0u) << "mangled line: " << line;
  }
}

}  // namespace
}  // namespace adr
