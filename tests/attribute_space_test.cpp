#include "core/attribute_space.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace adr {
namespace {

TEST(IdentityMap, KeepsAllDimsByDefault) {
  IdentityMap map;
  const Rect r = Rect::cube(3, 0.0, 2.0);
  EXPECT_EQ(map.project(r), r);
}

TEST(IdentityMap, DropsTrailingDims) {
  IdentityMap map(2);
  const Rect r(Point{1.0, 2.0, 3.0}, Point{4.0, 5.0, 6.0});
  const Rect p = map.project(r);
  EXPECT_EQ(p.dims(), 2);
  EXPECT_DOUBLE_EQ(p.lo()[0], 1.0);
  EXPECT_DOUBLE_EQ(p.hi()[1], 5.0);
}

TEST(AffineMap, ScaleAndOffset) {
  AffineMap map({2.0, 0.5}, {10.0, -1.0}, 2);
  const Rect r(Point{0.0, 2.0}, Point{1.0, 4.0});
  const Rect p = map.project(r);
  EXPECT_DOUBLE_EQ(p.lo()[0], 10.0);
  EXPECT_DOUBLE_EQ(p.hi()[0], 12.0);
  EXPECT_DOUBLE_EQ(p.lo()[1], 0.0);
  EXPECT_DOUBLE_EQ(p.hi()[1], 1.0);
}

TEST(AffineMap, NegativeScaleFlipsBounds) {
  AffineMap map({-1.0}, {0.0}, 1);
  const Rect r(Point{1.0}, Point{3.0});
  const Rect p = map.project(r);
  EXPECT_DOUBLE_EQ(p.lo()[0], -3.0);
  EXPECT_DOUBLE_EQ(p.hi()[0], -1.0);
  EXPECT_TRUE(p.valid());
}

TEST(AffineMap, SpreadInflates) {
  AffineMap map({1.0, 1.0}, {0.0, 0.0}, 2, {0.5, 0.0});
  const Rect p = map.project(Rect::cube(2, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(p.lo()[0], -0.5);
  EXPECT_DOUBLE_EQ(p.hi()[0], 1.5);
  EXPECT_DOUBLE_EQ(p.lo()[1], 0.0);
}

TEST(AffineMap, DimensionReduction3DTo2D) {
  AffineMap map({1.0, 1.0, 1.0}, {0.0, 0.0, 0.0}, 2);
  const Rect p = map.project(Rect::cube(3, 0.0, 1.0));
  EXPECT_EQ(p.dims(), 2);
}

TEST(AffineMap, RejectsBadArguments) {
  EXPECT_THROW(AffineMap({1.0}, {0.0, 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(AffineMap({1.0}, {0.0}, 2), std::invalid_argument);
  EXPECT_THROW(AffineMap({1.0, 1.0}, {0.0, 0.0}, 2, {0.1}), std::invalid_argument);
}

TEST(AttributeSpaceService, RegistersAndFindsSpaces) {
  AttributeSpaceService svc;
  svc.register_space({"globe", Rect(Point{-180.0, -90.0}, Point{180.0, 90.0})});
  const AttributeSpace* space = svc.find_space("globe");
  ASSERT_NE(space, nullptr);
  EXPECT_EQ(space->dims(), 2);
  EXPECT_EQ(svc.find_space("nope"), nullptr);
  EXPECT_EQ(svc.space_names().size(), 1u);
}

TEST(AttributeSpaceService, RegistersAndFindsMaps) {
  AttributeSpaceService svc;
  svc.register_map(std::make_shared<IdentityMap>(2));
  EXPECT_NE(svc.find_map("identity"), nullptr);
  EXPECT_EQ(svc.find_map("affine"), nullptr);
}

TEST(AttributeSpaceService, ReRegistrationReplaces) {
  AttributeSpaceService svc;
  svc.register_space({"s", Rect::cube(2, 0.0, 1.0)});
  svc.register_space({"s", Rect::cube(3, 0.0, 1.0)});
  EXPECT_EQ(svc.find_space("s")->dims(), 3);
  EXPECT_EQ(svc.space_names().size(), 1u);
}

}  // namespace
}  // namespace adr
