// FairSharedMutex tests: mutual exclusion, and the starvation bound the
// lock exists for — a writer acquires promptly while readers hammer the
// lock in a loop (glibc's reader-preferring rwlock can defer the writer
// indefinitely under the same load).
//
// The FairSharedMutex.* suite is a ThreadSanitizer target (see
// .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/fair_shared_mutex.hpp"
#include "core/frontend.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

TEST(FairSharedMutex, ExclusiveLockExcludesEverything) {
  FairSharedMutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 2000; ++i) {
        std::unique_lock lock(mutex);
        ++counter;  // data race here if exclusion is broken
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8 * 2000);
}

TEST(FairSharedMutex, ReadersActuallyShare) {
  // Three readers hold the lock at once, each waiting until all three are
  // inside.  If the lock wrongly serialized shared owners, they could
  // never all be inside simultaneously and the deadline would expire.
  FairSharedMutex mutex;
  std::atomic<int> inside{0};
  std::atomic<bool> all_inside_at_once{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&]() {
      std::shared_lock lock(mutex);
      ++inside;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (inside.load() < 3 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (inside.load() == 3) all_inside_at_once = true;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(all_inside_at_once.load());
}

TEST(FairSharedMutex, WritersExcludeReaders) {
  FairSharedMutex mutex;
  std::atomic<int> concurrent_readers{0};
  std::atomic<bool> writer_overlap{false};
  std::atomic<int> inside_write{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 500; ++i) {
        std::shared_lock lock(mutex);
        if (inside_write.load() != 0) writer_overlap = true;
        ++concurrent_readers;
        --concurrent_readers;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        std::unique_lock lock(mutex);
        ++inside_write;
        if (concurrent_readers.load() != 0) writer_overlap = true;
        --inside_write;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(writer_overlap.load());
}

TEST(FairSharedMutex, TryLockRespectsState) {
  FairSharedMutex mutex;
  {
    std::unique_lock lock(mutex);
    EXPECT_FALSE(mutex.try_lock());
    EXPECT_FALSE(mutex.try_lock_shared());
  }
  {
    std::shared_lock lock(mutex);
    EXPECT_FALSE(mutex.try_lock());
    EXPECT_TRUE(mutex.try_lock_shared());
    mutex.unlock_shared();
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(FairSharedMutex, WriterNotStarvedByLoopingReaders) {
  // 8 readers re-acquire in a tight loop with zero gaps; a
  // reader-preferring lock can keep the writer waiting for the whole
  // test.  Phase-fairness bounds the writer's wait to the readers
  // already inside, so it must get through almost immediately.
  FairSharedMutex mutex;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load()) {
        std::shared_lock lock(mutex);
      }
    });
  }
  // Let the reader storm reach a steady state.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    std::unique_lock lock(mutex);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stop = true;
  for (auto& t : readers) t.join();
  // Generous bound: 20 writer acquisitions under reader fire should take
  // milliseconds; a starved writer blows far past this.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

// The repository-level guarantee the ISSUE asks for: create_dataset
// (exclusive catalog lock) completes while 8 threads hammer submit
// (shared catalog lock) nonstop.
TEST(FairSharedMutex, CreateDatasetCompletesUnderSubmitStorm) {
  RepositoryConfig cfg;
  cfg.backend = RepositoryConfig::Backend::kThreads;
  cfg.num_nodes = 2;
  cfg.memory_per_node = 1 << 20;
  Repository repo(cfg);

  const Rect domain = Rect::cube(2, 0.0, 1.0);
  std::vector<Chunk> inputs;
  std::vector<Chunk> outputs;
  for (int iy = 0; iy < 4; ++iy) {
    for (int ix = 0; ix < 4; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, 4, ix, iy);
      std::vector<std::byte> payload(16, std::byte{1});
      inputs.emplace_back(meta, std::move(payload));
    }
  }
  for (int iy = 0; iy < 2; ++iy) {
    for (int ix = 0; ix < 2; ++ix) {
      ChunkMeta meta;
      meta.mbr = testing::cell(domain, 2, ix, iy);
      outputs.emplace_back(meta, std::vector<std::byte>(24, std::byte{0}));
    }
  }
  const auto in = repo.create_dataset("in", domain, inputs);
  const auto out = repo.create_dataset("out", domain, outputs);

  Query query;
  query.input_dataset = in;
  query.output_dataset = out;
  query.range = Rect(Point{0.0, 0.0}, Point{0.999, 0.999});
  query.aggregation = "sum-count-max";
  query.delivery = OutputDelivery::kReturnToClient;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&]() {
      while (!stop.load()) {
        if (repo.submit(query).outputs.empty()) ++failures;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The writer side: six registrations while the storm runs.  With the
  // old reader-preferring lock this is the call that could stall forever.
  const auto start = std::chrono::steady_clock::now();
  for (int d = 0; d < 6; ++d) {
    auto extra = inputs;  // fresh copies; create_dataset re-ids them
    repo.create_dataset("extra" + std::to_string(d), domain, std::move(extra));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  stop = true;
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(repo.num_datasets(), 8u);
  EXPECT_LT(elapsed, std::chrono::seconds(30));  // finished, not starved
}

}  // namespace
}  // namespace adr
