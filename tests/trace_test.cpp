// Execution-trace tests: phase spans, Gantt rendering, CSV dump.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/exec/query_executor.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/cluster.hpp"
#include "storage/loader.hpp"
#include "test_helpers.hpp"

namespace adr {
namespace {

using testing::make_grid_scenario;

struct TraceFixture {
  testing::GridScenario scenario = make_grid_scenario(4, 2);
  Dataset input;
  Dataset output;
  PlannedQuery pq;

  explicit TraceFixture(int nodes, StrategyKind strategy) {
    std::vector<ChunkMeta> in_metas, out_metas;
    for (const Rect& mbr : scenario.input_mbrs) {
      ChunkMeta m;
      m.mbr = mbr;
      m.bytes = 64 * 1024;
      in_metas.push_back(m);
    }
    for (const Rect& mbr : scenario.output_mbrs) {
      ChunkMeta m;
      m.mbr = mbr;
      m.bytes = 16 * 1024;
      out_metas.push_back(m);
    }
    DeclusterOptions dopts;
    dopts.num_disks = nodes;
    input = load_dataset_meta(0, "in", scenario.domain, in_metas, dopts);
    output = load_dataset_meta(1, "out", scenario.domain, out_metas, dopts);

    PlanRequest req;
    req.input = &input;
    req.output = &output;
    req.range = scenario.domain;
    req.num_nodes = nodes;
    req.memory_per_node = 4 * 16 * 1024;
    req.strategy = strategy;
    pq = plan_query(req);
  }

  ExecStats run(int nodes, bool record) {
    sim::SimCluster cluster(sim::ibm_sp_profile(nodes));
    SimExecutor exec(&cluster, nullptr);
    ExecOptions options;
    options.record_trace = record;
    return execute_query(exec, pq, input, output, nullptr,
                         ComputeCosts{0.001, 0.002, 0.001, 0.001}, 1, options);
  }
};

TEST(Trace, DisabledByDefault) {
  TraceFixture f(4, StrategyKind::kFRA);
  const ExecStats stats = f.run(4, false);
  EXPECT_TRUE(stats.trace.empty());
  EXPECT_EQ(render_gantt(stats), "");
}

TEST(Trace, RecordsSpansForEveryNodeTilePhase) {
  TraceFixture f(4, StrategyKind::kFRA);
  const ExecStats stats = f.run(4, true);
  // 4 nodes x tiles x 4 phases.
  EXPECT_EQ(stats.trace.size(),
            4u * static_cast<std::size_t>(stats.tiles) * 4u);
  for (const PhaseSpan& span : stats.trace) {
    EXPECT_GE(span.start_s, 0.0);
    EXPECT_LE(span.end_s, stats.total_s + 1e-9);
    EXPECT_GE(span.duration_s(), 0.0);
    EXPECT_GE(span.node, 0);
    EXPECT_LT(span.node, 4);
    EXPECT_GE(span.phase, 0);
    EXPECT_LE(span.phase, 3);
  }
}

TEST(Trace, SpansOfOneNodeDoNotOverlap) {
  TraceFixture f(3, StrategyKind::kDA);
  const ExecStats stats = f.run(3, true);
  for (int n = 0; n < 3; ++n) {
    std::vector<PhaseSpan> spans;
    for (const PhaseSpan& s : stats.trace) {
      if (s.node == n) spans.push_back(s);
    }
    std::sort(spans.begin(), spans.end(),
              [](const PhaseSpan& a, const PhaseSpan& b) {
                return a.start_s < b.start_s;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].start_s, spans[i - 1].end_s - 1e-9);
    }
  }
}

TEST(Trace, GanttHasOneRowPerNode) {
  TraceFixture f(4, StrategyKind::kSRA);
  const ExecStats stats = f.run(4, true);
  const std::string gantt = render_gantt(stats, 60);
  EXPECT_NE(gantt.find("node  0"), std::string::npos);
  EXPECT_NE(gantt.find("node  3"), std::string::npos);
  // Every phase glyph present somewhere for FRA-like strategies.
  EXPECT_NE(gantt.find('I'), std::string::npos);
  EXPECT_NE(gantt.find('L'), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  TraceFixture f(2, StrategyKind::kFRA);
  const ExecStats stats = f.run(2, true);
  std::ostringstream os;
  trace_to_csv(stats, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("node,tile,phase,start_s,end_s", 0), 0u);
  const auto rows = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, stats.trace.size() + 1);
  EXPECT_NE(csv.find("Local Reduction"), std::string::npos);
}

TEST(Trace, PhaseNames) {
  EXPECT_STREQ(phase_name(0), "Initialization");
  EXPECT_STREQ(phase_name(3), "Output Handling");
  EXPECT_STREQ(phase_name(9), "?");
}

}  // namespace
}  // namespace adr
