#include "storage/dataset.hpp"

#include <gtest/gtest.h>

namespace adr {
namespace {

std::vector<ChunkMeta> line_chunks(std::uint32_t dataset_id, int n) {
  std::vector<ChunkMeta> chunks;
  for (int i = 0; i < n; ++i) {
    ChunkMeta m;
    m.id = {dataset_id, static_cast<std::uint32_t>(i)};
    m.mbr = Rect(Point{static_cast<double>(i), 0.0}, Point{i + 0.9, 1.0});
    m.bytes = 100 * (static_cast<std::uint64_t>(i) + 1);
    chunks.push_back(m);
  }
  return chunks;
}

TEST(Dataset, AccountsBytesAndChunks) {
  Dataset ds(3, "test", Rect::cube(2, 0.0, 10.0), line_chunks(3, 4));
  EXPECT_EQ(ds.id(), 3u);
  EXPECT_EQ(ds.name(), "test");
  EXPECT_EQ(ds.num_chunks(), 4u);
  EXPECT_EQ(ds.total_bytes(), 100u + 200 + 300 + 400);
  EXPECT_DOUBLE_EQ(ds.mean_chunk_bytes(), 250.0);
}

TEST(Dataset, EmptyDataset) {
  Dataset ds(0, "empty", Rect::cube(2, 0.0, 1.0), {});
  EXPECT_EQ(ds.num_chunks(), 0u);
  EXPECT_DOUBLE_EQ(ds.mean_chunk_bytes(), 0.0);
  ds.build_index();
  EXPECT_TRUE(ds.find_chunks(Rect::cube(2, 0.0, 1.0)).empty());
}

TEST(Dataset, FindChunksAfterIndexing) {
  Dataset ds(0, "line", Rect(Point{0.0, 0.0}, Point{10.0, 1.0}), line_chunks(0, 10));
  EXPECT_FALSE(ds.has_index());
  ds.build_index();
  EXPECT_TRUE(ds.has_index());
  const auto hits = ds.find_chunks(Rect(Point{2.5, 0.0}, Point{4.5, 1.0}));
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{2, 3, 4}));
}

TEST(Dataset, SetPlacementUpdatesDisks) {
  Dataset ds(0, "p", Rect::cube(2, 0.0, 10.0), line_chunks(0, 3));
  ds.set_placement({2, 0, 1});
  EXPECT_EQ(ds.chunk(0).disk, 2);
  EXPECT_EQ(ds.chunk(1).disk, 0);
  EXPECT_EQ(ds.chunk(2).disk, 1);
}

TEST(Dataset, ChunkAccessor) {
  Dataset ds(1, "a", Rect::cube(2, 0.0, 10.0), line_chunks(1, 2));
  EXPECT_EQ(ds.chunk(1).id, (ChunkId{1, 1}));
  EXPECT_EQ(ds.chunk(1).bytes, 200u);
}

}  // namespace
}  // namespace adr
